"""Semi-normal form (SNF) rewriting (paper Section 5).

The first stage of the Morphase pipeline "reduces the number of forms the
atoms of a clause can take, so that any two equivalent clauses or sets of
atoms will differ only in their choice of variables".  After SNF conversion
every atom has one of the canonical shapes::

    X in C                      class membership, X a variable
    X in Y                      set membership, both variables
    X = Y | X = c               variable/constant equality
    X = Y.a                     projection (attribute read/assignment)
    X = ins_l(Y) | ins_l()      variant injection, payload a variable
    X = (a1 = Y1, ...)          record construction, fields variables
    X = Mk_C(Y1, ...)           Skolem application, arguments variables
    X != Y', X < Y', X =< Y'    comparisons over variables/constants

Nested terms are flattened by introducing fresh auxiliary variables
(prefixed ``_s``).  Auxiliary *definition* atoms created while flattening a
head atom are moved into the body when they are evaluable from body-bound
variables (pure reads of source data); everything else stays in the head.
This move is semantics-preserving because definition atoms are
deterministic and total, and it is what lets the normaliser read head atoms
directionally (``V = X.a`` with ``X`` a created object is an assignment).
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..lang.ast import (Atom, Clause, Const, EqAtom, InAtom, LeqAtom, LtAtom,
                        MemberAtom, NeqAtom, Program, Proj, RecordTerm,
                        SkolemTerm, Term, Var, VariantTerm)


class SnfError(Exception):
    """Raised when a clause cannot be put into semi-normal form."""


AUX_PREFIX = "_s"


class _Fresh:
    """Fresh auxiliary variable supply, avoiding a clause's variables."""

    def __init__(self, avoid: Set[str]) -> None:
        self._avoid = set(avoid)
        self._counter = 0

    def __call__(self) -> Var:
        while True:
            self._counter += 1
            name = f"{AUX_PREFIX}{self._counter}"
            if name not in self._avoid:
                self._avoid.add(name)
                return Var(name)


def is_snf_simple(term: Term) -> bool:
    """A variable or constant (the only things allowed in nested position)."""
    return isinstance(term, (Var, Const))


def is_snf_rhs(term: Term) -> bool:
    """A term allowed on the right of an SNF equality."""
    if is_snf_simple(term):
        return True
    if isinstance(term, Proj):
        return isinstance(term.subject, Var)
    if isinstance(term, VariantTerm):
        return is_snf_simple(term.payload)
    if isinstance(term, RecordTerm):
        return all(is_snf_simple(value) for _, value in term.fields)
    if isinstance(term, SkolemTerm):
        return all(is_snf_simple(value) for _, value in term.args)
    return False


def is_snf_atom(atom: Atom) -> bool:
    """Is the atom already in one of the canonical shapes?"""
    if isinstance(atom, MemberAtom):
        return isinstance(atom.element, Var)
    if isinstance(atom, InAtom):
        return (isinstance(atom.element, Var)
                and isinstance(atom.collection, Var))
    if isinstance(atom, EqAtom):
        return isinstance(atom.left, Var) and is_snf_rhs(atom.right)
    if isinstance(atom, (NeqAtom, LtAtom, LeqAtom)):
        return is_snf_simple(atom.left) and is_snf_simple(atom.right)
    return False


def is_snf_clause(clause: Clause) -> bool:
    return all(is_snf_atom(atom) for atom in clause.atoms())


def _flatten(term: Term, out: List[Atom], fresh: _Fresh) -> Term:
    """Flatten ``term`` to a Var/Const, emitting definitions into ``out``."""
    if is_snf_simple(term):
        return term
    if isinstance(term, Proj):
        subject = _flatten(term.subject, out, fresh)
        if isinstance(subject, Const):
            raise SnfError(f"projection off a constant in {term}")
        var = fresh()
        out.append(EqAtom(var, Proj(subject, term.attr)))
        return var
    if isinstance(term, VariantTerm):
        payload = _flatten(term.payload, out, fresh)
        var = fresh()
        out.append(EqAtom(var, VariantTerm(term.label, payload)))
        return var
    if isinstance(term, RecordTerm):
        fields = tuple((label, _flatten(value, out, fresh))
                       for label, value in term.fields)
        var = fresh()
        out.append(EqAtom(var, RecordTerm(fields)))
        return var
    if isinstance(term, SkolemTerm):
        args = tuple((label, _flatten(value, out, fresh))
                     for label, value in term.args)
        var = fresh()
        out.append(EqAtom(var, SkolemTerm(term.class_name, args)))
        return var
    raise SnfError(f"cannot flatten term {term!r}")


def _flatten_shallow(term: Term, out: List[Atom], fresh: _Fresh) -> Term:
    """Flatten only the *arguments* of a constructor-like term, keeping the
    constructor itself in place (avoids a useless auxiliary variable when
    the term sits directly on the right of an equality)."""
    if isinstance(term, Proj):
        subject = _flatten(term.subject, out, fresh)
        if isinstance(subject, Const):
            raise SnfError(f"projection off a constant in {term}")
        return Proj(subject, term.attr)
    if isinstance(term, VariantTerm):
        return VariantTerm(term.label, _flatten(term.payload, out, fresh))
    if isinstance(term, RecordTerm):
        return RecordTerm(tuple(
            (label, _flatten(value, out, fresh))
            for label, value in term.fields))
    if isinstance(term, SkolemTerm):
        return SkolemTerm(term.class_name, tuple(
            (label, _flatten(value, out, fresh))
            for label, value in term.args))
    return _flatten(term, out, fresh)


def _flatten_atom(atom: Atom, out: List[Atom], fresh: _Fresh) -> Atom:
    """Flatten one atom; emits auxiliary definitions into ``out``."""
    if isinstance(atom, MemberAtom):
        element = _flatten(atom.element, out, fresh)
        if isinstance(element, Const):
            raise SnfError(f"constant cannot be a class member: {atom}")
        return MemberAtom(element, atom.class_name)
    if isinstance(atom, InAtom):
        element = _flatten(atom.element, out, fresh)
        if isinstance(element, Const):
            aux = fresh()
            out.append(EqAtom(aux, element))
            element = aux
        collection = _flatten(atom.collection, out, fresh)
        if isinstance(collection, Const):
            raise SnfError(f"constant cannot be a collection: {atom}")
        return InAtom(element, collection)
    if isinstance(atom, EqAtom):
        left, right = atom.left, atom.right
        # Prefer a bare variable on the left.
        if not isinstance(left, Var) and isinstance(right, Var):
            left, right = right, left
        if isinstance(left, Var):
            return EqAtom(left, _flatten_shallow(right, out, fresh))
        if isinstance(right, Var):  # pragma: no cover - handled by swap
            return EqAtom(right, _flatten_shallow(left, out, fresh))
        if isinstance(left, Const) and isinstance(right, Const):
            # Constant equation: keep as an aux-var test.
            var = fresh()
            out.append(EqAtom(var, left))
            return EqAtom(var, right)
        # Both sides complex: flatten one to a variable.
        left_flat = _flatten(left, out, fresh)
        if isinstance(left_flat, Const):
            aux = fresh()
            out.append(EqAtom(aux, left_flat))
            left_flat = aux
        return EqAtom(left_flat, _flatten_shallow(right, out, fresh))
    if isinstance(atom, (NeqAtom, LtAtom, LeqAtom)):
        left = _flatten(atom.left, out, fresh)
        right = _flatten(atom.right, out, fresh)
        return type(atom)(left, right)
    raise SnfError(f"unknown atom kind: {atom!r}")


def _movable_to_body(head_atoms: List[Atom], body_vars: Set[str]
                     ) -> Tuple[List[Atom], List[Atom]]:
    """Split SNF head atoms into (move-to-body, keep-in-head).

    A head equation ``V = rhs`` is a *deterministic definition* — and hence
    semantics-preserving to evaluate in the body — when:

    * ``V`` is a head-only variable (for a body variable the atom is a
      test/assertion, which must stay a head obligation),
    * every variable ``rhs`` consumes is body-derivable (fixpoint),
    * ``rhs`` is not a Skolem application (identity atoms stay in the head
      so the normaliser can read off object identities directly), and
    * ``V`` is not the collection of a head set-insertion ``E in V`` (the
      pair ``V = X.attr, E in V`` is an *insertion into* ``X.attr`` and
      must stay a head obligation as a unit).

    Everything else — class memberships, assignments to created objects,
    set insertions, comparisons — stays in the head.
    """
    collection_vars = {
        atom.collection.name for atom in head_atoms
        if isinstance(atom, InAtom) and isinstance(atom.collection, Var)}
    movable: List[Atom] = []
    remaining = list(head_atoms)
    derived = set(body_vars)
    changed = True
    while changed:
        changed = False
        still: List[Atom] = []
        for atom in remaining:
            is_definition = (
                isinstance(atom, EqAtom)
                and isinstance(atom.left, Var)
                and atom.left.name not in derived
                and atom.left.name not in collection_vars
                and not isinstance(atom.right, SkolemTerm)
                and atom.right.variables() <= derived)
            if is_definition:
                movable.append(atom)
                derived.add(atom.left.name)  # type: ignore[union-attr]
                changed = True
            else:
                still.append(atom)
        remaining = still
    return movable, remaining


def snf_clause(clause: Clause) -> Clause:
    """Convert one clause to semi-normal form."""
    fresh = _Fresh(set(clause.variables()))

    body: List[Atom] = []
    for atom in clause.body:
        aux: List[Atom] = []
        core = _flatten_atom(atom, aux, fresh)
        body.extend(aux)
        body.append(core)

    body_vars: Set[str] = set()
    for atom in body:
        body_vars |= atom.variables()

    head_pool: List[Atom] = []
    for atom in clause.head:
        aux = []
        core = _flatten_atom(atom, aux, fresh)
        head_pool.extend(aux)
        head_pool.append(core)

    movable, kept = _movable_to_body(head_pool, body_vars)
    if not kept:
        # Every head atom was a movable definition (a degenerate fact
        # clause): a clause must keep at least one head obligation.
        kept = [movable.pop()]
    body.extend(movable)

    return Clause(tuple(_dedup(kept)), tuple(_dedup(body)),
                  name=clause.name, kind=clause.kind)


def snf_program(program: Program) -> Program:
    """Convert every clause of a program to semi-normal form."""
    return Program(tuple(snf_clause(clause) for clause in program))


def _dedup(atoms: List[Atom]) -> List[Atom]:
    seen = set()
    out = []
    for atom in atoms:
        if atom not in seen:
            seen.add(atom)
            out.append(atom)
    return out
