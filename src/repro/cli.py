"""Command-line front end: ``python -m repro``.

Runs the Morphase pipeline against files on disk, the way the paper's
system was used operationally (periodic transformations between evolving
databases, Section 6).

Subcommands::

    python -m repro compile  --source us.schema --source euro.schema \\
                             --target target.schema program.wol
        Normalise a program and print the normal form plus statistics.

    python -m repro transform --source us.schema --source euro.schema \\
                              --target target.schema program.wol \\
                              --data us.json --data euro.json \\
                              --out target.json [--backend cpl]
        Run the transformation over JSON instances; write the target.

    python -m repro check    --source euro.schema program.wol \\
                             --data euro.json [--stats] [--no-planner]
        Audit constraint clauses against an instance.  The audit is
        planned by default (per-clause join orders for body and head
        probe, one shared prebuilt index pool); ``--no-planner`` runs
        the naive per-clause matchers and ``--stats`` prints the
        planner/index counters.

    python -m repro plan     --source us.schema --target target.schema \\
                             program.wol --data us.json
        Print the execution plan (per-clause join orders, shared
        indexes) the planner would use for these instances.

    python -m repro apply-delta --source us.schema --target target.schema \\
                                program.wol --data us.json \\
                                --delta delta.json --out target.json \\
                                [--json] [--stats]
        Incrementally propagate a source delta: run the transformation
        once, apply the delta JSON with semi-naive delta joins, write
        the *updated* target, and report the source-constraint
        violation diff (new violations from inserts, retracted ones
        from deletes).  ``--json`` emits the whole report as JSON.

    python -m repro serve    --store DIR --source us.schema \\
                             --target target.schema program.wol \\
                             [--data us.json] [--host H] [--port P]
        Open (or initialise, from ``--data``) a durable warehouse
        store and serve it over HTTP: one long-lived session keeps
        the compiled plan, indexes and incremental transform/audit
        state warm; POST /ingest appends deltas to the write-ahead
        log and group-commits them into the warm state.  With
        ``--replica-of URL`` the node instead seeds itself from the
        leader's snapshot, tails its /wal feed and serves reads
        locally (writes answer 409 pointing at the leader).

    python -m repro snapshot --store DIR [--data us.json]
        Initialise a store from instance files (first run) or compact
        an existing one: write a content-addressed snapshot at the
        current sequence number and reset the write-ahead log.

    python -m repro replay   --store DIR [--out source.json] [--json]
        Recover a store and report what replay saw: the snapshot it
        started from, the WAL records applied, whether a torn final
        record was dropped, and the recovered class sizes.

    python -m repro program  program.qp --data target.json [--json] \\
                             [--ast] [--explain] [--no-columnar] \\
                             [--shards N] | --url http://host:port
        Parse, validate and run a query program (the composable
        query DSL of :mod:`repro.program`) — named statements mixing
        WOL conjunctive bodies with set algebra over earlier results.
        ``--data`` runs locally against instance JSON; ``--url`` posts
        the program to a running service's ``POST /program``.
        ``--ast`` prints the canonical JSON AST without executing;
        ``--explain`` adds per-statement plans.  Validation failures
        print the WOL5xx diagnostics and exit 1; parse errors exit 2.

    python -m repro lint     --source us.schema [--target target.schema] \\
                             program.wol [--json] [--fail-on SEVERITY]
        Statically analyze a WOL program: safety/boundness, dead and
        unsatisfiable clauses, clause interference, schema/key lint.
        Prints diagnostics (``--json`` for the machine-readable form)
        and exits 1 when any finding reaches ``--fail-on`` (default
        ``error``; also ``warning`` or ``info``).  Suppress findings
        in the program text with ``-- lint: disable=WOL301`` or
        ``-- lint: disable=WOL301,WOL303 clause=C6``.

Schema files use the textual schema language; ``program.wol`` is WOL
concrete syntax; instances are the JSON interchange format of
:mod:`repro.io` and deltas that of
:mod:`repro.evolution.delta`.  ``transform`` runs the planned execution
path by default; ``--no-planner`` forces the naive per-clause path and
``--stats`` prints the executor/planner counters.  Planned execution is
vectorized (columnar) by default — whole binding batches flow through
each clause as columns; ``--no-columnar`` on ``transform``, ``check``
and ``apply-delta`` restores row-at-a-time execution (results are
byte-identical either way).  ``transform`` and
``check`` accept ``--parallel N`` to shard the planned path across N
worker processes (byte-identical targets, unioned violation sets).
``check`` and ``apply-delta`` accept ``--json`` for machine-readable
reports (CI and external tools consume these without scraping text).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from contextlib import nullcontext
from typing import List, Optional

from .constraints.audit import audit_constraints
from .evolution.delta import load_delta
from .io.json_io import dump_instance, load_instance
from .lang.parser import parse_program
from .lang.pretty import format_program
from .model.keys import KeyedSchema
from .model.schema import parse_schema
from .morphase.system import Morphase
from .obs.trace import render_trace_json, start_trace
from .semantics.satisfaction import merge_instances


def _load_schema_file(path: str):
    with open(path) as handle:
        return parse_schema(handle.read())


def _load_program_text(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _build_morphase(args) -> Morphase:
    sources = [_load_schema_file(path) for path in args.source]
    target = _load_schema_file(args.target)
    return Morphase(sources, target, _load_program_text(args.program))


def _cmd_compile(args) -> int:
    morphase = _build_morphase(args)
    normalized = morphase.compile()
    report = normalized.report
    print(format_program(normalized.program()))
    print()
    print(f"-- input:  {report.input_clauses} clauses, "
          f"{report.input_size} atoms")
    print(f"-- output: {report.normal_clauses} clauses, "
          f"{report.normal_size} atoms")
    print(f"-- pruned unsatisfiable combinations: "
          f"{report.pruned_unsatisfiable}")
    print(f"-- compile time: {report.elapsed_seconds * 1000:.1f} ms")
    if report.uncovered:
        print(f"-- WARNING, uncovered attributes: {report.uncovered}")
        return 1
    return 0


def _cmd_transform(args) -> int:
    morphase = _build_morphase(args)
    instances = [load_instance(path) for path in args.data]
    tracing = (start_trace("transform", program=args.program)
               if args.trace else nullcontext(None))
    with tracing as trace:
        result = morphase.transform(
            instances, backend=args.backend,
            check_source_constraints=args.check_source,
            use_planner=not args.no_planner,
            parallel=args.parallel,
            columnar=not args.no_columnar)
    if trace is not None:
        print(trace.render())
    dump_instance(result.target, args.out)
    sizes = ", ".join(f"{cname}={count}" for cname, count in
                      sorted(result.target.class_sizes().items()))
    print(f"wrote {args.out}: {sizes}")
    if args.stats:
        stats = result.stats
        # Indexes prebuilt by the planner are counted on the plan; the
        # stats delta covers only lazy in-run builds.
        prebuilt = result.plan.prebuilt_indexes if result.plan else 0
        if stats.parallel_workers:
            parallel_note = (f"{stats.shards_run} shards over "
                             f"{stats.parallel_workers} workers, ")
        elif stats.shards_run:
            parallel_note = f"{stats.shards_run} shard in-process, "
        else:
            parallel_note = ""
        if stats.vectorized_steps or stats.fallback_steps:
            vector_note = (f"{stats.vectorized_steps} vectorized steps "
                           f"({stats.fallback_steps} fallback, "
                           f"{stats.vectorized_rows} rows, "
                           f"max batch {stats.max_batch_rows}), ")
        else:
            vector_note = ""
        print(f"stats: {stats.clauses_run} clauses "
              f"({stats.clauses_planned} planned, "
              f"{stats.atoms_reordered} atoms reordered), "
              f"{parallel_note}"
              f"{vector_note}"
              f"{stats.bindings_found} bindings, "
              f"{prebuilt + stats.indexes_built} indexes built, "
              f"{stats.scans_avoided} scans avoided "
              f"({stats.index_hits} hits / {stats.index_misses} misses), "
              f"{stats.elapsed_seconds * 1000:.1f} ms")
    if args.audit:
        violations = morphase.audit(instances, result.target)
        if violations:
            print(f"AUDIT FAILED: {len(violations)} violation(s)")
            for violation in violations[:5]:
                print(f"  {violation}")
            return 1
        print("audit: all clauses satisfied")
    return 0


def _cmd_check(args) -> int:
    sources = [_load_schema_file(path) for path in args.source]
    schemas = [s.schema if isinstance(s, KeyedSchema) else s
               for s in sources]
    class_names: List[str] = []
    for schema in schemas:
        class_names.extend(schema.class_names())
    program = parse_program(_load_program_text(args.program),
                            classes=class_names)
    instances = [load_instance(path) for path in args.data]
    merged = (instances[0] if len(instances) == 1
              else merge_instances("__check__", instances))
    if args.parallel is not None and args.no_planner:
        print("error: --parallel shards join plans; drop --no-planner",
              file=sys.stderr)
        return 2
    tracing = (start_trace("check", program=args.program)
               if args.trace else nullcontext(None))
    with tracing as trace:
        report = audit_constraints(merged, list(program),
                                   limit_per_clause=10,
                                   use_planner=not args.no_planner,
                                   parallel=args.parallel,
                                   columnar=not args.no_columnar)
    if trace is not None:
        print(trace.render())
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    if args.stats:
        print(report.stats_line())
    if not report.ok:
        found = [violation for name in report.failed_clauses()
                 for violation in report.violations[name]]
        print(f"{len(found)} violation(s):")
        for violation in found:
            print(f"  {violation}")
        return 1
    print(f"all {report.checked} clauses satisfied")
    return 0


def _cmd_apply_delta(args) -> int:
    morphase = _build_morphase(args)
    # Capture the dump-label -> oid mapping at load time: loaded
    # anonymous objects get fresh serials, so the labels a delta file
    # uses cannot be reconstructed from the instances afterwards.
    labels = {}
    instances = [load_instance(path, labels=labels)
                 for path in args.data]
    merged = (instances[0] if len(instances) == 1
              else merge_instances("__delta__", instances))
    delta = load_delta(args.delta, merged, labels=labels)
    columnar = not args.no_columnar
    transform_state = morphase.begin_incremental(instances,
                                                 columnar=columnar)
    audit_state = morphase.begin_incremental_audit(instances,
                                                   columnar=columnar)
    violations_before = len(audit_state.violations())
    result = morphase.apply_delta(transform_state, delta)
    audit_diff = morphase.audit_delta(audit_state, delta)
    dump_instance(result.target, args.out)
    stats = result.stats
    if args.json:
        document = {
            "delta": {
                "inserts": sum(len(objs)
                               for objs in delta.inserts.values()),
                "updates": sum(len(objs)
                               for objs in delta.updates.values()),
                "deletes": sum(len(oids)
                               for oids in delta.deletes.values()),
                "classes": sorted(delta.classes()),
            },
            "target": {
                "path": args.out,
                "classes": result.target.class_sizes(),
            },
            "violations": {
                "added": [str(v) for v in audit_diff.added],
                "removed": [str(v) for v in audit_diff.removed],
                "remaining": len(audit_diff.violations),
            },
            "stats": {
                "delta_size": stats.delta_size,
                "seeds_probed": stats.seeds_probed,
                "bindings_removed": stats.bindings_removed,
                "bindings_added": stats.bindings_added,
                "clauses_skipped": stats.clauses_skipped,
                "clauses_seeded": stats.clauses_seeded,
                "clauses_recomputed": stats.clauses_recomputed,
                "indexes_maintained": stats.indexes_maintained,
                "indexes_rebuilt": stats.indexes_rebuilt,
                "target_objects_touched": stats.target_objects_touched,
                "vectorized_steps": stats.vectorized_steps,
                "fallback_steps": stats.fallback_steps,
                "vectorized_rows": stats.vectorized_rows,
                "max_batch_rows": stats.max_batch_rows,
                "elapsed_ms": round(stats.elapsed_seconds * 1000, 3),
            },
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0 if not audit_diff.violations else 1
    sizes = ", ".join(f"{cname}={count}" for cname, count in
                      sorted(result.target.class_sizes().items()))
    print(f"{delta.summary()}")
    print(f"wrote {args.out}: {sizes}")
    if args.stats:
        print(f"stats: {stats.clauses_seeded} clauses seeded "
              f"({stats.clauses_skipped} untouched, "
              f"{stats.clauses_recomputed} recomputed), "
              f"{stats.seeds_probed} seeds, "
              f"-{stats.bindings_removed}/+{stats.bindings_added} "
              f"bindings, {stats.target_objects_touched} target objects "
              f"touched, {stats.indexes_maintained} indexes maintained "
              f"({stats.indexes_rebuilt} rebuilt), "
              f"{stats.vectorized_steps} vectorized steps "
              f"({stats.fallback_steps} fallback), "
              f"{stats.elapsed_seconds * 1000:.1f} ms")
    for violation in audit_diff.added:
        print(f"  + {violation}")
    for violation in audit_diff.removed:
        print(f"  - {violation}")
    remaining = len(audit_diff.violations)
    print(f"violations: {violations_before} -> {remaining} "
          f"(+{len(audit_diff.added)} new, "
          f"-{len(audit_diff.removed)} retracted)")
    return 0 if not remaining else 1


def _cmd_lint(args) -> int:
    from .analysis import analyze_text
    sources = [_load_schema_file(path) for path in args.source]
    target = _load_schema_file(args.target) if args.target else None
    report = analyze_text(_load_program_text(args.program), sources, target)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render_text(source_name=args.program))
    return 1 if report.at_or_above(args.fail_on) else 0


def _cmd_program(args) -> int:
    from .program import (ProgramParseError, ProgramValidationError,
                          compile_program, parse_program_text,
                          run_compiled)
    text = _load_program_text(args.program)
    try:
        program = parse_program_text(text)
    except ProgramParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.ast:
        # Canonical field order (version, name, statements) — not
        # alphabetised: this *is* the wire format.
        print(json.dumps(program.to_json(), indent=2))
        return 0

    trace_doc = None
    if args.url:
        from .service.client import (ServiceClient, ServiceParseError,
                                     ServiceValidationError)
        client = ServiceClient(args.url)
        try:
            result = client.program(text=text,
                                    columnar=not args.no_columnar,
                                    explain=args.explain,
                                    trace=args.trace)
            trace_doc = client.last_trace
        except ServiceValidationError as exc:
            _print_program_diagnostics(exc.diagnostics, args.program)
            return 1
        except ServiceParseError as exc:
            print(f"error: {exc.message}", file=sys.stderr)
            return 2
    else:
        if not args.data:
            print("error: pass --data (local instances) or --url "
                  "(running service)", file=sys.stderr)
            return 2
        instances = [load_instance(path) for path in args.data]
        merged = (instances[0] if len(instances) == 1
                  else merge_instances("__program__", instances))
        try:
            compiled = compile_program(program, merged)
        except ProgramValidationError as exc:
            _print_program_diagnostics(exc.report.to_json(),
                                       args.program)
            return 1
        tracing = (start_trace("program", program=args.program)
                   if args.trace else nullcontext(None))
        with tracing as trace:
            outcome = run_compiled(compiled, merged,
                                   columnar=not args.no_columnar,
                                   shards=args.shards)
        if trace is not None:
            trace_doc = trace.to_json()
        result = outcome.to_json()
        if args.explain:
            result["explain"] = compiled.explain()

    if args.json:
        if trace_doc is not None:
            result["trace"] = trace_doc
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    label = result.get("program") or args.program
    statements = result.get("statements", [])
    print(f"program {label}: {len(statements)} statement(s)")
    for trace in statements:
        notes = ""
        if trace.get("op") == "query":
            mode = "planned" if trace.get("planned") else "dynamic"
            vec = ", columnar" if trace.get("columnar") else ""
            notes = f"  [{mode}{vec}]"
        print(f"  {trace['name']:<12} {trace['op']:<10} "
              f"{trace['rows']} row(s){notes}")
    columns = result.get("columns", [])
    rows = result.get("rows", [])
    print(f"result {result.get('result')}: {len(rows)} row(s) "
          f"over ({', '.join(columns)})")
    for row in rows:
        cells = ", ".join(f"{name}={json.dumps(row[name])}"
                          for name in columns if name in row)
        print(f"  {cells}")
    if args.explain and "explain" in result:
        print(result["explain"])
    if trace_doc is not None:
        print(render_trace_json(trace_doc))
    return 0


def _print_program_diagnostics(report_json, source_name: str) -> None:
    if not report_json:
        print("error: program failed validation", file=sys.stderr)
        return
    counts = report_json.get("counts", {})
    print(f"{source_name}: program failed validation "
          f"({counts.get('error', '?')} error(s))", file=sys.stderr)
    for diagnostic in report_json.get("diagnostics", []):
        where = diagnostic.get("clause", "<program>")
        print(f"  {diagnostic.get('severity', ''):<7} "
              f"{diagnostic.get('code', '')}  {where}: "
              f"{diagnostic.get('message', '')}", file=sys.stderr)


def _cmd_plan(args) -> int:
    morphase = _build_morphase(args)
    instances = [load_instance(path) for path in args.data]
    plan = morphase.plan(instances)
    print(plan.explain())
    return 0


def _cmd_serve(args) -> int:
    from .obs.events import configure_event_log
    from .obs.metrics import set_enabled
    from .service.server import make_server
    if args.no_obs:
        set_enabled(False)
    else:
        configure_event_log(
            sys.stderr,
            level=logging.DEBUG if args.verbose else logging.INFO)
    morphase = _build_morphase(args)
    replica = None
    if args.replica_of:
        from .service.replica import WalReplica
        replica = WalReplica(morphase, args.replica_of, args.store,
                             poll_wait=args.poll_wait,
                             fsync=args.fsync)
        session = replica.start()
        store = session.store
        stats = store.stats()
        print(f"replica store: {args.store} (seq {stats['seq']}, "
              f"following {replica.leader_url})")
    else:
        sources = ([load_instance(path) for path in args.data]
                   if args.data else None)
        store = morphase.open_store(args.store, sources,
                                    fsync=args.fsync)
        session = morphase.serve(store)
        stats = store.stats()
        print(f"store: {args.store} (seq {stats['seq']}, "
              f"{stats['wal_records']} WAL record(s) replayed)")
    server = make_server(session, host=args.host, port=args.port,
                         verbose=args.verbose,
                         slow_query_ms=args.slow_query_ms)
    endpoints = ("GET /query, GET /check, GET /stats, GET /wal"
                 if replica is not None else
                 "POST /ingest, POST /program, GET /query, GET /check, "
                 "POST /snapshot, POST /lint, GET /stats, GET /wal")
    print(f"serving on {server.url} — {endpoints}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        print("shutting down")
    finally:
        server.server_close()
        if replica is not None:
            replica.close()
        else:
            session.close()
    return 0


def _cmd_snapshot(args) -> int:
    from .store.store import WarehouseStore
    if WarehouseStore.exists(args.store):
        store = WarehouseStore.open(args.store)
        subsumed = len(store.tail)
        name = store.snapshot()
        action = f"compacted ({subsumed} WAL record(s) subsumed)"
    else:
        if not args.data:
            print(f"error: no store at {args.store}; pass --data to "
                  f"initialise one", file=sys.stderr)
            return 2
        instances = [load_instance(path) for path in args.data]
        merged = (instances[0] if len(instances) == 1
                  else merge_instances("__source__", instances))
        store = WarehouseStore.create(args.store, merged)
        name = store.snapshot_file
        action = "initialised"
    sizes = ", ".join(f"{cname}={count}" for cname, count in
                      sorted(store.instance.class_sizes().items()))
    print(f"{action} store {args.store}")
    print(f"snapshot: {name} (base_seq {store.base_seq})")
    print(f"classes: {sizes}")
    store.close()
    return 0


def _cmd_replay(args) -> int:
    from .store.store import WarehouseStore
    store = WarehouseStore.open(args.store)
    stats = store.stats()
    if args.out:
        dump_instance(store.instance, args.out)
    if args.json:
        document = {
            "store": args.store,
            "snapshot": stats["snapshot"],
            "base_seq": stats["base_seq"],
            "seq": stats["seq"],
            "replayed": stats["wal_records"],
            "torn_tail_dropped": stats["recovered_torn"],
            "classes": stats["classes"],
        }
        if args.out:
            document["out"] = args.out
        print(json.dumps(document, indent=2, sort_keys=True))
        store.close()
        return 0
    torn = ("dropped a torn final record"
            if store.recovered_torn is not None else "none")
    sizes = ", ".join(f"{cname}={count}" for cname, count in
                      sorted(stats["classes"].items()))
    print(f"recovered store {args.store}")
    print(f"snapshot: {stats['snapshot']} (base_seq {stats['base_seq']})")
    print(f"replayed {stats['wal_records']} WAL record(s) to seq "
          f"{stats['seq']}, torn tail: {torn}")
    print(f"classes: {sizes}")
    if args.out:
        print(f"wrote {args.out}")
    store.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WOL/Morphase: database transformations and "
                    "constraints (Davidson & Kosky, ICDE 1997)")
    sub = parser.add_subparsers(dest="command", required=True)

    compile_p = sub.add_parser("compile",
                               help="normalise a WOL program")
    transform_p = sub.add_parser("transform",
                                 help="run a transformation")
    check_p = sub.add_parser("check",
                             help="audit constraints against an instance")
    plan_p = sub.add_parser("plan",
                            help="print the execution plan for a program "
                                 "over instances")
    delta_p = sub.add_parser("apply-delta",
                             help="incrementally propagate a source delta "
                                  "through a transformation")
    serve_p = sub.add_parser("serve",
                             help="serve a durable warehouse store over "
                                  "HTTP (warm incremental session)")
    snapshot_p = sub.add_parser("snapshot",
                                help="initialise or compact a warehouse "
                                     "store (snapshot + WAL reset)")
    replay_p = sub.add_parser("replay",
                              help="recover a warehouse store and report "
                                   "the WAL replay")
    lint_p = sub.add_parser("lint",
                            help="statically analyze a WOL program "
                                 "(safety, dead clauses, interference, "
                                 "schema/key lint)")
    program_p = sub.add_parser("program",
                               help="run a composable query program "
                                    "(WOL bodies + set algebra) locally "
                                    "or against a running service")

    for p in (compile_p, transform_p, plan_p, delta_p, serve_p):
        p.add_argument("--source", action="append", required=True,
                       help="source schema file (repeatable)")
        p.add_argument("--target", required=True,
                       help="target schema file")
        p.add_argument("program", help="WOL program file")
    check_p.add_argument("--source", action="append", required=True,
                         help="schema file (repeatable)")
    check_p.add_argument("program", help="WOL constraint file")

    transform_p.add_argument("--data", action="append", required=True,
                             help="source instance JSON (repeatable)")
    transform_p.add_argument("--out", required=True,
                             help="target instance JSON to write")
    transform_p.add_argument("--backend", default="direct",
                             choices=["direct", "cpl"])
    transform_p.add_argument("--check-source", action="store_true",
                             help="validate source constraints first")
    transform_p.add_argument("--audit", action="store_true",
                             help="audit the result against the program")
    transform_p.add_argument("--no-planner", action="store_true",
                             help="disable the execution planner (naive "
                                  "per-clause path)")
    transform_p.add_argument("--no-columnar", action="store_true",
                             help="disable vectorized (columnar) "
                                  "execution; planned clauses run "
                                  "row-at-a-time")
    transform_p.add_argument("--parallel", type=int, metavar="N",
                             help="shard execution across N worker "
                                  "processes (planned path only; the "
                                  "target is byte-identical to a "
                                  "sequential run)")
    transform_p.add_argument("--stats", action="store_true",
                             help="print executor/planner statistics")
    transform_p.add_argument("--trace", action="store_true",
                             help="print the EXPLAIN-ANALYZE span tree "
                                  "(per-phase and per-plan-step "
                                  "timings) for the run")
    check_p.add_argument("--data", action="append", required=True,
                         help="instance JSON (repeatable)")
    check_p.add_argument("--no-planner", action="store_true",
                         help="disable the audit planner (naive "
                              "per-clause matchers)")
    check_p.add_argument("--no-columnar", action="store_true",
                         help="disable vectorized (columnar) body "
                              "enumeration for planned constraints")
    check_p.add_argument("--parallel", type=int, metavar="N",
                         help="shard the audit across N worker "
                              "processes (violation sets union)")
    check_p.add_argument("--stats", action="store_true",
                         help="print audit planner/index statistics")
    check_p.add_argument("--json", action="store_true",
                         help="emit the violation report as JSON")
    check_p.add_argument("--trace", action="store_true",
                         help="print the EXPLAIN-ANALYZE span tree for "
                              "the audit run")
    plan_p.add_argument("--data", action="append", required=True,
                        help="source instance JSON (repeatable)")
    delta_p.add_argument("--data", action="append", required=True,
                         help="base source instance JSON (repeatable)")
    delta_p.add_argument("--delta", required=True,
                         help="delta JSON file to apply")
    delta_p.add_argument("--out", required=True,
                         help="updated target instance JSON to write")
    delta_p.add_argument("--no-columnar", action="store_true",
                         help="disable vectorized (columnar) seeded "
                              "delta joins")
    delta_p.add_argument("--stats", action="store_true",
                         help="print incremental propagation statistics")
    delta_p.add_argument("--json", action="store_true",
                         help="emit the whole delta report as JSON")
    serve_p.add_argument("--store", required=True,
                         help="warehouse store directory (created from "
                              "--data when absent)")
    serve_p.add_argument("--data", action="append",
                         help="source instance JSON to initialise a new "
                              "store (repeatable)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8973,
                         help="bind port, 0 for ephemeral (default 8973)")
    serve_p.add_argument("--fsync", action="store_true",
                         help="fsync every WAL append (durability over "
                              "ingest throughput)")
    serve_p.add_argument("--replica-of", metavar="URL",
                         help="run as a read replica of the leader at "
                              "URL: seed from its snapshot, tail its "
                              "/wal feed, serve reads locally and "
                              "refuse writes with 409")
    serve_p.add_argument("--poll-wait", type=float, default=5.0,
                         metavar="SECONDS",
                         help="replica long-poll window per /wal "
                              "request (default 5.0)")
    serve_p.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")
    serve_p.add_argument("--slow-query-ms", type=float, default=500.0,
                         metavar="MS", dest="slow_query_ms",
                         help="log a structured slow_query event for "
                              "read requests slower than MS "
                              "(default 500)")
    serve_p.add_argument("--no-obs", action="store_true",
                         help="disable metrics collection and the "
                              "structured event log (observability is "
                              "on by default)")
    snapshot_p.add_argument("--store", required=True,
                            help="warehouse store directory")
    snapshot_p.add_argument("--data", action="append",
                            help="source instance JSON to initialise a "
                                 "new store (repeatable)")
    replay_p.add_argument("--store", required=True,
                          help="warehouse store directory")
    replay_p.add_argument("--out",
                          help="write the recovered source instance JSON")
    replay_p.add_argument("--json", action="store_true",
                          help="emit the recovery report as JSON")
    lint_p.add_argument("--source", action="append", required=True,
                        help="source schema file (repeatable)")
    lint_p.add_argument("--target",
                        help="target schema file (optional; enables "
                             "interference and key lint over target "
                             "classes)")
    lint_p.add_argument("program", help="WOL program file")
    lint_p.add_argument("--json", action="store_true",
                        help="emit diagnostics as JSON")
    lint_p.add_argument("--fail-on", dest="fail_on", default="error",
                        choices=["error", "warning", "info"],
                        help="exit 1 when a diagnostic at or above this "
                             "severity is found (default: error)")

    program_p.add_argument("program",
                           help="query-program file (text DSL)")
    program_p.add_argument("--data", action="append",
                           help="instance JSON to query (repeatable; "
                                "local mode)")
    program_p.add_argument("--url",
                           help="base URL of a running service; posts "
                                "the program to POST /program instead "
                                "of running locally")
    program_p.add_argument("--json", action="store_true",
                           help="emit the result document as JSON")
    program_p.add_argument("--ast", action="store_true",
                           help="print the canonical JSON AST and exit "
                                "(no execution)")
    program_p.add_argument("--explain", action="store_true",
                           help="include per-statement execution plans")
    program_p.add_argument("--no-columnar", action="store_true",
                           help="disable vectorized (columnar) "
                                "execution of planned query statements")
    program_p.add_argument("--shards", type=int, default=1, metavar="N",
                           help="run shardable query statements as N "
                                "sequential shards (local mode; results "
                                "are byte-identical to --shards 1)")
    program_p.add_argument("--trace", action="store_true",
                           help="print the EXPLAIN-ANALYZE span tree "
                                "(per-statement timings; with --url the "
                                "service returns it in the envelope)")

    compile_p.set_defaults(func=_cmd_compile)
    transform_p.set_defaults(func=_cmd_transform)
    check_p.set_defaults(func=_cmd_check)
    plan_p.set_defaults(func=_cmd_plan)
    delta_p.set_defaults(func=_cmd_apply_delta)
    serve_p.set_defaults(func=_cmd_serve)
    snapshot_p.set_defaults(func=_cmd_snapshot)
    replay_p.set_defaults(func=_cmd_replay)
    lint_p.set_defaults(func=_cmd_lint)
    program_p.set_defaults(func=_cmd_program)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
