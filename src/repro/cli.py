"""Command-line front end: ``python -m repro``.

Runs the Morphase pipeline against files on disk, the way the paper's
system was used operationally (periodic transformations between evolving
databases, Section 6).

Subcommands::

    python -m repro compile  --source us.schema --source euro.schema \\
                             --target target.schema program.wol
        Normalise a program and print the normal form plus statistics.

    python -m repro transform --source us.schema --source euro.schema \\
                              --target target.schema program.wol \\
                              --data us.json --data euro.json \\
                              --out target.json [--backend cpl]
        Run the transformation over JSON instances; write the target.

    python -m repro check    --source euro.schema program.wol \\
                             --data euro.json [--stats] [--no-planner]
        Audit constraint clauses against an instance.  The audit is
        planned by default (per-clause join orders for body and head
        probe, one shared prebuilt index pool); ``--no-planner`` runs
        the naive per-clause matchers and ``--stats`` prints the
        planner/index counters.

    python -m repro plan     --source us.schema --target target.schema \\
                             program.wol --data us.json
        Print the execution plan (per-clause join orders, shared
        indexes) the planner would use for these instances.

Schema files use the textual schema language; ``program.wol`` is WOL
concrete syntax; instances are the JSON interchange format of
:mod:`repro.io`.  ``transform`` runs the planned execution path by
default; ``--no-planner`` forces the naive per-clause path and
``--stats`` prints the executor/planner counters.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .constraints.audit import audit_constraints
from .io.json_io import dump_instance, load_instance
from .lang.parser import parse_program
from .lang.pretty import format_program
from .model.keys import KeyedSchema
from .model.schema import parse_schema
from .morphase.system import Morphase
from .semantics.satisfaction import merge_instances


def _load_schema_file(path: str):
    with open(path) as handle:
        return parse_schema(handle.read())


def _load_program_text(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _build_morphase(args) -> Morphase:
    sources = [_load_schema_file(path) for path in args.source]
    target = _load_schema_file(args.target)
    return Morphase(sources, target, _load_program_text(args.program))


def _cmd_compile(args) -> int:
    morphase = _build_morphase(args)
    normalized = morphase.compile()
    report = normalized.report
    print(format_program(normalized.program()))
    print()
    print(f"-- input:  {report.input_clauses} clauses, "
          f"{report.input_size} atoms")
    print(f"-- output: {report.normal_clauses} clauses, "
          f"{report.normal_size} atoms")
    print(f"-- pruned unsatisfiable combinations: "
          f"{report.pruned_unsatisfiable}")
    print(f"-- compile time: {report.elapsed_seconds * 1000:.1f} ms")
    if report.uncovered:
        print(f"-- WARNING, uncovered attributes: {report.uncovered}")
        return 1
    return 0


def _cmd_transform(args) -> int:
    morphase = _build_morphase(args)
    instances = [load_instance(path) for path in args.data]
    result = morphase.transform(
        instances, backend=args.backend,
        check_source_constraints=args.check_source,
        use_planner=not args.no_planner)
    dump_instance(result.target, args.out)
    sizes = ", ".join(f"{cname}={count}" for cname, count in
                      sorted(result.target.class_sizes().items()))
    print(f"wrote {args.out}: {sizes}")
    if args.stats:
        stats = result.stats
        # Indexes prebuilt by the planner are counted on the plan; the
        # stats delta covers only lazy in-run builds.
        prebuilt = result.plan.prebuilt_indexes if result.plan else 0
        print(f"stats: {stats.clauses_run} clauses "
              f"({stats.clauses_planned} planned, "
              f"{stats.atoms_reordered} atoms reordered), "
              f"{stats.bindings_found} bindings, "
              f"{prebuilt + stats.indexes_built} indexes built, "
              f"{stats.scans_avoided} scans avoided "
              f"({stats.index_hits} hits / {stats.index_misses} misses), "
              f"{stats.elapsed_seconds * 1000:.1f} ms")
    if args.audit:
        violations = morphase.audit(instances, result.target)
        if violations:
            print(f"AUDIT FAILED: {len(violations)} violation(s)")
            for violation in violations[:5]:
                print(f"  {violation}")
            return 1
        print("audit: all clauses satisfied")
    return 0


def _cmd_check(args) -> int:
    sources = [_load_schema_file(path) for path in args.source]
    schemas = [s.schema if isinstance(s, KeyedSchema) else s
               for s in sources]
    class_names: List[str] = []
    for schema in schemas:
        class_names.extend(schema.class_names())
    program = parse_program(_load_program_text(args.program),
                            classes=class_names)
    instances = [load_instance(path) for path in args.data]
    merged = (instances[0] if len(instances) == 1
              else merge_instances("__check__", instances))
    report = audit_constraints(merged, list(program), limit_per_clause=10,
                               use_planner=not args.no_planner)
    if args.stats:
        print(report.stats_line())
    if not report.ok:
        found = [violation for name in report.failed_clauses()
                 for violation in report.violations[name]]
        print(f"{len(found)} violation(s):")
        for violation in found:
            print(f"  {violation}")
        return 1
    print(f"all {report.checked} clauses satisfied")
    return 0


def _cmd_plan(args) -> int:
    morphase = _build_morphase(args)
    instances = [load_instance(path) for path in args.data]
    plan = morphase.plan(instances)
    print(plan.explain())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WOL/Morphase: database transformations and "
                    "constraints (Davidson & Kosky, ICDE 1997)")
    sub = parser.add_subparsers(dest="command", required=True)

    compile_p = sub.add_parser("compile",
                               help="normalise a WOL program")
    transform_p = sub.add_parser("transform",
                                 help="run a transformation")
    check_p = sub.add_parser("check",
                             help="audit constraints against an instance")
    plan_p = sub.add_parser("plan",
                            help="print the execution plan for a program "
                                 "over instances")

    for p in (compile_p, transform_p, plan_p):
        p.add_argument("--source", action="append", required=True,
                       help="source schema file (repeatable)")
        p.add_argument("--target", required=True,
                       help="target schema file")
        p.add_argument("program", help="WOL program file")
    check_p.add_argument("--source", action="append", required=True,
                         help="schema file (repeatable)")
    check_p.add_argument("program", help="WOL constraint file")

    transform_p.add_argument("--data", action="append", required=True,
                             help="source instance JSON (repeatable)")
    transform_p.add_argument("--out", required=True,
                             help="target instance JSON to write")
    transform_p.add_argument("--backend", default="direct",
                             choices=["direct", "cpl"])
    transform_p.add_argument("--check-source", action="store_true",
                             help="validate source constraints first")
    transform_p.add_argument("--audit", action="store_true",
                             help="audit the result against the program")
    transform_p.add_argument("--no-planner", action="store_true",
                             help="disable the execution planner (naive "
                                  "per-clause path)")
    transform_p.add_argument("--stats", action="store_true",
                             help="print executor/planner statistics")
    check_p.add_argument("--data", action="append", required=True,
                         help="instance JSON (repeatable)")
    check_p.add_argument("--no-planner", action="store_true",
                         help="disable the audit planner (naive "
                              "per-clause matchers)")
    check_p.add_argument("--stats", action="store_true",
                         help="print audit planner/index statistics")
    plan_p.add_argument("--data", action="append", required=True,
                        help="source instance JSON (repeatable)")

    compile_p.set_defaults(func=_cmd_compile)
    transform_p.set_defaults(func=_cmd_transform)
    check_p.set_defaults(func=_cmd_check)
    plan_p.set_defaults(func=_cmd_plan)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
