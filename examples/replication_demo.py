#!/usr/bin/env python3
"""Replication walkthrough: one leader, two followers, one crash.

The warehouse service scales reads horizontally by shipping its write-
ahead log: followers seed from the leader's content-addressed snapshot,
tail ``GET /wal`` (long-polled), and replay every delta through their
own incremental session — deterministically, so their ``/target`` is
byte-identical to the leader's.  This demo exercises the whole story:

1. start a leader over the Cities/Countries store and two followers,
   each serving ``/query``/``/target``/``/check`` on its own port,
2. sustain a stream of ingests against the leader while the followers
   tail the feed live,
3. kill follower B mid-stream, keep writing, compact the leader so the
   log B would need is gone (only the snapshot subsumes it),
4. restart B over its own store directory and watch it reseed from the
   leader's snapshot and catch up,
5. verify both followers converge to a byte-identical ``/target``,
6. scrape ``GET /metrics`` on the leader and a follower and assert
   the replication gauges (lag, leader seq, records shipped) and the
   leader's request/WAL families carry live samples,
7. show a write bouncing off a follower (409 with the leader's URL)
   and the monotonic-read token holding across nodes.

Run:  PYTHONPATH=src python examples/replication_demo.py

Exits non-zero on any mismatch — CI runs this as the replication
smoke.
"""

import json
import sys
import tempfile
import threading
import time

from repro.morphase import Morphase
from repro.service import (ServiceClient, ServiceConflictError,
                           WalReplica, make_server)
from repro.workloads import cities

INGESTS = 40          # sustained-write stream length
KILL_AFTER = 12       # ingests before follower B is killed
RESTART_AFTER = 28    # ingests before B comes back


def build_morphase():
    return Morphase([cities.us_schema(), cities.euro_schema()],
                    cities.target_schema(), cities.PROGRAM_TEXT)


def insert_delta(n):
    return {"inserts": {"CountryE": [
        {"id": {"$oid": "CountryE", "label": f"CountryE#demo{n}"},
         "value": {"$rec": {"name": f"Country-{n}",
                            "language": f"lang-{n}",
                            "currency": f"CUR{n}"}}}]}}


def serve(session):
    server = make_server(session)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


def metric_value(text: str, sample: str) -> float:
    """One sample's value out of a Prometheus text page (or -1)."""
    for line in text.splitlines():
        if line.startswith(sample + " "):
            return float(line.rsplit(" ", 1)[1])
    return -1.0


def check_metrics(client: ServiceClient, role: str,
                  samples: dict) -> bool:
    """Assert each sample appears on this node with a live value."""
    text = client.metrics()
    ok = True
    for sample, minimum in samples.items():
        value = metric_value(text, sample)
        if value < minimum:
            print(f"MISSING METRIC on {role}: {sample} = {value} "
                  f"(wanted >= {minimum})")
            ok = False
    if ok:
        shown = ", ".join(sorted(samples))
        print(f"  {role} /metrics exposes {shown}")
    return ok


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="morphase-replication-")

    # 1. Leader + two followers, all speaking the same HTTP API.
    morphase = build_morphase()
    store = morphase.open_store(
        f"{tmp}/leader",
        [cities.sample_us_instance(), cities.sample_euro_instance()])
    leader_session = morphase.serve(store)
    leader_server = serve(leader_session)
    leader = ServiceClient(leader_server.url)
    print(f"leader on {leader_server.url}")

    replica_a = WalReplica(build_morphase(), leader_server.url,
                           f"{tmp}/replica-a", poll_wait=0.5)
    server_a = serve(replica_a.start())
    replica_b = WalReplica(build_morphase(), leader_server.url,
                           f"{tmp}/replica-b", poll_wait=0.5)
    server_b = serve(replica_b.start())
    print(f"follower A on {server_a.url}, follower B on {server_b.url}")

    # 2-4. Sustained ingest with a mid-stream crash and restart of B.
    for n in range(INGESTS):
        leader.ingest(insert_delta(n))
        if n == KILL_AFTER:
            server_b.shutdown()
            server_b.server_close()
            replica_b.close()
            print(f"  killed follower B at leader seq "
                  f"{leader_session.store.seq}")
        if n == KILL_AFTER + 8:
            # Compact while B is down: the WAL records B still needs
            # are subsumed into the snapshot — on restart it *must*
            # reseed, not replay.
            report = leader.snapshot()
            print(f"  leader compacted at base_seq "
                  f"{report['base_seq']} (B's log is gone)")
        if n == RESTART_AFTER:
            replica_b = WalReplica(build_morphase(), leader_server.url,
                                   f"{tmp}/replica-b", poll_wait=0.5)
            server_b = serve(replica_b.start())
            print(f"  restarted follower B at leader seq "
                  f"{leader_session.store.seq}")

    # 5. Convergence: both followers reach the leader's seq and serve
    # a byte-identical target document.
    final_seq = leader_session.store.seq
    deadline = time.monotonic() + 60.0
    sessions = {"A": replica_a.session, "B": replica_b.session}
    while time.monotonic() < deadline:
        if all(s.store.seq >= final_seq for s in sessions.values()):
            break
        time.sleep(0.05)
    leader_target = json.dumps(leader.target(), sort_keys=True)
    for name, url in (("A", server_a.url), ("B", server_b.url)):
        session = sessions[name]
        if session.store.seq < final_seq:
            print(f"MISMATCH: follower {name} stuck at seq "
                  f"{session.store.seq} < {final_seq}")
            return 1
        follower_target = json.dumps(
            ServiceClient(url).target(), sort_keys=True)
        if follower_target != leader_target:
            print(f"MISMATCH: follower {name} /target differs "
                  f"from the leader's")
            return 1
        stats = session.stats_json()["replication"]
        print(f"follower {name}: seq {session.store.seq}, lag "
              f"{stats['lag']}, {stats['records_replicated']} "
              f"record(s) replicated, {stats['resyncs']} resync(s)")
    if sessions["B"].replication.resyncs < 1:
        print("MISMATCH: follower B never reseeded — the compaction "
              "should have forced a snapshot catch-up")
        return 1
    print("both followers byte-identical to the leader "
          f"at seq {final_seq}")

    # 6. The replication control plane is on /metrics: the leader
    # shows the write-path families, the follower shows the lag,
    # progress and resync gauges a dashboard would alert on.
    if not check_metrics(leader, "leader", {
            'repro_http_requests_total{method="POST",'
            'endpoint="/ingest",status="200"}': INGESTS,
            "repro_wal_appends_total": INGESTS,
            'repro_session_role{role="leader"}': 1,
    }):
        return 1
    if not check_metrics(ServiceClient(server_a.url), "follower A", {
            'repro_session_role{role="replica"}': 1,
            "repro_replication_lag": 0,  # present (and 0: converged)
            "repro_replication_leader_seq": 1,
            "repro_replication_records": 1,
    }):
        return 1
    # B reseeded from the snapshot, so its resync counter is live.
    if not check_metrics(ServiceClient(server_b.url), "follower B", {
            "repro_replication_resyncs": 1,
    }):
        return 1

    # 7a. Writes bounce off followers with the leader's address.
    try:
        ServiceClient(server_a.url).ingest(insert_delta(999))
        print("MISMATCH: follower A accepted a write")
        return 1
    except ServiceConflictError as exc:
        print(f"follower A refused a write: {exc.code} "
              f"(leader: {exc.details['leader']})")

    # 7b. Monotonic reads: a client that just read the leader carries
    # its token to a follower and never sees older state.
    roaming = ServiceClient(server_a.url)
    roaming.last_seq = leader.last_seq  # token observed on the leader
    stats = roaming.stats()
    if stats["applied_seq"] < leader.last_seq:
        print("MISMATCH: follower answered below the read token")
        return 1
    print(f"monotonic token held across nodes "
          f"(applied {stats['applied_seq']} >= token "
          f"{leader.last_seq})")

    for server in (server_a, server_b, leader_server):
        server.shutdown()
        server.server_close()
    replica_a.close()
    replica_b.close()
    leader_session.close()
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
