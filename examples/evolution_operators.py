#!/usr/bin/env python3
"""Schema-evolution operators generating WOL programs (Section 6 future
work, Section 1's default-vs-delete discussion).

The paper closes by noting "a potential for graphical schema manipulation
tools generating WOL transformation programs".  This example is that
tool's backend in action: high-level operators (copy, rename, split,
reify, make-required) emit a WOL program whose data semantics is explicit
and inspectable — including both readings of an optional-to-required
change.

Run:  python examples/evolution_operators.py
"""

from repro.evolution import Evolution
from repro.lang.pretty import format_program
from repro.model import Record, WolSet, parse_schema
from repro.model.instance import InstanceBuilder
from repro.workloads import persons

LIBRARY = """
schema Library {
  class Book   = (title: str, author: Author, isbn: {str}) key title;
  class Author = (name: str, born: int) key name;
}
"""


def library_instance(schema):
    builder = InstanceBuilder(schema.schema)
    woolf = builder.new("Author", Record.of(name="Woolf", born=1882))
    builder.new("Book", Record.of(
        title="Orlando", author=woolf, isbn=WolSet.of("978-0-15-670160-0")))
    builder.new("Book", Record.of(
        title="The Waves", author=woolf, isbn=WolSet.of()))  # no ISBN yet
    return builder.freeze()


def main() -> None:
    schema = parse_schema(LIBRARY)
    source = library_instance(schema)

    # --- The same manipulation, two readings (paper Section 1) ---------
    print("=== optional-to-required: the DELETE reading ===")
    evo = Evolution(schema, "V2")
    evo.copy_class("Author")
    evo.copy_class("Book")
    evo.make_required("Book", "isbn", policy="delete")
    result = evo.build()
    out = result.transform(schema, source)
    print(f"books kept: {out.class_sizes()['Book']} of 2 "
          f"(the ISBN-less book is deleted)")

    print("\n=== optional-to-required: the DEFAULT reading ===")
    evo = Evolution(schema, "V2")
    evo.copy_class("Author")
    evo.copy_class("Book")
    evo.make_required("Book", "isbn", policy="default",
                      default="ISBN-UNASSIGNED")
    result = evo.build()
    out = result.transform(schema, source)
    isbns = sorted(out.attribute(b, "isbn") for b in out.objects_of("Book"))
    print(f"books kept: {out.class_sizes()['Book']} of 2; isbns: {isbns}")

    # --- Re-deriving the paper's Example 4.2 from operators ------------
    print("\n=== Example 4.2 from four operator calls ===")
    evo = Evolution(persons.person_schema(), "Evolved")
    evo.split_class("Person", "sex", {"male": "Male", "female": "Female"})
    evo.reify_reference("Person", "spouse", "Marriage",
                        subject_target="Male", object_target="Female",
                        subject_label="husband", object_label="wife",
                        subject_filter=("sex", "male"),
                        object_filter=("sex", "female"))
    result = evo.build()
    print("generated WOL program:\n")
    print(format_program(result.program))
    out = result.transform(persons.person_schema(),
                           persons.sample_instance())
    print(f"\nevolved instance sizes: {out.class_sizes()}")


if __name__ == "__main__":
    main()
