#!/usr/bin/env python3
"""The ReLiBase drug-design warehouse (paper Section 6).

WOL's second reported deployment: the VODAK project at Darmstadt used WOL
"to build a data-warehouse of protein and protein-ligand data for use in
drug design ... transforming data from a variety of public molecular
biology databases, including SWISSPROT and PDB".

This example integrates a SWISSPROT-like and a PDB-like source into a
ReLiBase-like object model, demonstrating multi-source joins and
set-valued attribute accumulation.

Run:  python examples/relibase_warehouse.py
"""

from repro.lang.pretty import format_program
from repro.morphase import Morphase
from repro.workloads import relibase


def main() -> None:
    morphase = Morphase(
        [relibase.swissprot_schema(), relibase.pdb_schema()],
        relibase.relibase_schema(), relibase.PROGRAM_TEXT)

    print("=== Normal-form warehouse program ===")
    print(format_program(morphase.compile().program()))

    result = morphase.transform([relibase.sample_swissprot(),
                                 relibase.sample_pdb()])
    target = result.target
    print("\n=== Warehouse contents ===")
    for protein in sorted(target.objects_of("Protein"), key=str):
        accession = target.attribute(protein, "accession")
        name = target.attribute(protein, "name")
        structures = sorted(target.attribute(s, "pdb_id")
                            for s in target.attribute(protein,
                                                      "structures"))
        print(f"  {accession} ({name}): structures {structures}")
    for complex_ in sorted(target.objects_of("Complex"), key=str):
        structure = target.attribute(complex_, "structure")
        ligand = target.attribute(complex_, "ligand")
        print(f"  complex: {target.attribute(structure, 'pdb_id')} + "
              f"{target.attribute(ligand, 'code')} "
              f"(pKd {target.attribute(complex_, 'affinity')})")

    print("\nNote: PDB structure 9XYZ was dropped -- its accession has "
          "no SWISSPROT entry,\nso the cross-database join excludes it "
          "(the warehouse only keeps curated proteins).")

    # Scale up.
    sp, pdb = relibase.generate_sources(
        proteins=50, structures_per_protein=3, ligands=30, bindings=120,
        seed=13)
    result = morphase.transform([sp, pdb])
    print(f"\n=== Synthetic scale-up ===")
    print(f"warehouse sizes: {result.target.class_sizes()}")
    print(f"execution: {result.stats.bindings_found} body matches in "
          f"{result.stats.elapsed_seconds * 1000:.1f} ms")


if __name__ == "__main__":
    main()
