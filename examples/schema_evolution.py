#!/usr/bin/env python3
"""Schema evolution and information capacity (paper Example 4.2, §4.3).

The Person schema of Figure 4 evolves into the Male/Female/Marriage schema
of Figure 5 via clauses (T6)-(T8).  The transformation *loses information*
on arbitrary sources — but is information preserving on sources satisfying
the constraints (C9)-(C11), which cannot be expressed in standard
constraint languages.  This example demonstrates both halves empirically.

Run:  python examples/schema_evolution.py
"""

from repro.infocap import check_preservation
from repro.lang.pretty import format_program
from repro.morphase import Morphase
from repro.workloads import persons


def main() -> None:
    morphase = Morphase([persons.person_schema()],
                        persons.evolved_schema(), persons.PROGRAM_TEXT)

    print("=== Evolved (normal-form) program ===")
    print(format_program(morphase.compile().program()))

    # A well-constrained source: three married couples.
    source = persons.sample_instance()
    target = morphase.transform(source).target
    print("\n=== Evolved instance ===")
    print(target)

    # Section 4.3 empirically: assemble a family of sources, some of
    # which violate (C9)-(C11).
    family = [
        persons.generate_instance(0),
        persons.generate_instance(1),
        persons.generate_instance(2),
        persons.couples_instance([("Pat", "Quinn")]),
        persons.asymmetric_instance(),                 # violates (C11)
        persons.symmetric_variant_of_asymmetric(),     # also pathological
    ]
    constraints = morphase.compile().source_constraints

    def transform(instance):
        return morphase.transform(instance).target

    report = check_preservation(transform, family, constraints)
    print("\n=== Information-capacity analysis (Section 4.3) ===")
    print(report.summary())
    print("\nConclusion: the transformation fails to be information")
    print("preserving only because of constraints the source schema")
    print("cannot express -- exactly the paper's point.")


if __name__ == "__main__":
    main()
