#!/usr/bin/env python3
"""Service walkthrough: a durable warehouse served over HTTP.

The paper's closing vision (Section 6) is Morphase *maintaining* a
transformed warehouse in front of evolving sources.  This demo builds
that system end to end:

1. initialise a durable store (snapshot + write-ahead delta log) from
   the paper's Cities/Countries running example,
2. start the HTTP service — one long-lived session holding the
   compiled program, shared indexes and incremental state warm,
3. POST a source delta and watch it group-commit into the warm target,
4. verify the served target equals a cold batch transform of the
   updated source (the differential guarantee),
5. scrape GET /metrics and assert the Prometheus families a
   dashboard would alert on are present with live samples,
6. kill the session, recover the store from disk, and verify the
   rebuilt warm session agrees byte for byte,
7. compact (snapshot) and show the WAL reset.

Run:  PYTHONPATH=src python examples/service_demo.py

Exits non-zero on any mismatch — CI runs this as the service smoke.
"""

import json
import sys
import tempfile
import threading

from repro.io.json_io import instance_to_json
from repro.morphase import Morphase
from repro.service import ServiceClient, make_server
from repro.workloads import cities

NEW_COUNTRY_DELTA = {
    "inserts": {
        "CountryE": [{
            "id": {"$oid": "CountryE", "label": "CountryE#utopia"},
            "value": {"$rec": {"name": "Utopia",
                               "language": "utopian",
                               "currency": "UTO"}}}],
        "CityE": [{
            "id": {"$oid": "CityE", "label": "CityE#nowhere"},
            "value": {"$rec": {
                "name": "Nowhere", "is_capital": True,
                "country": {"$oid": "CountryE",
                            "label": "CountryE#utopia"}}}}],
    }}


def dumps(instance) -> str:
    return json.dumps(instance_to_json(instance), sort_keys=True)


def metric_value(text: str, sample: str) -> float:
    """One sample's value out of a Prometheus text page (or -1)."""
    for line in text.splitlines():
        if line.startswith(sample + " "):
            return float(line.rsplit(" ", 1)[1])
    return -1.0


def check_metrics(client: ServiceClient, role: str,
                  samples: dict) -> bool:
    """Assert each sample appears on this node with a live value."""
    text = client.metrics()
    ok = True
    for sample, minimum in samples.items():
        value = metric_value(text, sample)
        if value < minimum:
            print(f"MISSING METRIC on {role}: {sample} = {value} "
                  f"(wanted >= {minimum})")
            ok = False
    if ok:
        shown = ", ".join(sorted(samples))
        print(f"  {role} /metrics exposes {shown}")
    return ok


def main() -> int:
    # 1. A durable store initialised from the merged sources.
    morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                        cities.target_schema(), cities.PROGRAM_TEXT)
    store_dir = tempfile.mkdtemp(prefix="morphase-store-")
    store = morphase.open_store(
        store_dir,
        [cities.sample_us_instance(), cities.sample_euro_instance()])
    print(f"store initialised at {store_dir}")
    print(f"  snapshot: {store.snapshot_file}")

    # 2. The warm service: compiled plan + indexes + incremental state.
    session = morphase.serve(store)
    server = make_server(session)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(server.url)
    print(f"serving on {server.url}")
    print(f"  health: {client.health()}")

    # 3. Ingest a delta: durable WAL append, then incremental apply.
    result = client.ingest(NEW_COUNTRY_DELTA)
    print(f"ingested delta -> seq {result['seq']}, "
          f"batch of {result['batch_size']}, "
          f"{result['violations']} violation(s)")

    countries = client.extent("CountryT")
    print(f"  target CountryT now has {countries['count']} objects")

    # Conjunctive queries and whole programs run against the same warm
    # session (planned + columnar, shared index pool).
    euros = client.query("X in CountryT, N = X.name, C = X.currency",
                         project=["N", "C"])
    print(f"  /query?body= returned {euros['count']} "
          f"(country, currency) rows")
    outcome = client.program(text="""
        caps  = query { N | C in CountryT, X = C.capital, N = X.name };
        alln  = query { N | X in CityT, N = X.name };
        rest  = difference alln, caps;
    """)
    print(f"  /program: "
          + ", ".join(f"{t['name']}={t['rows']}"
                      for t in outcome['statements']))

    # 4. Differential guarantee: served target == cold batch transform.
    cold = morphase.transform(store.instance).target
    if json.dumps(client.target(), sort_keys=True) != dumps(cold):
        print("MISMATCH: served target != cold batch transform")
        return 1
    print("served target equals cold batch transform of final source")

    # 5. The observability surface: request latency histograms, WAL
    # append timings and session progress are live on /metrics.
    if not check_metrics(client, "leader", {
            'repro_http_requests_total{method="POST",'
            'endpoint="/ingest",status="200"}': 1,
            'repro_http_request_seconds_count{method="GET",'
            'endpoint="/query"}': 1,
            "repro_wal_appends_total": 1,
            "repro_wal_append_seconds_count": 1,
            'repro_session_role{role="leader"}': 1,
            "repro_session_ingested": 1,
    }):
        return 1

    # 6. Kill and recover: reopen the store, rebuild the warm session.
    server.shutdown()
    server.server_close()
    session.close()
    recovered = morphase.open_store(store_dir)
    print(f"recovered store: seq {recovered.seq}, "
          f"{len(recovered.tail)} WAL record(s) replayed")
    warm = morphase.serve(recovered)
    if dumps(warm.target) != dumps(cold):
        print("MISMATCH: recovered warm target != cold oracle")
        return 1
    print("recovered warm session agrees with the cold oracle")

    # 7. Compaction: snapshot subsumes the WAL.
    report = warm.snapshot()
    print(f"compacted: snapshot {report['snapshot']} at "
          f"base_seq {report['base_seq']}, WAL now "
          f"{recovered.wal.size_bytes()} bytes")
    warm.close()
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
