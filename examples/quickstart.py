#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Integrates the US Cities-and-States database (Figure 1) and the European
Cities-and-Countries database (Figure 2) into the combined schema of
Figure 3, using the WOL program of Section 3 — including the tricky
re-representation of the Boolean ``is_capital`` attribute as the
``capital`` reference on target countries.

Run:  python examples/quickstart.py
"""

from repro.lang.pretty import format_program
from repro.morphase import Morphase
from repro.workloads import cities


def main() -> None:
    # 1. The three schemas (keyed per paper Example 2.3).
    us = cities.us_schema()
    euro = cities.euro_schema()
    target = cities.target_schema()
    print("=== Source schema: US (Figure 1) ===")
    print(us.schema)
    print("\n=== Source schema: Euro (Figure 2) ===")
    print(euro.schema)
    print("\n=== Target schema (Figure 3) ===")
    print(target.schema)

    # 2. The WOL transformation program: clauses (C1)-(C5), (T1)-(T3)
    #    plus the US-side analogues.  Morphase type-checks and
    #    range-restriction-checks every clause at construction.
    morphase = Morphase([us, euro], target, cities.PROGRAM_TEXT)

    # 3. Compile: rewrite to semi-normal form, derive object identities
    #    from key clauses, unfold and merge partial clauses, and optimise
    #    with the source key constraints (paper Sections 4-5).
    normalized = morphase.compile()
    report = normalized.report
    print("\n=== Compilation report ===")
    print(f"input:  {report.input_clauses} clauses, "
          f"{report.input_size} atoms")
    print(f"output: {report.normal_clauses} normal-form clauses, "
          f"{report.normal_size} atoms")
    print(f"unsatisfiable combinations pruned: "
          f"{report.pruned_unsatisfiable}")
    print("\n=== Normal-form program ===")
    print(format_program(normalized.program()))

    # 4. Transform the sample instances (Example 2.2) in one pass.
    result = morphase.transform([cities.sample_us_instance(),
                                 cities.sample_euro_instance()])
    print("\n=== Integrated target instance ===")
    print(result.target)

    # 5. Audit: the original clauses hold across source + target.
    violations = morphase.audit(
        [cities.sample_us_instance(), cities.sample_euro_instance()],
        result.target)
    print(f"\naudit violations: {len(violations)} (expected 0)")


if __name__ == "__main__":
    main()
