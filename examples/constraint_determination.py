#!/usr/bin/env python3
"""Constraints determining transformations (paper Section 4.1, E1).

The paper generalises CountryT and StateT by a class PlaceT and notes that
the relationship clauses (C6)/(C7) — *constraints* — "are sufficient to
determine the objects of class PlaceT, so no additional transformation
clauses ... would be needed".  This example runs exactly that program: the
only new clauses are the two constraints, and Morphase derives the PlaceT
population from them.

Run:  python examples/constraint_determination.py
"""

from repro.lang.pretty import format_program
from repro.model import parse_schema
from repro.morphase import Morphase
from repro.workloads import cities

#: Figure 3's schema extended with the PlaceT generalisation.
EXTENDED_TARGET = """
schema Target {
  class CityT    = (name: str,
                    place: <<euro_city: CountryT, us_city: StateT>>)
                   key name;
  class CountryT = (name: str, language: str, currency: str,
                    capital: CityT) key name;
  class StateT   = (name: str, capital: CityT) key name;
  class PlaceT   = (name: str, currency: str, language: str) key name;
}
"""

#: (C6)/(C7): the generalisation constraints, verbatim from Section 4.1.
#: The lint suppression acknowledges WOL301: C6 and C7 both write
#: PlaceT.currency/language, and a country and a state sharing a name
#: would conflict at runtime.  The paper's Section 4.1 program accepts
#: this (place names are assumed distinct across the sources).
PLACE_CONSTRAINTS = """
-- lint: disable=WOL301
constraint C6:
  P in PlaceT, P.name = N, P.currency = C, P.language = L
  <= X in CountryT, X.name = N, X.currency = C, X.language = L;

constraint C7:
  P in PlaceT, P.name = N, P.currency = "US-Dollars",
  P.language = "English"
  <= S in StateT, S.name = N;
"""


def main() -> None:
    target = parse_schema(EXTENDED_TARGET)
    program_text = cities.PROGRAM_TEXT + PLACE_CONSTRAINTS
    morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                        target, program_text)

    normalized = morphase.compile()
    place_clauses = [c for c in normalized.clauses
                     if "PlaceT" in str(c.head)]
    print("=== Normal-form clauses derived for PlaceT ===")
    print("(from the constraints (C6)/(C7) alone -- no transformation")
    print(" clauses for PlaceT were written)\n")
    print(format_program(normalized.program().with_clauses(
        tuple(place_clauses))))

    result = morphase.transform([cities.sample_us_instance(),
                                 cities.sample_euro_instance()])
    target_instance = result.target
    print("\n=== PlaceT objects ===")
    for place in sorted(target_instance.objects_of("PlaceT"), key=str):
        value = target_instance.value_of(place)
        print(f"  {value}")
    sizes = target_instance.class_sizes()
    print(f"\nclass sizes: {sizes}")
    assert sizes["PlaceT"] == sizes["CountryT"] + sizes["StateT"]
    print("PlaceT = CountryT + StateT, as the constraints require.")


if __name__ == "__main__":
    main()
