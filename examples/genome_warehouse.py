#!/usr/bin/env python3
"""The genome-warehouse trial (paper Section 6).

Reproduces the shape of the Penn genome-centre deployment: data lives in an
ACeDB-style tree database (sparsely populated, multi-valued tags), must be
loaded into a relational warehouse, and the two sides use incompatible data
models.  WOL bridges them:

  ACe22DB stand-in  --import-->  WOL instance  --Morphase-->  warehouse
                                                    |
                                                    +--export--> tables

Run:  python examples/genome_warehouse.py
"""

from repro.adapters.acedb import schema_of_acedb
from repro.adapters.relational import export_instance
from repro.morphase import Morphase
from repro.workloads import genome


def main() -> None:
    # 1. The ACeDB-style source: Gene/Sequence/Clone with sparse tags.
    database = genome.sample_acedb()
    print("=== ACeDB source objects ===")
    for (class_name, name), obj in sorted(database.objects.items()):
        tags = {**obj.tags,
                **{t: [f"{c}:{n}" for c, n in refs]
                   for t, refs in obj.refs.items()}}
        print(f"  {class_name}:{name}  {tags}")

    # 2. Import into the WOL model: tags become set-valued attributes
    #    (absent tag = empty set) keeping the sparseness explicit.
    source_schema = schema_of_acedb(database)
    source = genome.source_instance(database)
    print("\n=== Induced WOL source schema ===")
    print(source_schema.schema)

    # 3. Transform.  Under-populated objects are dropped -- the 'delete'
    #    reading of an optional-to-required schema change (Section 1).
    morphase = Morphase([source_schema], genome.warehouse_schema(),
                        genome.PROGRAM_TEXT)
    result = morphase.transform(source)
    print("\n=== Warehouse instance ===")
    print(result.target)

    # 4. Export to relational tables (the Chr22DB side).
    tables = export_instance(result.target, genome.WAREHOUSE_TABLES)
    print("\n=== Exported tables ===")
    for name, table in tables.tables.items():
        print(f"  {name} ({len(table)} rows)")
        for row in table:
            print(f"    {row}")
    problems = tables.check_foreign_keys()
    print(f"\nforeign-key check: "
          f"{'clean' if not problems else problems}")

    # 5. Scale it up: a synthetic ACe22DB with 200 clones.
    big = genome.generate_acedb(genes=30, sequences=80, clones=200,
                                sparsity=0.85, seed=22)
    result = morphase.transform(genome.source_instance(big))
    print("\n=== Synthetic ACe22DB at scale ===")
    print(f"source objects: {len(big.objects)}")
    print(f"warehouse sizes: {result.target.class_sizes()}")
    print(f"execution: {result.stats.bindings_found} body matches in "
          f"{result.stats.elapsed_seconds * 1000:.1f} ms")


if __name__ == "__main__":
    main()
