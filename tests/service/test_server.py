"""HTTP front-end tests: the service smoke the CI job also runs.

A real ``ThreadingHTTPServer`` on an ephemeral port, driven through
:class:`repro.service.client.ServiceClient` — request/response shapes,
error mapping, and the differential guarantee observed *through the
wire*: the served target always equals a cold batch transform of the
store's final instance.
"""

import itertools
import json
import threading
import time

import pytest

from repro.io.json_io import instance_to_json
from repro.morphase import Morphase
from repro.service import ServiceClient, ServiceClientError, make_server
from repro.workloads import cities

INSERT_DELTA = {"inserts": {
    "CountryE": [{"id": {"$oid": "CountryE", "label": "CountryE#new"},
                  "value": {"$rec": {"name": "Utopia", "language": "u",
                                     "currency": "UTO"}}}],
    "CityE": [{"id": {"$oid": "CityE", "label": "CityE#new"},
               "value": {"$rec": {"name": "Nowhere", "is_capital": True,
                                  "country": {"$oid": "CountryE",
                                              "label": "CountryE#new"}}}}],
}}

_fresh = itertools.count()


def next_insert_delta(tag):
    """A unique one-country insert (labels must not collide)."""
    n = next(_fresh)
    return {"inserts": {"CountryE": [
        {"id": {"$oid": "CountryE", "label": f"CountryE#{tag}{n}"},
         "value": {"$rec": {"name": f"Land-{tag}-{n}", "language": "x",
                            "currency": f"c{n}"}}}]}}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                        cities.target_schema(), cities.PROGRAM_TEXT)
    store = morphase.open_store(
        str(tmp_path_factory.mktemp("service") / "store"),
        [cities.sample_us_instance(), cities.sample_euro_instance()])
    session = morphase.serve(store)
    server = make_server(session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield morphase, session, ServiceClient(server.url)
    server.shutdown()
    server.server_close()
    session.close()


class TestEndpoints:
    def test_health(self, service):
        _, _, client = service
        document = client.health()
        assert "seq" in document

    def test_ingest_then_query_matches_cold_batch(self, service):
        morphase, session, client = service
        before = client.health()["seq"]
        result = client.ingest(INSERT_DELTA)
        assert result["seq"] == before + 1
        assert result["applied_seq"] >= result["seq"]
        served = client.target()
        cold = morphase.transform(session.store.instance).target
        assert json.dumps(served, sort_keys=True) \
            == json.dumps(instance_to_json(cold), sort_keys=True)

    def test_extent_single_class(self, service):
        _, session, client = service
        document = client.extent("CountryT")
        assert document["class"] == "CountryT"
        assert document["count"] == len(document["objects"])
        assert document["count"] \
            == len(session.target.objects_of("CountryT"))

    def test_body_query_matches_batch_query(self, service):
        _, session, client = service
        document = client.query("X in CountryT, N = X.name",
                                project=["N"])
        assert document["columns"] == ["N"]
        from repro.query.query import Query
        target = session.target
        oracle = sorted({row["N"] for row in Query.parse(
            "N | X in CountryT, N = X.name",
            classes=target.schema.class_names()).run(target)})
        assert [row["N"] for row in document["rows"]] == oracle
        assert document["count"] == len(oracle)

    def test_every_endpoint_speaks_the_envelope(self, service):
        import urllib.request
        from repro.service.server import API_VERSION
        _, _, client = service
        for path in ("/health", "/stats", "/target",
                     "/query?class=CountryT", "/check"):
            with urllib.request.urlopen(client.base_url + path) as resp:
                document = json.loads(resp.read().decode("utf-8"))
            assert document["version"] == API_VERSION, path
            assert document["ok"] is True and "result" in document, path

    def test_check_reports_ok(self, service):
        _, _, client = service
        document = client.check()
        assert document["ok"] is True and document["violations"] == []

    def test_stats_counts_requests(self, service):
        _, _, client = service
        stats = client.stats()
        assert stats["seq"] == stats["applied_seq"]
        assert stats["store"]["path"]

    def test_snapshot_compacts(self, service):
        _, session, client = service
        document = client.snapshot()
        assert document["base_seq"] == session.store.seq
        assert session.store.wal.size_bytes() == 0


class TestErrorMapping:
    def test_unknown_route_404(self, service):
        _, _, client = service
        with pytest.raises(ServiceClientError) as info:
            client._call("GET", "/nothing")
        assert info.value.status == 404

    def test_unknown_class_404(self, service):
        _, _, client = service
        with pytest.raises(ServiceClientError) as info:
            client.extent("Nonsense")
        assert info.value.status == 404
        assert info.value.code == "not_found"
        assert "no class" in info.value.message

    def test_bad_body_400(self, service):
        _, _, client = service
        import urllib.request
        request = urllib.request.Request(
            client.base_url + "/ingest", data=b"not json",
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 400

    def test_undecodable_delta_400(self, service):
        _, _, client = service
        bad = {"updates": {"CountryE": [
            {"id": {"$oid": "CountryE", "label": "CountryE#ghost"},
             "value": {"$rec": {"name": "X", "language": "x",
                                "currency": "X"}}}]}}
        with pytest.raises(ServiceClientError) as info:
            client.ingest(bad)
        assert info.value.status == 400
        assert info.value.code == "bad_request"
        assert "cannot update" in info.value.message

    def test_missing_query_parameter_400(self, service):
        _, _, client = service
        with pytest.raises(ServiceClientError) as info:
            client._call("GET", "/query")
        assert info.value.status == 400

    def test_body_and_class_together_400(self, service):
        _, _, client = service
        with pytest.raises(ServiceClientError) as info:
            client._call("GET",
                         "/query?class=CountryT&body=X%20in%20CountryT")
        assert info.value.status == 400 \
            and info.value.code == "bad_request"

    def test_unparsable_body_is_parse_error_400(self, service):
        from repro.service import ServiceParseError
        _, _, client = service
        with pytest.raises(ServiceParseError) as info:
            client.query("X in in in")
        assert info.value.status == 400

    def test_unsafe_body_is_validation_error_422(self, service):
        from repro.service import ServiceValidationError
        _, _, client = service
        with pytest.raises(ServiceValidationError) as info:
            client.query("N = X.name")
        assert info.value.status == 422


class TestConcurrency:
    def test_readers_and_writers_interleave(self, service):
        morphase, session, client = service
        errors = []

        def writer(tag):
            try:
                client.ingest({"inserts": {"CountryE": [
                    {"id": {"$oid": "CountryE",
                            "label": f"CountryE#load{tag}"},
                     "value": {"$rec": {"name": f"Load{tag}",
                                        "language": f"l{tag}",
                                        "currency": f"L{tag}"}}}]}})
            except Exception as exc:  # pragma: no cover - fails test
                errors.append(exc)

        def reader():
            try:
                for _ in range(5):
                    client.extent("CountryT")
                    client.stats()
            except Exception as exc:  # pragma: no cover - fails test
                errors.append(exc)

        threads = ([threading.Thread(target=writer, args=(t,))
                    for t in range(6)]
                   + [threading.Thread(target=reader)
                      for _ in range(4)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        served = client.target()
        cold = morphase.transform(session.store.instance).target
        assert json.dumps(served, sort_keys=True) \
            == json.dumps(instance_to_json(cold), sort_keys=True)


class TestHealthAndSpentMapping:
    def test_spent_session_reports_unhealthy(self, service):
        _, session, client = service
        assert "seq" in client.health()
        session._failure = "induced for test"
        try:
            with pytest.raises(ServiceClientError) as info:
                client.health()
            assert info.value.status == 503
            assert info.value.code == "session_spent"
            assert info.value.document["ok"] is False
            assert "induced" in info.value.details["spent"]
            with pytest.raises(ServiceClientError) as info:
                client.ingest(INSERT_DELTA)
            assert info.value.status == 503
        finally:
            session._failure = None
        assert "seq" in client.health()

    def test_oversized_body_closes_connection(self, service):
        """An undrained over-limit body must not desynchronise
        keep-alive: the server closes the connection after the 400."""
        import http.client

        from repro.service.server import MAX_BODY_BYTES
        _, _, client = service
        host, port = client.base_url.replace("http://", "").split(":")
        conn = http.client.HTTPConnection(host, int(port))
        conn.putrequest("POST", "/ingest")
        conn.putheader("Content-Type", "application/json")
        conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
        conn.endheaders()
        response = conn.getresponse()
        body = response.read()
        assert response.status == 400 and b"over" in body
        assert response.will_close
        conn.close()


class TestLintEndpoint:
    BAD_PROGRAM = ("transformation K: X in CityT, X.state = V "
                   "<= S in StateA, V = S.nonexistent;")

    def test_lint_own_program_is_clean(self, service):
        _, _, client = service
        document = client.lint()
        assert document["ok"] is True
        assert document["diagnostics"] == []
        assert set(document["passes"]) == {
            "safety", "deadcode", "interference", "schema"}

    def test_lint_with_errors_is_still_200_report(self, service):
        _, _, client = service
        document = ServiceClient(client.base_url)._call(
            "POST", "/lint", body={"program": self.BAD_PROGRAM})
        assert document["ok"] is False
        assert any(d["code"] == "WOL102"
                   for d in document["diagnostics"])

    def test_client_surfaces_report_as_document(self, service):
        _, _, client = service
        document = client.lint(self.BAD_PROGRAM)
        assert document["ok"] is False and document["counts"]["error"] >= 1

    def test_lint_counter_in_stats(self, service):
        _, _, client = service
        before = client.stats()["lints"]
        client.lint()
        assert client.stats()["lints"] == before + 1

    def test_non_string_program_is_client_error(self, service):
        _, _, client = service
        with pytest.raises(ServiceClientError) as info:
            client._call("POST", "/lint", body={"program": 42})
        assert info.value.status == 400
        assert info.value.code == "bad_request"


class TestMalformedContentLength:
    def raw_post(self, client, length_header):
        import http.client
        host, port = client.base_url.replace("http://", "").split(":")
        conn = http.client.HTTPConnection(host, int(port))
        try:
            conn.putrequest("POST", "/ingest")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", length_header)
            conn.endheaders()
            response = conn.getresponse()
            return response, json.loads(response.read())
        finally:
            conn.close()

    def test_non_numeric_length_is_400_not_crash(self, service):
        """A malformed Content-Length used to escape as an unhandled
        ValueError (connection reset, stack trace on the server); it
        must be answered as a protocol parse error."""
        _, _, client = service
        response, document = self.raw_post(client, "banana")
        assert response.status == 400
        assert document["ok"] is False
        assert document["error"]["code"] == "parse_error"
        assert "banana" in document["error"]["message"]
        assert response.will_close  # the body cannot be framed

    def test_float_length_is_400(self, service):
        _, _, client = service
        response, document = self.raw_post(client, "12.5")
        assert response.status == 400
        assert document["error"]["code"] == "parse_error"

    def test_service_still_healthy_after(self, service):
        _, _, client = service
        self.raw_post(client, "not-a-length")
        assert "seq" in client.health()


class TestWildcardBindUrl:
    def test_wildcard_bind_yields_connectable_url(self):
        """``url`` used to echo the bind host — and nothing listens
        at ``http://0.0.0.0``: clients must be pointed at loopback."""
        from repro.service.server import ServiceServer
        server = ServiceServer.__new__(ServiceServer)
        server.server_address = ("0.0.0.0", 8973)
        assert server.url == "http://127.0.0.1:8973"
        server.server_address = ("", 8080)
        assert server.url == "http://127.0.0.1:8080"

    def test_ipv6_wildcard_and_literal_are_bracketed(self):
        from repro.service.server import ServiceServer
        server = ServiceServer.__new__(ServiceServer)
        server.server_address = ("::", 9000, 0, 0)
        assert server.url == "http://[::1]:9000"
        server.server_address = ("fe80::1", 9000, 0, 0)
        assert server.url == "http://[fe80::1]:9000"

    def test_explicit_host_passes_through(self):
        from repro.service.server import ServiceServer
        server = ServiceServer.__new__(ServiceServer)
        server.server_address = ("127.0.0.1", 8973)
        assert server.url == "http://127.0.0.1:8973"

    def test_real_wildcard_bind_is_reachable_via_url(self, service):
        morphase, session, _ = service
        from repro.service import make_server
        server = make_server(session, host="0.0.0.0", port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            assert "0.0.0.0" not in server.url
            assert "seq" in ServiceClient(server.url).health()
        finally:
            server.shutdown()
            server.server_close()


class TestMonotonicReadToken:
    def test_every_response_carries_the_seq_header(self, service):
        _, session, client = service
        import urllib.request
        with urllib.request.urlopen(client.base_url + "/health") as resp:
            value = resp.headers.get("X-Repro-Seq")
        assert value is not None
        assert int(value) == session.applied_seq

    def test_client_tracks_and_echoes_the_token(self, service):
        _, session, client = service
        client.health()
        assert client.last_seq == session.applied_seq

    def test_future_token_is_409_replica_behind(self, service):
        from repro.service import ServiceConflictError
        _, session, client = service
        impatient = ServiceClient(client.base_url, behind_wait=0.0)
        impatient.last_seq = session.applied_seq + 10
        with pytest.raises(ServiceConflictError) as info:
            impatient.health()
        assert info.value.status == 409
        assert info.value.code == "replica_behind"
        assert info.value.details["applied_seq"] == session.applied_seq
        assert info.value.details["requested_seq"] \
            == session.applied_seq + 10

    def test_malformed_token_is_400(self, service):
        import urllib.error
        import urllib.request
        _, _, client = service
        request = urllib.request.Request(
            client.base_url + "/health",
            headers={"X-Repro-Seq": "yesterday"})
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 400

    def test_behind_retry_succeeds_once_caught_up(self, service):
        """The client's retry loop resolves a transient 409 by itself
        once the node's applied seq passes the token."""
        _, session, client = service
        waiter = ServiceClient(client.base_url, behind_wait=5.0)
        waiter.last_seq = session.applied_seq + 1
        done = {}

        def read():
            done["seq"] = waiter.health()["seq"]

        thread = threading.Thread(target=read)
        thread.start()
        time.sleep(0.2)
        client.ingest(next_insert_delta("monotonic"))
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert done["seq"] == session.applied_seq


class TestWalEndpoint:
    def test_feed_serves_appended_records(self, service):
        _, session, client = service
        first = session.store.seq + 1
        client.ingest(next_insert_delta("walfeed"))
        feed = client.wal(first)
        assert feed["reset"] is False
        assert feed["seq"] == session.store.seq
        assert feed["records"][-1]["seq"] == session.store.seq
        assert all(r["seq"] >= first for r in feed["records"])

    def test_from_is_required(self, service):
        _, _, client = service
        with pytest.raises(ServiceClientError) as info:
            client._call("GET", "/wal")
        assert info.value.status == 400
        assert "from" in info.value.message

    def test_non_numeric_params_are_400(self, service):
        _, _, client = service
        for path in ("/wal?from=abc", "/wal?from=1&limit=x",
                     "/wal?from=1&wait=soon"):
            with pytest.raises(ServiceClientError) as info:
                client._call("GET", path)
            assert info.value.status == 400

    def test_compacted_cursor_answers_reset(self, service):
        _, session, client = service
        client.ingest(next_insert_delta("compactme"))
        client.snapshot()
        feed = client.wal(1)
        assert feed["reset"] is True
        assert feed["records"] == []
        assert feed["snapshot"] == session.store.snapshot_file

    def test_long_poll_wakes_on_append(self, service):
        _, session, client = service
        from_seq = session.store.seq + 1

        def later():
            time.sleep(0.2)
            client.ingest(next_insert_delta("longpoll"))

        thread = threading.Thread(target=later)
        thread.start()
        started = time.monotonic()
        feed = ServiceClient(client.base_url).wal(from_seq, wait=10.0)
        elapsed = time.monotonic() - started
        thread.join()
        assert feed["records"] and feed["records"][0]["seq"] == from_seq
        assert elapsed < 8.0  # woke on the append, not the deadline

    def test_expired_wait_returns_empty(self, service):
        _, session, client = service
        feed = client.wal(session.store.seq + 1, wait=0.1)
        assert feed["records"] == [] and feed["reset"] is False


class TestSnapshotFileEndpoint:
    def test_serves_the_live_snapshot_verbatim(self, service):
        _, session, client = service
        name = session.store.snapshot_file
        document = client.snapshot_file(name)
        from repro.store.snapshot import snapshot_name
        canonical = json.dumps(document, sort_keys=True,
                               separators=(",", ":")).encode()
        assert snapshot_name(canonical) == name
        assert document["base_seq"] == session.store.base_seq

    def test_malformed_names_are_400(self, service):
        _, _, client = service
        for name in ("../CURRENT.json", "snap-upperCASE000000000000.json",
                     "wal.jsonl", "snap-abc.json"):
            with pytest.raises(ServiceClientError) as info:
                client._call("GET", "/snapshot/" + name)
            assert info.value.status == 400, name

    def test_unknown_snapshot_is_404(self, service):
        _, _, client = service
        with pytest.raises(ServiceClientError) as info:
            client.snapshot_file("snap-" + "0" * 24 + ".json")
        assert info.value.status == 404
