"""HTTP front-end tests: the service smoke the CI job also runs.

A real ``ThreadingHTTPServer`` on an ephemeral port, driven through
:class:`repro.service.client.ServiceClient` — request/response shapes,
error mapping, and the differential guarantee observed *through the
wire*: the served target always equals a cold batch transform of the
store's final instance.
"""

import json
import threading

import pytest

from repro.io.json_io import instance_to_json
from repro.morphase import Morphase
from repro.service import ServiceClient, ServiceClientError, make_server
from repro.workloads import cities

INSERT_DELTA = {"inserts": {
    "CountryE": [{"id": {"$oid": "CountryE", "label": "CountryE#new"},
                  "value": {"$rec": {"name": "Utopia", "language": "u",
                                     "currency": "UTO"}}}],
    "CityE": [{"id": {"$oid": "CityE", "label": "CityE#new"},
               "value": {"$rec": {"name": "Nowhere", "is_capital": True,
                                  "country": {"$oid": "CountryE",
                                              "label": "CountryE#new"}}}}],
}}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                        cities.target_schema(), cities.PROGRAM_TEXT)
    store = morphase.open_store(
        str(tmp_path_factory.mktemp("service") / "store"),
        [cities.sample_us_instance(), cities.sample_euro_instance()])
    session = morphase.serve(store)
    server = make_server(session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield morphase, session, ServiceClient(server.url)
    server.shutdown()
    server.server_close()
    session.close()


class TestEndpoints:
    def test_health(self, service):
        _, _, client = service
        document = client.health()
        assert "seq" in document

    def test_ingest_then_query_matches_cold_batch(self, service):
        morphase, session, client = service
        before = client.health()["seq"]
        result = client.ingest(INSERT_DELTA)
        assert result["seq"] == before + 1
        assert result["applied_seq"] >= result["seq"]
        served = client.target()
        cold = morphase.transform(session.store.instance).target
        assert json.dumps(served, sort_keys=True) \
            == json.dumps(instance_to_json(cold), sort_keys=True)

    def test_extent_single_class(self, service):
        _, session, client = service
        document = client.extent("CountryT")
        assert document["class"] == "CountryT"
        assert document["count"] == len(document["objects"])
        assert document["count"] \
            == len(session.target.objects_of("CountryT"))

    def test_body_query_matches_batch_query(self, service):
        _, session, client = service
        document = client.query("X in CountryT, N = X.name",
                                project=["N"])
        assert document["columns"] == ["N"]
        from repro.query.query import Query
        target = session.target
        oracle = sorted({row["N"] for row in Query.parse(
            "N | X in CountryT, N = X.name",
            classes=target.schema.class_names()).run(target)})
        assert [row["N"] for row in document["rows"]] == oracle
        assert document["count"] == len(oracle)

    def test_every_endpoint_speaks_the_envelope(self, service):
        import urllib.request
        from repro.service.server import API_VERSION
        _, _, client = service
        for path in ("/health", "/stats", "/target",
                     "/query?class=CountryT", "/check"):
            with urllib.request.urlopen(client.base_url + path) as resp:
                document = json.loads(resp.read().decode("utf-8"))
            assert document["version"] == API_VERSION, path
            assert document["ok"] is True and "result" in document, path

    def test_check_reports_ok(self, service):
        _, _, client = service
        document = client.check()
        assert document["ok"] is True and document["violations"] == []

    def test_stats_counts_requests(self, service):
        _, _, client = service
        stats = client.stats()
        assert stats["seq"] == stats["applied_seq"]
        assert stats["store"]["path"]

    def test_snapshot_compacts(self, service):
        _, session, client = service
        document = client.snapshot()
        assert document["base_seq"] == session.store.seq
        assert session.store.wal.size_bytes() == 0


class TestErrorMapping:
    def test_unknown_route_404(self, service):
        _, _, client = service
        with pytest.raises(ServiceClientError) as info:
            client._call("GET", "/nothing")
        assert info.value.status == 404

    def test_unknown_class_404(self, service):
        _, _, client = service
        with pytest.raises(ServiceClientError) as info:
            client.extent("Nonsense")
        assert info.value.status == 404
        assert info.value.code == "not_found"
        assert "no class" in info.value.message

    def test_bad_body_400(self, service):
        _, _, client = service
        import urllib.request
        request = urllib.request.Request(
            client.base_url + "/ingest", data=b"not json",
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 400

    def test_undecodable_delta_400(self, service):
        _, _, client = service
        bad = {"updates": {"CountryE": [
            {"id": {"$oid": "CountryE", "label": "CountryE#ghost"},
             "value": {"$rec": {"name": "X", "language": "x",
                                "currency": "X"}}}]}}
        with pytest.raises(ServiceClientError) as info:
            client.ingest(bad)
        assert info.value.status == 400
        assert info.value.code == "bad_request"
        assert "cannot update" in info.value.message

    def test_missing_query_parameter_400(self, service):
        _, _, client = service
        with pytest.raises(ServiceClientError) as info:
            client._call("GET", "/query")
        assert info.value.status == 400

    def test_body_and_class_together_400(self, service):
        _, _, client = service
        with pytest.raises(ServiceClientError) as info:
            client._call("GET",
                         "/query?class=CountryT&body=X%20in%20CountryT")
        assert info.value.status == 400 \
            and info.value.code == "bad_request"

    def test_unparsable_body_is_parse_error_400(self, service):
        from repro.service import ServiceParseError
        _, _, client = service
        with pytest.raises(ServiceParseError) as info:
            client.query("X in in in")
        assert info.value.status == 400

    def test_unsafe_body_is_validation_error_422(self, service):
        from repro.service import ServiceValidationError
        _, _, client = service
        with pytest.raises(ServiceValidationError) as info:
            client.query("N = X.name")
        assert info.value.status == 422


class TestConcurrency:
    def test_readers_and_writers_interleave(self, service):
        morphase, session, client = service
        errors = []

        def writer(tag):
            try:
                client.ingest({"inserts": {"CountryE": [
                    {"id": {"$oid": "CountryE",
                            "label": f"CountryE#load{tag}"},
                     "value": {"$rec": {"name": f"Load{tag}",
                                        "language": f"l{tag}",
                                        "currency": f"L{tag}"}}}]}})
            except Exception as exc:  # pragma: no cover - fails test
                errors.append(exc)

        def reader():
            try:
                for _ in range(5):
                    client.extent("CountryT")
                    client.stats()
            except Exception as exc:  # pragma: no cover - fails test
                errors.append(exc)

        threads = ([threading.Thread(target=writer, args=(t,))
                    for t in range(6)]
                   + [threading.Thread(target=reader)
                      for _ in range(4)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        served = client.target()
        cold = morphase.transform(session.store.instance).target
        assert json.dumps(served, sort_keys=True) \
            == json.dumps(instance_to_json(cold), sort_keys=True)


class TestHealthAndSpentMapping:
    def test_spent_session_reports_unhealthy(self, service):
        _, session, client = service
        assert "seq" in client.health()
        session._failure = "induced for test"
        try:
            with pytest.raises(ServiceClientError) as info:
                client.health()
            assert info.value.status == 503
            assert info.value.code == "session_spent"
            assert info.value.document["ok"] is False
            assert "induced" in info.value.details["spent"]
            with pytest.raises(ServiceClientError) as info:
                client.ingest(INSERT_DELTA)
            assert info.value.status == 503
        finally:
            session._failure = None
        assert "seq" in client.health()

    def test_oversized_body_closes_connection(self, service):
        """An undrained over-limit body must not desynchronise
        keep-alive: the server closes the connection after the 400."""
        import http.client

        from repro.service.server import MAX_BODY_BYTES
        _, _, client = service
        host, port = client.base_url.replace("http://", "").split(":")
        conn = http.client.HTTPConnection(host, int(port))
        conn.putrequest("POST", "/ingest")
        conn.putheader("Content-Type", "application/json")
        conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
        conn.endheaders()
        response = conn.getresponse()
        body = response.read()
        assert response.status == 400 and b"over" in body
        assert response.will_close
        conn.close()


class TestLintEndpoint:
    BAD_PROGRAM = ("transformation K: X in CityT, X.state = V "
                   "<= S in StateA, V = S.nonexistent;")

    def test_lint_own_program_is_clean(self, service):
        _, _, client = service
        document = client.lint()
        assert document["ok"] is True
        assert document["diagnostics"] == []
        assert set(document["passes"]) == {
            "safety", "deadcode", "interference", "schema"}

    def test_lint_with_errors_is_still_200_report(self, service):
        _, _, client = service
        document = ServiceClient(client.base_url)._call(
            "POST", "/lint", body={"program": self.BAD_PROGRAM})
        assert document["ok"] is False
        assert any(d["code"] == "WOL102"
                   for d in document["diagnostics"])

    def test_client_surfaces_report_as_document(self, service):
        _, _, client = service
        document = client.lint(self.BAD_PROGRAM)
        assert document["ok"] is False and document["counts"]["error"] >= 1

    def test_lint_counter_in_stats(self, service):
        _, _, client = service
        before = client.stats()["lints"]
        client.lint()
        assert client.stats()["lints"] == before + 1

    def test_non_string_program_is_client_error(self, service):
        _, _, client = service
        with pytest.raises(ServiceClientError) as info:
            client._call("POST", "/lint", body={"program": 42})
        assert info.value.status == 400
        assert info.value.code == "bad_request"
