"""WarehouseSession tests: warm state vs the cold-batch oracle.

The differential guarantee the service layer rides on: after any
sequence of ingested deltas, the warm session's target is
byte-identical to a cold ``Morphase.transform`` of the store's final
instance, and its violation set matches a cold audit.  Plus the
service-specific machinery: group-commit batching, concurrent
ingestion, label-addressed JSON ingestion, snapshot during operation.
"""

import json
import threading

import pytest

from repro.constraints.audit import audit_constraints
from repro.evolution.delta import Delta, compose_deltas, delta_between
from repro.io.json_io import instance_to_json
from repro.model.values import Oid, Record
from repro.morphase import Morphase
from repro.service.session import ServiceError
from repro.workloads import cities


def make_morphase():
    return Morphase([cities.us_schema(), cities.euro_schema()],
                    cities.target_schema(), cities.PROGRAM_TEXT)


@pytest.fixture()
def morphase():
    return make_morphase()


@pytest.fixture()
def session(morphase, tmp_path):
    store = morphase.open_store(
        str(tmp_path / "store"),
        [cities.sample_us_instance(), cities.sample_euro_instance()])
    session = morphase.serve(store)
    yield session
    session.close()


def dumps(instance) -> str:
    return json.dumps(instance_to_json(instance), sort_keys=True)


def insert_country(tag):
    oid = Oid.fresh("CountryE")
    return oid, Delta(inserts={"CountryE": {oid: Record.of(
        name=f"Land{tag}", language=f"lang{tag}", currency=f"C{tag}")}})


def assert_matches_cold_oracle(session):
    morphase, store = session.morphase, session.store
    cold = morphase.transform(store.instance)
    assert dumps(session.target) == dumps(cold.target)
    constraints = list(morphase.compile().source_constraints)
    report = audit_constraints(store.instance, constraints,
                               limit_per_clause=None)
    oracle = sorted(str(v) for name in report.failed_clauses()
                    for v in report.violations[name])
    assert sorted(str(v) for v in session.audit.violations()) == oracle


class TestDifferential:
    def test_each_ingest_matches_cold_batch(self, session):
        for tag in range(4):
            oid, delta = insert_country(tag)
            result = session.ingest(delta)
            assert result.applied_seq >= result.seq
            assert_matches_cold_oracle(session)

    def test_mixed_ops_match(self, session):
        oid, delta = insert_country("X")
        session.ingest(delta)
        session.ingest(Delta(updates={"CountryE": {oid: Record.of(
            name="LandX", language="other", currency="CX")}}))
        assert_matches_cold_oracle(session)
        session.ingest(Delta(deletes={"CountryE": (oid,)}))
        assert_matches_cold_oracle(session)

    def test_warm_rebuild_replays_tail_through_rebase(self, morphase,
                                                      tmp_path):
        store = morphase.open_store(
            str(tmp_path / "store"),
            [cities.sample_us_instance(), cities.sample_euro_instance()])
        first = morphase.serve(store)
        for tag in range(3):
            first.ingest(insert_country(tag)[1])
        first.close()
        reopened = morphase.open_store(str(tmp_path / "store"))
        assert len(reopened.tail) == 3
        warm = morphase.serve(reopened)
        assert warm.counters.replayed_on_open == 3
        assert_matches_cold_oracle(warm)
        warm.close()

    def test_ingest_json_with_labels(self, session):
        session.ingest_json({"inserts": {
            "CountryE": [{"id": {"$oid": "CountryE",
                                 "label": "CountryE#new"},
                          "value": {"$rec": {"name": "Utopia",
                                             "language": "u",
                                             "currency": "UTO"}}}],
            "CityE": [{"id": {"$oid": "CityE", "label": "CityE#new"},
                       "value": {"$rec": {
                           "name": "Nowhere", "is_capital": True,
                           "country": {"$oid": "CountryE",
                                       "label": "CountryE#new"}}}}]}})
        assert_matches_cold_oracle(session)
        # the client's label remains the durable address
        session.ingest_json({"updates": {
            "CityE": [{"id": {"$oid": "CityE", "label": "CityE#new"},
                       "value": {"$rec": {
                           "name": "Somewhere", "is_capital": True,
                           "country": {"$oid": "CountryE",
                                       "label": "CountryE#new"}}}}]}})
        assert_matches_cold_oracle(session)
        names = {session.store.instance.value_of(oid).get("name")
                 for oid in session.store.instance.objects_of("CityE")}
        assert "Somewhere" in names and "Nowhere" not in names


class TestBatching:
    def test_concurrent_ingest_all_land(self, session):
        errors = []

        def worker(tag):
            try:
                session.ingest(insert_country(tag)[1])
            except Exception as exc:  # pragma: no cover - fails test
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert session.counters.ingested == 8
        assert session.store.seq == 8
        assert 1 <= session.counters.batches <= 8
        assert_matches_cold_oracle(session)

    def test_compose_equals_sequential(self, session):
        base = session.store.instance
        oid_a, delta_a = insert_country("A")
        delta_b = Delta(updates={"CountryE": {oid_a: Record.of(
            name="LandA", language="changed", currency="CA")}})
        composed = compose_deltas(delta_a, delta_b)
        sequential = delta_b.apply_to(delta_a.apply_to(base))
        assert delta_between(composed.apply_to(base),
                             sequential).is_empty()

    def test_empty_delta_is_acknowledged(self, session):
        result = session.ingest(Delta())
        assert result.seq == session.store.seq
        assert result.batch_size == 0


class TestMaintenance:
    def test_snapshot_during_operation(self, session):
        session.ingest(insert_country("A")[1])
        report = session.snapshot()
        assert report["base_seq"] == 1
        session.ingest(insert_country("B")[1])
        assert_matches_cold_oracle(session)
        assert session.counters.snapshots == 1

    def test_query_json_unknown_class(self, session):
        with pytest.raises(ServiceError, match="no class"):
            session.query_json("Nonsense")

    def test_stats_shape(self, session):
        session.ingest(insert_country("A")[1])
        stats = session.stats_json()
        assert stats["seq"] == 1 and stats["applied_seq"] == 1
        assert stats["ingested"] == 1
        assert stats["store"]["wal_records"] == 1
        assert stats["spent"] is None
