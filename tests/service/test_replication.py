"""Leader→follower WAL replication, end to end over real HTTP.

The acceptance bar: a follower seeded from the leader's snapshot and
tailing its ``/wal`` feed converges to a *byte-identical* ``/target``
document — the replicated state machine argument made empirical.
Everything here drives the follower deterministically through
``step()``/``catch_up()`` (no background thread) except the one test
of the threaded tailing loop itself.
"""

import itertools
import json
import threading
import time

import pytest

from repro.morphase import Morphase
from repro.service import (ReplicaError, ServiceClient,
                           ServiceConflictError, WalReplica,
                           make_server)
from repro.workloads import cities

_fresh = itertools.count()


def insert_delta(tag="r"):
    n = next(_fresh)
    return {"inserts": {"CountryE": [
        {"id": {"$oid": "CountryE", "label": f"CountryE#{tag}{n}"},
         "value": {"$rec": {"name": f"Land-{tag}-{n}", "language": "x",
                            "currency": f"c{n}"}}}]}}


def build_morphase():
    return Morphase([cities.us_schema(), cities.euro_schema()],
                    cities.target_schema(), cities.PROGRAM_TEXT)


@pytest.fixture()
def leader(tmp_path):
    morphase = build_morphase()
    store = morphase.open_store(
        str(tmp_path / "leader"),
        [cities.sample_us_instance(), cities.sample_euro_instance()])
    session = morphase.serve(store)
    server = make_server(session)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    yield morphase, session, ServiceClient(server.url), server.url
    server.shutdown()
    server.server_close()
    session.close()


def make_replica(leader_url, tmp_path, name="replica", **kwargs):
    # A separate Morphase instance: the follower is its own process in
    # production and must not lean on the leader's in-memory state.
    return WalReplica(build_morphase(), leader_url,
                      str(tmp_path / name), **kwargs)


class TestSeedAndCatchUp:
    def test_replica_target_is_byte_identical(self, leader, tmp_path):
        _, session, client, url = leader
        for _ in range(4):
            client.ingest(insert_delta())
        replica = make_replica(url, tmp_path)
        rsession = replica.bootstrap()
        replica.catch_up()
        assert rsession.store.seq == session.store.seq
        assert json.dumps(rsession.target_json(), sort_keys=True) \
            == json.dumps(session.target_json(), sort_keys=True)
        # And over the wire, through a second HTTP server:
        rserver = make_server(rsession)
        threading.Thread(target=rserver.serve_forever,
                         daemon=True).start()
        try:
            assert json.dumps(ServiceClient(rserver.url).target(),
                              sort_keys=True) \
                == json.dumps(client.target(), sort_keys=True)
        finally:
            rserver.shutdown()
            rserver.server_close()
        replica.close()

    def test_seed_verifies_snapshot_content_address(self, leader,
                                                    tmp_path):
        _, session, client, url = leader
        client.ingest(insert_delta())
        client.snapshot()  # give the seed a non-trivial base_seq
        replica = make_replica(url, tmp_path)
        rsession = replica.bootstrap()
        assert rsession.store.base_seq == session.store.base_seq
        assert rsession.store.snapshot_file \
            == session.store.snapshot_file
        replica.close()

    def test_checks_and_queries_match(self, leader, tmp_path):
        _, session, client, url = leader
        client.ingest(insert_delta())
        replica = make_replica(url, tmp_path)
        rsession = replica.bootstrap()
        replica.catch_up()
        # Violation *strings* embed process-local oid serials, so
        # compare the semantic content: count, verdict, and which
        # clauses fired.
        mine, theirs = rsession.check_json(), session.check_json()
        assert (mine["ok"], mine["count"]) \
            == (theirs["ok"], theirs["count"])
        assert {v.split(" at ")[0] for v in mine["violations"]} \
            == {v.split(" at ")[0] for v in theirs["violations"]}
        body = "X in CountryT, N = X.name"
        assert rsession.query_body_json(body, project="N") \
            == session.query_body_json(body, project="N")
        replica.close()


class TestReadOnly:
    def test_writes_answer_409_with_leader_address(self, leader,
                                                   tmp_path):
        _, _, client, url = leader
        replica = make_replica(url, tmp_path)
        rsession = replica.bootstrap()
        rserver = make_server(rsession)
        threading.Thread(target=rserver.serve_forever,
                         daemon=True).start()
        try:
            with pytest.raises(ServiceConflictError) as info:
                ServiceClient(rserver.url).ingest(insert_delta())
            assert info.value.status == 409
            assert info.value.code == "read_only_replica"
            assert info.value.details["leader"] == url
        finally:
            rserver.shutdown()
            rserver.server_close()
        replica.close()

    def test_replica_stats_report_role_and_lag(self, leader, tmp_path):
        _, _, client, url = leader
        replica = make_replica(url, tmp_path)
        rsession = replica.bootstrap()
        replica.step(wait=0.0)
        client.ingest(insert_delta())
        client.ingest(insert_delta())
        replica.step(wait=0.0)  # observe leader_seq and apply
        stats = rsession.stats_json()
        assert stats["role"] == "replica"
        assert stats["replication"]["leader"] == url
        assert stats["replication"]["lag"] == 0
        assert stats["replication"]["records_replicated"] == 2
        assert stats["replication"]["connected"] is True
        replica.close()


class TestFeedDiscipline:
    def test_duplicate_delivery_is_idempotent(self, leader, tmp_path):
        _, session, client, url = leader
        client.ingest(insert_delta())
        replica = make_replica(url, tmp_path)
        rsession = replica.bootstrap()
        replica.catch_up()
        feed = client.wal(1)
        assert feed["records"]  # the whole tail, already applied
        assert rsession.replicate(feed["records"]) == 0
        assert rsession.store.seq == session.store.seq

    def test_gap_raises_replica_error(self, leader, tmp_path):
        _, _, client, url = leader
        for _ in range(3):
            client.ingest(insert_delta())
        replica = make_replica(url, tmp_path)
        rsession = replica.bootstrap()
        feed = client.wal(1)
        with_gap = [feed["records"][0], feed["records"][2]]
        with pytest.raises(ReplicaError, match="gap"):
            rsession.replicate(with_gap)
        replica.close()

    def test_compaction_forces_snapshot_reseed(self, leader, tmp_path):
        _, session, client, url = leader
        client.ingest(insert_delta())
        replica = make_replica(url, tmp_path)
        rsession = replica.bootstrap()
        replica.catch_up()
        behind = rsession.store.seq
        # Leader moves on AND compacts past the replica's cursor: the
        # records it needs are gone, only the snapshot has them.
        for _ in range(3):
            client.ingest(insert_delta())
        client.snapshot()
        assert session.store.base_seq > behind
        applied = replica.step(wait=0.0)
        assert applied == 0  # the step was a reseed, not a replay
        assert rsession.replication.resyncs == 1
        assert rsession.store.seq == session.store.seq
        assert json.dumps(rsession.target_json(), sort_keys=True) \
            == json.dumps(session.target_json(), sort_keys=True)
        replica.close()

    def test_restart_resumes_from_local_store(self, leader, tmp_path):
        _, session, client, url = leader
        client.ingest(insert_delta())
        replica = make_replica(url, tmp_path)
        replica.bootstrap()
        replica.catch_up()
        replica.close()
        client.ingest(insert_delta())  # while the follower is down
        again = make_replica(url, tmp_path)  # same store directory
        rsession = again.bootstrap()
        assert again.catch_up() == session.store.seq
        assert json.dumps(rsession.target_json(), sort_keys=True) \
            == json.dumps(session.target_json(), sort_keys=True)
        again.close()


class TestChainedReplication:
    def test_replica_of_a_replica_converges(self, leader, tmp_path):
        """The feed lives on the session, so followers can fan out in
        a tree: a second-tier replica tails the first-tier one."""
        _, session, client, url = leader
        client.ingest(insert_delta())
        mid = make_replica(url, tmp_path, name="mid")
        mid_session = mid.bootstrap()
        mid.catch_up()
        mid_server = make_server(mid_session)
        threading.Thread(target=mid_server.serve_forever,
                         daemon=True).start()
        try:
            edge = make_replica(mid_server.url, tmp_path, name="edge")
            edge_session = edge.bootstrap()
            edge.catch_up()
            client.ingest(insert_delta())
            mid.catch_up()
            edge.catch_up()
            assert json.dumps(edge_session.target_json(),
                              sort_keys=True) \
                == json.dumps(session.target_json(), sort_keys=True)
            edge.close()
        finally:
            mid_server.shutdown()
            mid_server.server_close()
        mid.close()


class TestThreadedTailing:
    def test_start_tails_until_stopped(self, leader, tmp_path):
        _, session, client, url = leader
        replica = make_replica(url, tmp_path, poll_wait=0.2,
                               retry_seconds=0.05)
        rsession = replica.start()
        try:
            client.ingest(insert_delta())
            target_seq = session.store.seq
            deadline = time.monotonic() + 15.0
            while (rsession.store.seq < target_seq
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert rsession.store.seq == target_seq
            assert json.dumps(rsession.target_json(), sort_keys=True) \
                == json.dumps(session.target_json(), sort_keys=True)
        finally:
            replica.close()

    def test_leader_outage_is_survived(self, leader, tmp_path):
        """An unreachable leader marks the replica disconnected; the
        loop keeps retrying instead of dying."""
        _, _, client, url = leader
        replica = make_replica(url, tmp_path)
        rsession = replica.bootstrap()
        replica.leader_url = "http://127.0.0.1:9"  # discard port
        replica.timeout = 0.2
        with pytest.raises(ReplicaError):
            replica.step(wait=0.0)
        replica.leader_url = url
        replica.timeout = 30.0
        client.ingest(insert_delta())
        replica.catch_up()
        assert rsession.replication.connected is True
        replica.close()


class TestMonotonicReadsAcrossNodes:
    def test_client_token_blocks_stale_replica_then_succeeds(
            self, leader, tmp_path):
        _, session, client, url = leader
        replica = make_replica(url, tmp_path)
        rsession = replica.bootstrap()
        replica.catch_up()
        rserver = make_server(rsession)
        threading.Thread(target=rserver.serve_forever,
                         daemon=True).start()
        try:
            client.ingest(insert_delta())  # replica now behind
            rclient = ServiceClient(rserver.url, behind_wait=10.0)
            rclient.last_seq = client.last_seq  # token from the leader
            assert rclient.last_seq > rsession.applied_seq

            # Impatient client: surfaces the 409 instead of waiting.
            blunt = ServiceClient(rserver.url, behind_wait=0.0)
            blunt.last_seq = client.last_seq
            with pytest.raises(ServiceConflictError) as info:
                blunt.stats()
            assert info.value.code == "replica_behind"

            # Patient client: the retry loop resolves once the tailer
            # catches up.
            threading.Thread(
                target=lambda: (time.sleep(0.2),
                                replica.step(wait=0.0)),
                daemon=True).start()
            stats = rclient.stats()
            assert stats["applied_seq"] >= rclient.last_seq
            assert stats["role"] == "replica"
        finally:
            rserver.shutdown()
            rserver.server_close()
        replica.close()
