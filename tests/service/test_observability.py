"""End-to-end observability over real HTTP: /metrics scrapes on
leader and follower, trace propagation across the replication hop,
slow-query events correlated by trace id, and the client's handling
of non-envelope 5xx bodies."""

import io
import itertools
import json
import logging
import threading

import pytest

from repro.morphase import Morphase
from repro.obs.events import configure_event_log
from repro.obs.events import logger as event_logger
from repro.obs.trace import start_trace
from repro.service import (ServiceClient, ServiceClientError,
                           WalReplica, make_server)
from repro.workloads import cities

_fresh = itertools.count()


def insert_delta(tag="o"):
    n = next(_fresh)
    return {"inserts": {"CountryE": [
        {"id": {"$oid": "CountryE", "label": f"CountryE#{tag}{n}"},
         "value": {"$rec": {"name": f"Land-{tag}-{n}", "language": "x",
                            "currency": f"c{n}"}}}]}}


def build_morphase():
    return Morphase([cities.us_schema(), cities.euro_schema()],
                    cities.target_schema(), cities.PROGRAM_TEXT)


def serve(session, **kwargs):
    server = make_server(session, **kwargs)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


def stop(server):
    server.shutdown()
    server.server_close()


@pytest.fixture()
def leader(tmp_path):
    morphase = build_morphase()
    store = morphase.open_store(
        str(tmp_path / "leader"),
        [cities.sample_us_instance(), cities.sample_euro_instance()])
    session = morphase.serve(store)
    server = serve(session)
    yield session, ServiceClient(server.url), server.url
    stop(server)
    session.close()


@pytest.fixture()
def events():
    """Capture structured events emitted anywhere in-process."""
    stream = io.StringIO()
    handler = configure_event_log(stream, level=logging.DEBUG)
    yield lambda: [json.loads(line)
                   for line in stream.getvalue().splitlines() if line]
    event_logger.removeHandler(handler)
    event_logger.setLevel(logging.NOTSET)


def scrape_until(client, name, key, tries=50):
    """Scrape /metrics until ``name``'s ``key`` sample appears.

    Request metrics are recorded after the response is written, so a
    scrape issued immediately after a response can race the recording
    thread by a few microseconds.
    """
    import time as _time
    for _ in range(tries):
        text = client.metrics()
        if key in metric_samples(text, name):
            return text
        _time.sleep(0.01)
    raise AssertionError(f"{name}{key} never appeared in /metrics")


def metric_samples(text, name):
    """Parse one family's samples out of a Prometheus text page."""
    out = {}
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith("#"):
            rest = line[len(name):]
            if rest[:1] not in ("{", " "):
                continue  # a longer name sharing the prefix
            labels, _, value = rest.rpartition(" ")
            out[labels.strip()] = float(value)
    return out


class TestMetricsEndpoint:
    def test_leader_scrape_shows_request_wal_and_engine_families(
            self, leader):
        session, client, _url = leader
        client.ingest(insert_delta())
        client.query("X in CountryT, N = X.name", project=["N"])
        text = scrape_until(
            client, "repro_http_requests_total",
            '{method="GET",endpoint="/query",status="200"}')
        # Request-level families, with the endpoint label bounded to
        # known routes:
        requests = metric_samples(text, "repro_http_requests_total")
        assert requests['{method="POST",endpoint="/ingest",'
                        'status="200"}'] >= 1
        assert requests['{method="GET",endpoint="/query",'
                        'status="200"}'] >= 1
        latency = metric_samples(text, "repro_http_request_seconds_count")
        assert latency['{method="GET",endpoint="/query"}'] >= 1
        # Durability path: the ingest appended (and timed) WAL records.
        assert metric_samples(text, "repro_wal_appends_total")[""] >= 1
        assert metric_samples(text,
                              "repro_wal_append_seconds_count")[""] >= 1
        # The query ran through an engine and published its stats.
        runs = metric_samples(text, "repro_engine_runs_total")
        assert sum(runs.values()) >= 1
        # Session identity and progress gauges.
        assert metric_samples(text, "repro_session_role")[
            '{role="leader"}'] == 1
        assert metric_samples(text, "repro_session_applied_seq")[""] \
            == session.applied_seq
        assert metric_samples(text, "repro_session_ingested")[""] >= 1

    def test_scrape_content_type_is_prometheus_text(self, leader):
        import urllib.request
        _session, _client, url = leader
        with urllib.request.urlopen(url + "/metrics") as resp:
            assert resp.headers["Content-Type"] \
                == "text/plain; version=0.0.4; charset=utf-8"
            assert b"# TYPE repro_http_requests_total counter" \
                in resp.read()

    def test_follower_scrape_shows_replication_lag(self, leader,
                                                   tmp_path):
        session, client, url = leader
        client.ingest(insert_delta())
        replica = WalReplica(build_morphase(), url,
                             str(tmp_path / "replica"))
        rsession = replica.bootstrap()
        replica.catch_up()
        rserver = serve(rsession)
        try:
            text = ServiceClient(rserver.url).metrics()
            assert metric_samples(text, "repro_session_role")[
                '{role="replica"}'] == 1
            assert metric_samples(text, "repro_replication_lag")[""] \
                == 0
            assert metric_samples(text,
                                  "repro_replication_leader_seq")[""] \
                == session.applied_seq
            assert metric_samples(text,
                                  "repro_replication_records")[""] >= 1
        finally:
            stop(rserver)
            replica.close()

    def test_compaction_metrics_after_snapshot(self, leader):
        _session, client, _url = leader
        client.ingest(insert_delta())
        client.snapshot()
        text = client.metrics()
        assert metric_samples(text,
                              "repro_store_compactions_total")[""] >= 1
        assert metric_samples(
            text, "repro_store_compaction_seconds_count")[""] >= 1
        assert metric_samples(text, "repro_wal_resets_total")[""] >= 1


class TestTracing:
    def test_traced_query_embeds_plan_span_tree(self, leader):
        _session, client, _url = leader
        client.query("X in CountryT, N = X.name", project=["N"],
                     trace=True)
        trace = client.last_trace
        assert trace is not None
        assert len(trace["trace_id"]) == 16
        root = trace["root"]
        assert root["name"] == "GET /query"
        names = [child["name"] for child in root.get("spans", [])]
        assert "parse" in names and "execute" in names
        execute = root["spans"][names.index("execute")]
        assert "rows" in execute.get("attrs", {})
        # The columnar engine's per-PlanStep spans ride inside
        # execute: numbered, labelled by atom, with row counts.
        steps = execute.get("spans", [])
        assert steps and steps[0]["name"].startswith("1. ")
        for step in steps:
            attrs = step.get("attrs", {})
            assert attrs.get("mode") in ("vec", "fallback")
            assert "rows_in" in attrs and "rows_out" in attrs

    def test_untraced_response_has_no_trace(self, leader):
        _session, client, _url = leader
        client.query("X in CountryT, N = X.name", project=["N"])
        assert client.last_trace is None

    def test_client_trace_id_is_adopted_by_the_server(self, leader):
        _session, client, _url = leader
        with start_trace("cli transform", trace_id="cafe0123feed4567"):
            client.query("X in CountryT, N = X.name", project=["N"],
                         trace=True)
        assert client.last_trace["trace_id"] == "cafe0123feed4567"

    def test_trace_id_propagates_across_the_replication_hop(
            self, leader, tmp_path, events):
        """leader → follower: the replica's /wal poll carries the
        active trace id, and the leader's request event records it."""
        _session, client, url = leader
        client.ingest(insert_delta())
        replica = WalReplica(build_morphase(), url,
                             str(tmp_path / "replica"))
        replica.bootstrap()
        try:
            with start_trace("replica catch-up",
                             trace_id="beef8765dead4321"):
                replica.catch_up()
        finally:
            replica.close()
        wal_requests = [e for e in events()
                        if e["event"] == "http_request"
                        and e["endpoint"] == "/wal"]
        assert wal_requests, "leader never logged the /wal poll"
        assert any(e.get("trace_id") == "beef8765dead4321"
                   for e in wal_requests)


class TestSlowQueryLog:
    def test_slow_reads_emit_correlated_events(self, tmp_path, events):
        morphase = build_morphase()
        store = morphase.open_store(
            str(tmp_path / "slow"),
            [cities.sample_us_instance(),
             cities.sample_euro_instance()])
        session = morphase.serve(store)
        # Threshold 0: every read is "slow" — deterministic firing.
        server = serve(session, slow_query_ms=0.0)
        try:
            client = ServiceClient(server.url)
            client.query("X in CountryT, N = X.name", project=["N"],
                         trace=True)
            trace_id = client.last_trace["trace_id"]
        finally:
            stop(server)
            session.close()
        slow = [e for e in events() if e["event"] == "slow_query"]
        assert slow, "no slow_query event fired"
        event = slow[-1]
        assert event["level"] == "warning"
        assert event["endpoint"] == "/query"
        assert event["ms"] > 0
        assert event["threshold_ms"] == 0.0
        assert event["trace_id"] == trace_id

    def test_writes_do_not_hit_the_slow_query_log(self, tmp_path,
                                                  events):
        morphase = build_morphase()
        store = morphase.open_store(
            str(tmp_path / "slow2"),
            [cities.sample_us_instance(),
             cities.sample_euro_instance()])
        session = morphase.serve(store)
        server = serve(session, slow_query_ms=0.0)
        try:
            ServiceClient(server.url).ingest(insert_delta())
        finally:
            stop(server)
            session.close()
        assert not [e for e in events()
                    if e["event"] == "slow_query"
                    and e["endpoint"] == "/ingest"]


class _ProxyErrorHandler:
    """Not a repro server: answers every request with an HTML 502."""


class TestClientErrorBodies:
    def test_non_envelope_5xx_quotes_the_body_snippet(self):
        from http.server import (BaseHTTPRequestHandler,
                                 ThreadingHTTPServer)

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                body = b"<html>Bad Gateway: upstream died</html>"
                self.send_response(502)
                self.send_header("Content-Type", "text/html")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        threading.Thread(target=server.serve_forever,
                         daemon=True).start()
        host, port = server.server_address[:2]
        try:
            client = ServiceClient(f"http://{host}:{port}")
            with pytest.raises(ServiceClientError) as excinfo:
                client.health()
        finally:
            server.shutdown()
            server.server_close()
        error = excinfo.value
        assert error.status == 502
        assert error.code == "internal_error"
        assert "Bad Gateway: upstream died" in error.message
