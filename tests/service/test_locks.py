"""Concurrency tests for the writer-preferring read-write lock.

These pin behaviour the whole service layer leans on: readers share,
writers exclude and *jump the queue*, nobody sleeps through a wakeup —
and one sharp edge is documented on purpose: the lock is not
reentrant, so acquiring a read lock while already holding one
deadlocks as soon as a writer is waiting in between.
"""

import threading
import time

from repro.service.locks import ReadWriteLock


def run_deadline(threads, seconds=10.0):
    """Start and join with a deadline; a hung thread fails the test."""
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + seconds
    for thread in threads:
        thread.join(timeout=max(0.0, deadline - time.monotonic()))
    return [thread for thread in threads if thread.is_alive()]


class TestSharingAndExclusion:
    def test_readers_share(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(4, timeout=5.0)

        def reader():
            with lock.read():
                inside.wait()  # all four must be inside at once

        hung = run_deadline([threading.Thread(target=reader)
                             for _ in range(4)])
        assert not hung

    def test_writer_excludes_readers_and_writers(self):
        lock = ReadWriteLock()
        active = []
        overlap = []

        def worker(kind):
            ctx = lock.write() if kind == "w" else lock.read()
            with ctx:
                active.append(kind)
                if kind == "w" and len(active) > 1:
                    overlap.append(list(active))
                time.sleep(0.005)
                active.remove(kind)

        hung = run_deadline(
            [threading.Thread(target=worker, args=(kind,))
             for kind in "wrwrwr"])
        assert not hung
        assert not overlap  # a writer never saw company


class TestWriterPreference:
    def test_waiting_writer_blocks_new_readers(self):
        """Readers arriving behind a waiting writer queue behind it."""
        lock = ReadWriteLock()
        order = []
        lock.acquire_read()  # hold the lock as an in-flight reader

        def writer():
            lock.acquire_write()
            order.append("writer")
            lock.release_write()

        def late_reader():
            lock.acquire_read()
            order.append("reader")
            lock.release_read()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        # Writer is parked behind the held read lock.
        time.sleep(0.05)
        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        time.sleep(0.05)
        # Neither may proceed while the original reader holds on —
        # and crucially the *late reader* is held back too, purely by
        # the writer waiting ahead of it.
        assert order == []
        lock.release_read()
        writer_thread.join(timeout=5.0)
        reader_thread.join(timeout=5.0)
        assert order[0] == "writer"
        assert sorted(order) == ["reader", "writer"]

    def test_query_stream_does_not_starve_writer(self):
        """A steady overlap of readers never locks the writer out."""
        lock = ReadWriteLock()
        stop = threading.Event()
        wrote = threading.Event()

        def reader():
            while not stop.is_set():
                with lock.read():
                    time.sleep(0.001)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            def writer():
                with lock.write():
                    wrote.set()
            writer_thread = threading.Thread(target=writer)
            writer_thread.start()
            assert wrote.wait(timeout=5.0), \
                "writer starved by a reader stream"
            writer_thread.join(timeout=5.0)
        finally:
            stop.set()
            for thread in readers:
                thread.join(timeout=5.0)


class TestNoLostWakeups:
    def test_interleaved_churn_converges(self):
        """Heavy reader/writer churn ends with every thread served.

        A lost wakeup (a waiter missing the notify that should have
        released it) would strand at least one thread past the
        deadline.
        """
        lock = ReadWriteLock()
        counter = {"value": 0, "reads": 0}

        def writer():
            for _ in range(25):
                with lock.write():
                    counter["value"] += 1

        def reader():
            for _ in range(25):
                with lock.read():
                    counter["reads"] += 1

        threads = ([threading.Thread(target=writer) for _ in range(3)]
                   + [threading.Thread(target=reader) for _ in range(5)])
        hung = run_deadline(threads, seconds=30.0)
        assert not hung
        assert counter["value"] == 75
        assert counter["reads"] == 125

    def test_release_read_wakes_all_waiting_writers_in_turn(self):
        lock = ReadWriteLock()
        done = []
        lock.acquire_read()
        threads = [threading.Thread(
            target=lambda: (lock.acquire_write(), done.append(1),
                            lock.release_write()))
            for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        assert done == []  # all parked behind the reader
        lock.release_read()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(done) == 3


class TestKnownLimitations:
    def test_nested_read_deadlocks_when_writer_waits(self):
        """PINNED: the lock is not reentrant for readers.

        A thread holding a read lock that tries to acquire *another*
        read lock deadlocks the moment a writer is already waiting:
        writer preference parks the nested acquire behind the writer,
        and the writer waits for the outer read to release — which it
        never will.  Session code must therefore never call a
        read-locked method from inside a read-locked section (see
        ``WarehouseSession``: locked public methods delegate to
        unlocked ``_``-helpers).  If reentrancy is ever added, this
        test should start failing and be rewritten to assert it.
        """
        lock = ReadWriteLock()
        progressed = threading.Event()

        def nested_reader():
            lock.acquire_read()
            time.sleep(0.1)  # let the writer queue up behind us
            lock.acquire_read()  # deadlocks: parked behind the writer
            progressed.set()  # never reached today
            lock.release_read()
            lock.release_read()

        reader_thread = threading.Thread(target=nested_reader,
                                         daemon=True)
        reader_thread.start()
        time.sleep(0.02)
        writer_thread = threading.Thread(target=lock.acquire_write,
                                         daemon=True)
        writer_thread.start()
        assert not progressed.wait(timeout=0.5), \
            "nested read acquisition succeeded — the lock became " \
            "reentrant; update this pinned test and the session docs"
        # Unwedge so the daemon threads exit before interpreter
        # shutdown: release the outer read from *this* thread
        # (release_read tracks no owner), letting the writer through.
        lock.release_read()
        writer_thread.join(timeout=5.0)
        assert not writer_thread.is_alive()
        lock.release_write()
