"""``POST /program`` over the wire — the acceptance differential.

A multi-statement program mixing WOL-body queries and set algebra,
POSTed to a warm session, must return results *byte-identical* to the
batch :class:`repro.query.Query` / Python-set-algebra oracle — via the
text DSL form and the canonical JSON AST form alike.  Plus the error
contract: 400 (``parse_error``) when the program never parsed, 422
(``validation_failed``, WOL5xx diagnostics attached) when it parsed
but failed static validation.
"""

import json
import threading

import pytest

from repro.io.json_io import dump_oid_encoder, value_to_json
from repro.morphase import Morphase
from repro.program import parse_program_text
from repro.query.query import Query
from repro.service import (ServiceClient, ServiceParseError,
                           ServiceValidationError, make_server)
from repro.workloads import cities

PROGRAM_TEXT = """
caps = query { N | C in CountryT, X = C.capital, N = X.name };
alln = query { N | X in CityT, N = X.name };
rest = difference alln, caps;
both = union caps, rest;
top = limit both 4;
"""


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                        cities.target_schema(), cities.PROGRAM_TEXT)
    store = morphase.open_store(
        str(tmp_path_factory.mktemp("program-svc") / "store"),
        [cities.sample_us_instance(), cities.sample_euro_instance()])
    session = morphase.serve(store)
    server = make_server(session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield session, ServiceClient(server.url)
    server.shutdown()
    server.server_close()
    session.close()


def batch_oracle(target):
    """The served program's result computed with the batch Query API."""
    encoder = dump_oid_encoder(target)
    classes = target.schema.class_names()

    def rows(text):
        keyed = {}
        for row in Query.parse(text, classes=classes).run(target):
            encoded = {name: value_to_json(value, encoder)
                       for name, value in row.items()}
            keyed.setdefault(json.dumps(encoded, sort_keys=True),
                             encoded)
        return keyed

    caps = rows("N | C in CountryT, X = C.capital, N = X.name")
    alln = rows("N | X in CityT, N = X.name")
    rest = {key: alln[key] for key in alln if key not in caps}
    both = dict(caps)
    both.update(rest)
    return [both[key] for key in sorted(both)][:4]


class TestProgramDifferential:
    def test_text_form_matches_batch_oracle(self, service):
        session, client = service
        result = client.program(text=PROGRAM_TEXT)
        oracle = batch_oracle(session.target)
        assert json.dumps(result["rows"], sort_keys=True) \
            == json.dumps(oracle, sort_keys=True)
        assert result["result"] == "top"
        assert result["columns"] == ["N"]
        assert [t["name"] for t in result["statements"]] \
            == ["caps", "alln", "rest", "both", "top"]

    def test_ast_form_is_byte_identical_to_text_form(self, service):
        _, client = service
        ast = parse_program_text(PROGRAM_TEXT).to_json()
        via_text = client.program(text=PROGRAM_TEXT)
        via_ast = client.program(ast=ast)
        assert json.dumps(via_text, sort_keys=True) \
            == json.dumps(via_ast, sort_keys=True)

    def test_scalar_execution_is_byte_identical(self, service):
        _, client = service
        vectorized = client.program(text=PROGRAM_TEXT)
        scalar = client.program(text=PROGRAM_TEXT, columnar=False)
        for trace in scalar["statements"]:
            if trace["op"] == "query":
                assert trace["columnar"] is False
        scalar_rows = json.dumps(scalar["rows"], sort_keys=True)
        assert scalar_rows == json.dumps(vectorized["rows"],
                                         sort_keys=True)

    def test_program_survives_an_ingest(self, service):
        """The warm pool cache invalidates at batch boundaries."""
        session, client = service
        before = client.program(text=PROGRAM_TEXT)
        client.ingest({"inserts": {
            "CountryE": [
                {"id": {"$oid": "CountryE", "label": "CountryE#prog"},
                 "value": {"$rec": {"name": "Zanado", "language": "z",
                                    "currency": "ZAN"}}}],
            "CityE": [
                {"id": {"$oid": "CityE", "label": "CityE#prog"},
                 "value": {"$rec": {"name": "Zan City",
                                    "is_capital": True,
                                    "country": {"$oid": "CountryE",
                                                "label": "CountryE#prog"}
                                    }}}],
        }})
        after = client.program(text=PROGRAM_TEXT)
        oracle = batch_oracle(session.target)
        assert json.dumps(after["rows"], sort_keys=True) \
            == json.dumps(oracle, sort_keys=True)
        assert after["statements"][0]["rows"] \
            == before["statements"][0]["rows"] + 1

    def test_explain_rides_along(self, service):
        _, client = service
        result = client.program(text=PROGRAM_TEXT, explain=True)
        assert "planned" in result["explain"]

    def test_warnings_ride_along_as_diagnostics(self, service):
        _, client = service
        result = client.program(
            text="a = query { X in CityT };\n"
                 "b = query { X in CityT };")
        codes = [d["code"]
                 for d in result["diagnostics"]["diagnostics"]]
        assert "WOL508" in codes

    def test_program_counter_in_stats(self, service):
        _, client = service
        before = client.stats()["programs"]
        client.program(text="a = query { X in CityT };")
        assert client.stats()["programs"] == before + 1


class TestProgramErrors:
    def test_unparsable_text_is_400_parse_error(self, service):
        _, client = service
        with pytest.raises(ServiceParseError) as info:
            client.program(text="a = frobnicate b;")
        assert info.value.status == 400

    def test_malformed_ast_is_400_parse_error(self, service):
        _, client = service
        with pytest.raises(ServiceParseError) as info:
            client.program(ast={"version": 99, "statements": []})
        assert info.value.status == 400

    def test_invalid_program_is_422_with_diagnostics(self, service):
        _, client = service
        with pytest.raises(ServiceValidationError) as info:
            client.program(text="b = union a, ghost;")
        assert info.value.status == 422
        codes = [d["code"]
                 for d in info.value.diagnostics["diagnostics"]]
        assert "WOL503" in codes

    def test_text_and_ast_together_rejected(self, service):
        _, client = service
        with pytest.raises(ValueError):
            client.program(text="a = query { X in CityT };", ast={})

    def test_neither_text_nor_ast_is_400(self, service):
        from repro.service import ServiceClientError
        _, client = service
        with pytest.raises(ServiceClientError) as info:
            client._call("POST", "/program", body={"columnar": True})
        assert info.value.status == 400
        assert info.value.code == "bad_request"

    def test_unknown_request_field_is_400(self, service):
        from repro.service import ServiceClientError
        _, client = service
        with pytest.raises(ServiceClientError) as info:
            client._call("POST", "/program",
                         body={"text": "a = query { X in CityT };",
                               "shards": 4})
        assert info.value.status == 400
