"""Planned constraint auditing: plans, counters, and the naive oracle.

The load-bearing property: for every workload constraint library, the
planned audit (one shared prebuilt index pool, precompiled body and
head-probe join orders) reports *exactly* the violations the naive
per-clause path reports.
"""

import pytest

from repro.adapters.acedb import AceDatabase, schema_of_acedb
from repro.constraints import (audit_constraints, functional_dependency,
                               inclusion_dependency, key_constraint,
                               schema_constraints)
from repro.engine import plan_audit, plan_constraint
from repro.model.values import Record
from repro.morphase import Morphase
from repro.semantics.satisfaction import program_violations
from repro.workloads import cities, genome, relibase


def violation_sets(report):
    return {name: sorted(str(v) for v in found)
            for name, found in report.violations.items()}


def cities_constraints():
    return [
        key_constraint("CountryE", ["name"]),
        key_constraint("CityE", ["name", "country.name"]),
        functional_dependency("CityE", ["country"], "is_capital"),
        inclusion_dependency("CityE", "country", "CountryE"),
    ]


@pytest.fixture(scope="module")
def genome_target():
    source_schema = schema_of_acedb(
        AceDatabase("ACe22", genome.ACE_CLASSES))
    m = Morphase([source_schema], genome.warehouse_schema(),
                 genome.PROGRAM_TEXT)
    source = genome.source_instance(genome.generate_acedb(
        genes=30, sequences=60, clones=60, sparsity=0.9, seed=5))
    return m.transform(source).target


@pytest.fixture(scope="module")
def relibase_target():
    m = Morphase([relibase.swissprot_schema(), relibase.pdb_schema()],
                 relibase.relibase_schema(), relibase.PROGRAM_TEXT)
    sp, pdb = relibase.generate_sources(
        proteins=25, structures_per_protein=2, ligands=12, bindings=40,
        seed=2)
    return m.transform([sp, pdb]).target


class TestDifferential:
    """Planned and naive audits agree, clean or violated."""

    def test_cities_clean_and_corrupted(self):
        euro = cities.sample_euro_instance()
        constraints = cities_constraints()
        for instance in (euro, _with_duplicate_country(euro)):
            planned = audit_constraints(instance, constraints,
                                        limit_per_clause=None)
            naive = audit_constraints(instance, constraints,
                                      limit_per_clause=None,
                                      use_planner=False)
            assert violation_sets(planned) == violation_sets(naive)

    def test_genome_library(self, genome_target):
        constraints = genome.warehouse_constraints()
        planned = audit_constraints(genome_target, constraints,
                                    limit_per_clause=None)
        naive = audit_constraints(genome_target, constraints,
                                  limit_per_clause=None,
                                  use_planner=False)
        assert planned.ok and naive.ok
        assert violation_sets(planned) == violation_sets(naive)

    def test_genome_library_corrupted(self, genome_target):
        constraints = genome.warehouse_constraints()
        builder = genome_target.builder()
        some_gene = next(
            iter(genome_target.valuations["GeneT"].values()))
        builder.new("GeneT", Record.of(
            symbol=some_gene.get("symbol"), description="duplicate"))
        corrupted = builder.freeze()
        planned = audit_constraints(corrupted, constraints,
                                    limit_per_clause=None)
        naive = audit_constraints(corrupted, constraints,
                                  limit_per_clause=None,
                                  use_planner=False)
        assert not planned.ok
        assert "key_GeneT" in planned.violations
        assert violation_sets(planned) == violation_sets(naive)

    def test_relibase_library(self, relibase_target):
        constraints = relibase.relibase_constraints()
        planned = audit_constraints(relibase_target, constraints,
                                    limit_per_clause=None)
        naive = audit_constraints(relibase_target, constraints,
                                  limit_per_clause=None,
                                  use_planner=False)
        assert planned.ok and naive.ok
        assert violation_sets(planned) == violation_sets(naive)

    def test_program_violations_paths_agree(self):
        euro = _with_duplicate_country(cities.sample_euro_instance())
        constraints = cities_constraints()
        planned = program_violations(euro, constraints)
        naive = program_violations(euro, constraints, use_planner=False)
        assert {str(v) for v in planned} == {str(v) for v in naive}
        assert planned


class TestReportCounters:
    def test_planned_counters_populated(self, genome_target):
        constraints = genome.warehouse_constraints()
        report = audit_constraints(genome_target, constraints,
                                   limit_per_clause=None)
        assert report.planned_bodies == len(constraints)
        assert report.planned_heads == len(constraints)
        assert report.prebuilt_indexes > 0
        assert report.index_lookups > 0
        assert (report.index_hits + report.index_misses
                == report.index_lookups)
        assert "planned bodies" in report.stats_line()

    def test_naive_counters_zero(self, genome_target):
        constraints = genome.warehouse_constraints()
        report = audit_constraints(genome_target, constraints,
                                   limit_per_clause=None,
                                   use_planner=False)
        assert report.planned_bodies == 0
        assert report.planned_heads == 0
        assert report.prebuilt_indexes == 0
        assert report.index_lookups == 0

    def test_injected_plan_for_other_instance_rejected(self, genome_target):
        # A plan's indexes are snapshots of one instance; instances are
        # immutable, so auditing a modified copy with a stale plan would
        # silently miss (or invent) violations.
        constraints = genome.warehouse_constraints()
        plan = plan_audit(constraints, genome_target)
        corrupted = genome_target.builder().freeze()
        with pytest.raises(ValueError, match="different instance"):
            audit_constraints(corrupted, constraints, plan=plan)
        with pytest.raises(ValueError, match="different instance"):
            program_violations(corrupted, constraints, plan=plan)

    def test_injected_plan_reuses_indexes(self, genome_target):
        constraints = genome.warehouse_constraints()
        plan = plan_audit(constraints, genome_target)
        report = audit_constraints(genome_target, constraints,
                                   limit_per_clause=None, plan=plan)
        # Everything was prebuilt at planning time: the audit itself
        # builds nothing.
        assert report.indexes_built == 0
        assert report.prebuilt_indexes == plan.prebuilt_indexes


class TestAuditPlanning:
    def test_key_body_uses_index_probe(self):
        euro = cities.sample_euro_instance()
        plan = plan_constraint(key_constraint("CountryE", ["name"]),
                               euro.class_sizes())
        assert plan.body is not None and plan.head is not None
        modes = [step.mode for step in plan.body.steps]
        assert "member-index" in modes  # the quadratic join is gone
        assert ("CountryE", ("name",)) in plan.body.index_paths

    def test_head_probe_planned_with_body_bound(self):
        euro = cities.sample_euro_instance()
        constraint = inclusion_dependency("CityE", "country", "CountryE")
        plan = plan_constraint(constraint, euro.class_sizes())
        assert plan.head is not None
        # V is body-bound, so the head membership is a pure test.
        assert [step.mode for step in plan.head.steps] == ["member-test"]

    def test_audit_plan_explain_is_stable(self, genome_target):
        constraints = genome.warehouse_constraints()
        first = plan_audit(constraints, genome_target).explain()
        second = plan_audit(constraints, genome_target).explain()
        assert first == second
        assert "planned bodies" in first

    def test_schema_constraints_cover_keys_and_references(self):
        names = {c.name for c in schema_constraints(
            genome.warehouse_schema())}
        assert {"key_GeneT", "key_SequenceT", "key_CloneT",
                "incl_CloneT_seq", "incl_SeqGene_seq",
                "incl_SeqGene_gene"} <= names
        relibase_names = {c.name for c in schema_constraints(
            relibase.relibase_schema())}
        assert "elem_Protein_structures" in relibase_names


def _with_duplicate_country(euro):
    builder = euro.builder()
    builder.new("CountryE", Record.of(
        name="France", language="French", currency="franc"))
    return builder.freeze()
