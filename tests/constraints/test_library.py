"""Unit tests for the constraint library (paper Sections 2-4)."""

import pytest

from repro.constraints import (ConstraintReport, at_most_one,
                               attribute_value, audit_constraints,
                               existence_dependency, functional_dependency,
                               inclusion_dependency, inverse_attributes,
                               key_constraint, specialization)
from repro.model import (BOOL, STR, ClassType, InstanceBuilder, Record,
                         Schema, WolSet, record, set_of)
from repro.normalization import recognise_source_key_paths, snf_clause
from repro.semantics import satisfies_clause
from repro.workloads import cities, persons


@pytest.fixture()
def euro():
    return cities.sample_euro_instance()


class TestKeyConstraint:
    def test_satisfied_on_sample(self, euro):
        clause = key_constraint("CountryE", ["name"])
        assert satisfies_clause(euro, clause)

    def test_violated_on_duplicates(self, euro):
        builder = euro.builder()
        builder.new("CountryE", Record.of(
            name="France", language="Breton", currency="ecu"))
        assert not satisfies_clause(builder.freeze(),
                                    key_constraint("CountryE", ["name"]))

    def test_recognised_by_normaliser(self):
        clause = snf_clause(key_constraint("CityE",
                                           ["name", "country.name"]))
        recognised = recognise_source_key_paths(clause)
        assert recognised == ("CityE", (("country", "name"), ("name",)))


class TestFunctionalDependency:
    def test_language_determined_by_name(self, euro):
        fd = functional_dependency("CountryE", ["name"], "language")
        assert satisfies_clause(euro, fd)

    def test_violation_detected(self, euro):
        builder = euro.builder()
        builder.new("CountryE", Record.of(
            name="France", language="Breton", currency="franc"))
        fd = functional_dependency("CountryE", ["name"], "language")
        assert not satisfies_clause(builder.freeze(), fd)

    def test_deep_paths(self, euro):
        # A city's country name determines the country's currency.
        fd = functional_dependency("CityE", ["country.name"],
                                   "country.currency")
        assert satisfies_clause(euro, fd)


class TestInclusionDependency:
    def test_satisfied_structurally(self, euro):
        incl = inclusion_dependency("CityE", "country", "CountryE")
        assert satisfies_clause(euro, incl)


class TestCardinality:
    @staticmethod
    def _schema():
        return Schema.of("S", Box=record(name=STR, items=set_of(STR)))

    def test_existence_dependency(self):
        builder = InstanceBuilder(self._schema())
        builder.new("Box", Record.of(name="full", items=WolSet.of("x")))
        instance = builder.freeze()
        assert satisfies_clause(instance,
                                existence_dependency("Box", "items"))
        builder.new("Box", Record.of(name="empty", items=WolSet.of()))
        assert not satisfies_clause(builder.freeze(),
                                    existence_dependency("Box", "items"))

    def test_at_most_one(self):
        builder = InstanceBuilder(self._schema())
        builder.new("Box", Record.of(name="one", items=WolSet.of("x")))
        instance = builder.freeze()
        assert satisfies_clause(instance, at_most_one("Box", "items"))
        builder.new("Box", Record.of(name="two",
                                     items=WolSet.of("x", "y")))
        assert not satisfies_clause(builder.freeze(),
                                    at_most_one("Box", "items"))


class TestSpecialization:
    def test_capital_is_a_city(self, euro):
        # Model 'capitals' as the cities with is_capital: every capital
        # name has a CityE with that name.  (Here trivially satisfied
        # against CityE itself.)
        isa = specialization("CityE", "CityE", ["name"])
        assert satisfies_clause(euro, isa)


class TestAttributeValue:
    def test_constant_restriction(self, euro):
        builder = InstanceBuilder(
            Schema.of("S", Flag=record(v=BOOL)))
        builder.new("Flag", Record.of(v=True))
        instance = builder.freeze()
        assert satisfies_clause(instance,
                                attribute_value("Flag", "v", True))
        builder.new("Flag", Record.of(v=False))
        assert not satisfies_clause(builder.freeze(),
                                    attribute_value("Flag", "v", True))


class TestInverseAttributes:
    def test_c11_shape(self):
        clause = inverse_attributes("Person", "spouse", "Person", "spouse")
        good = persons.sample_instance()
        assert satisfies_clause(good, clause)
        assert not satisfies_clause(persons.asymmetric_instance(), clause)


class TestAudit:
    def test_clean_report(self, euro):
        report = audit_constraints(euro, [
            key_constraint("CountryE", ["name"]),
            functional_dependency("CountryE", ["name"], "currency"),
        ])
        assert report.ok
        assert "satisfied" in report.summary()

    def test_failing_report_names_clauses(self, euro):
        builder = euro.builder()
        builder.new("CountryE", Record.of(
            name="France", language="Breton", currency="ecu"))
        broken = builder.freeze()
        report = audit_constraints(broken, [
            key_constraint("CountryE", ["name"], name="K1"),
            functional_dependency("CountryE", ["name"], "currency",
                                  name="FD1"),
        ])
        assert not report.ok
        assert report.failed_clauses() == ["FD1", "K1"]
        assert "violated" in report.summary()

    def test_limit_respected(self, euro):
        builder = euro.builder()
        for index in range(4):
            builder.new("CountryE", Record.of(
                name="France", language=f"L{index}", currency="x"))
        report = audit_constraints(
            builder.freeze(),
            [key_constraint("CountryE", ["name"], name="K")],
            limit_per_clause=3)
        assert len(report.violations["K"]) == 3
