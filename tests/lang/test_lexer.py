"""Unit tests for the WOL tokenizer."""

import pytest

from repro.lang.lexer import (EOF, IDENT, NUMBER, STRING, SYMBOL, LexError,
                              tokenize)


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != EOF]


class TestTokenize:
    def test_identifiers_and_keywords(self):
        assert kinds("X in CityA") == [
            (IDENT, "X"), (IDENT, "in"), (IDENT, "CityA")]

    def test_symbols_longest_match(self):
        assert kinds("<= =< >= != <>") == [
            (SYMBOL, "<="), (SYMBOL, "=<"), (SYMBOL, ">="),
            (SYMBOL, "!="), (SYMBOL, "<>")]

    def test_implication_vs_leq(self):
        # 'X <= Y' is implication syntax; 'X =< Y' is less-or-equal.
        assert kinds("X <= Y") == [
            (IDENT, "X"), (SYMBOL, "<="), (IDENT, "Y")]
        assert kinds("X =< Y") == [
            (IDENT, "X"), (SYMBOL, "=<"), (IDENT, "Y")]

    def test_numbers(self):
        assert kinds("42 -7 3.25 -0.5") == [
            (NUMBER, "42"), (NUMBER, "-7"), (NUMBER, "3.25"),
            (NUMBER, "-0.5")]

    def test_dot_is_projection_not_decimal(self):
        assert kinds("X.name") == [
            (IDENT, "X"), (SYMBOL, "."), (IDENT, "name")]

    def test_number_then_projection(self):
        # '1.name' lexes the digit then dot: parser will reject; but
        # '1.5.foo' gives number 1.5 then '.foo'.
        assert kinds("1.5.foo") == [
            (NUMBER, "1.5"), (SYMBOL, "."), (IDENT, "foo")]

    def test_strings_with_escapes(self):
        tokens = tokenize(r'"ab\"c" "d\\e"')
        assert [(t.kind, t.text) for t in tokens[:-1]] == [
            (STRING, 'ab"c'), (STRING, "d\\e")]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')
        with pytest.raises(LexError):
            tokenize('"abc\ndef"')

    def test_comments_stripped(self):
        assert kinds("X -- comment\nY # another\nZ") == [
            (IDENT, "X"), (IDENT, "Y"), (IDENT, "Z")]

    def test_line_and_column_tracking(self):
        tokens = tokenize("X\n  Y")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("X @ Y")

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].kind == EOF
        assert tokenize("X")[-1].kind == EOF

    def test_underscore_identifiers(self):
        assert kinds("ins_euro_city Mk_CityT _x") == [
            (IDENT, "ins_euro_city"), (IDENT, "Mk_CityT"), (IDENT, "_x")]
