"""Unit tests for range restriction (safety) analysis."""

import pytest

from repro.lang import (RangeRestrictionError, check_range_restriction,
                        is_range_restricted, parse_clause,
                        unrestricted_variables)
from repro.lang.range_restriction import determinable_vars
from repro.lang.parser import parse_term
from repro.workloads.cities import integration_program

CLASSES = ["CityA", "StateA", "CityE", "CountryE", "CityT", "CountryT",
           "StateT", "Person", "Male", "Female", "Marriage"]


def clause(text):
    return parse_clause(text, classes=CLASSES)


class TestDeterminableVars:
    def test_variable_is_determinable(self):
        assert determinable_vars(parse_term("X")) == {"X"}

    def test_projection_subject_not_determinable(self):
        assert determinable_vars(parse_term("Y.a")) == frozenset()

    def test_record_fields_determinable(self):
        assert determinable_vars(parse_term("(a = X, b = Y)")) == {"X", "Y"}

    def test_skolem_args_determinable(self):
        assert determinable_vars(parse_term("Mk_C(N, M)")) == {"N", "M"}

    def test_variant_payload_determinable(self):
        assert determinable_vars(parse_term("ins_l(X)")) == {"X"}

    def test_nested_mixture(self):
        # X recoverable (record field); Y not (projection subject).
        assert determinable_vars(
            parse_term("(a = X, b = Y.c)")) == {"X"}


class TestPaperExamples:
    def test_paper_unrestricted_example(self):
        """X.population < Y <= X in CityA  — Y is not range-restricted."""
        bad = clause("X.population < Y <= X in CityA;")
        assert not is_range_restricted(bad)
        _, bad_head = unrestricted_variables(bad)
        assert bad_head == frozenset({"Y"})

    def test_whole_integration_program_restricted(self):
        for c in integration_program():
            check_range_restriction(c)


class TestBodyBinding:
    def test_class_membership_binds(self):
        assert is_range_restricted(clause("X = X <= X in CityA;"))

    def test_chained_equalities_bind(self):
        assert is_range_restricted(clause(
            "Z = Z <= X in CityA, Y = X.name, Z = Y;"))

    def test_unbound_comparison_operand(self):
        bad = clause("X = X <= X in CityA, X.name < N;")
        assert not is_range_restricted(bad)

    def test_neq_does_not_bind(self):
        bad = clause("X = X <= X in CityA, N != X.name;")
        assert not is_range_restricted(bad)

    def test_eq_binds_via_either_side(self):
        assert is_range_restricted(clause(
            "N = N <= X in CityA, X.name = N;"))
        assert is_range_restricted(clause(
            "N = N <= X in CityA, N = X.name;"))

    def test_set_membership_binds_element_once_collection_bound(self):
        assert is_range_restricted(clause(
            "N = N <= X in CityA, N in X.tags;"))

    def test_set_membership_needs_bound_collection(self):
        bad = clause("N = N <= N in S;")
        assert not is_range_restricted(bad)

    def test_record_decomposition_binds(self):
        # Knowing X.pair = (a = A, b = B) binds A and B.
        assert is_range_restricted(clause(
            "A = B <= X in CityA, X.pair = (a = A, b = B);"))

    def test_skolem_inversion_binds(self):
        # X = Mk_C(N): knowing X determines N (injectivity).
        assert is_range_restricted(clause(
            "N = N <= X in CityT, X = Mk_CityT(N);"))

    def test_projection_subject_not_bound_by_equation(self):
        bad = clause("Y = Y <= X in CityA, X.name = Y.name;")
        assert not is_range_restricted(bad)


class TestHeadBinding:
    def test_existential_head_membership(self):
        """Paper (T6): X is existential in the head."""
        good = clause(
            "X in Male, X.name = N <= Y in Person, N = Y.name;")
        assert is_range_restricted(good)

    def test_head_skolem_binds(self):
        good = clause(
            "X = Mk_CountryT(N) <= Y in CountryE, N = Y.name;")
        assert is_range_restricted(good)

    def test_head_variable_with_no_anchor(self):
        bad = clause("X.population < Y <= X in CityA;")
        assert not is_range_restricted(bad)

    def test_check_raises_with_variable_names(self):
        bad = clause("X.population < Y <= X in CityA;")
        with pytest.raises(RangeRestrictionError) as excinfo:
            check_range_restriction(bad)
        assert "Y" in str(excinfo.value)

    def test_unbound_body_variable_reported(self):
        bad = clause("X = X <= X in CityA, X.name < N;")
        bad_body, _ = unrestricted_variables(bad)
        assert "N" in bad_body
