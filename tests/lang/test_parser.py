"""Unit tests for the WOL parser (paper Section 3.1 concrete syntax)."""

import pytest

from repro.lang import (AstError, Clause, Const, EqAtom, InAtom,
                        KIND_CONSTRAINT, KIND_TRANSFORMATION, LeqAtom,
                        LtAtom, MemberAtom,
                        NeqAtom, ParseError, Program, Proj, RecordTerm,
                        SkolemTerm, UNIT_CONST, Var, VariantTerm, parse_atom,
                        parse_clause, parse_program, parse_term,
                        resolve_memberships)


class TestTerms:
    def test_variable(self):
        assert parse_term("X") == Var("X")

    def test_constants(self):
        assert parse_term('"Paris"') == Const("Paris")
        assert parse_term("42") == Const(42)
        assert parse_term("-3") == Const(-3)
        assert parse_term("2.5") == Const(2.5)
        assert parse_term("true") == Const(True)
        assert parse_term("false") == Const(False)
        assert parse_term("()") == UNIT_CONST

    def test_projection_chain(self):
        assert parse_term("E.country.name") == Proj(
            Proj(Var("E"), "country"), "name")

    def test_variant_injection(self):
        assert parse_term("ins_euro_city(X)") == VariantTerm(
            "euro_city", Var("X"))
        assert parse_term("ins_male()") == VariantTerm("male")

    def test_skolem_positional(self):
        assert parse_term("Mk_CountryT(N)") == SkolemTerm.positional(
            "CountryT", Var("N"))

    def test_skolem_named(self):
        term = parse_term("Mk_CityT(name = N, country = C)")
        assert term == SkolemTerm.named("CityT", name=Var("N"),
                                        country=Var("C"))

    def test_skolem_nested_args(self):
        term = parse_term("Mk_CityT(name = E.name, place = ins_euro_city(X))")
        assert isinstance(term, SkolemTerm)
        assert term.args[1][0] == "place"

    def test_record_term(self):
        term = parse_term("(name = N, country_name = C.name)")
        assert term == RecordTerm.of(name=Var("N"),
                                     country_name=Proj(Var("C"), "name"))

    def test_grouping_parens(self):
        assert parse_term("(X)") == Var("X")
        assert parse_term("(X.a).b") == Proj(Proj(Var("X"), "a"), "b")

    def test_projection_off_skolem(self):
        assert parse_term("Mk_C(N).name") == Proj(
            SkolemTerm.positional("C", Var("N")), "name")

    @pytest.mark.parametrize("bad", [
        "", "X.", "ins_x", "Mk_C", "Mk_C(", "(a = )", "(a = 1",
    ])
    def test_errors(self, bad):
        with pytest.raises(ParseError):
            parse_term(bad)


class TestAtoms:
    def test_equality(self):
        assert parse_atom("X.state = Y") == EqAtom(
            Proj(Var("X"), "state"), Var("Y"))

    def test_membership_unresolved_defaults_to_class(self):
        assert parse_atom("X in CityA") == MemberAtom(Var("X"), "CityA")

    def test_membership_resolution(self):
        assert parse_atom("X in CityA", classes=["CityA"]) == MemberAtom(
            Var("X"), "CityA")
        assert parse_atom("X in S", classes=["CityA"]) == InAtom(
            Var("X"), Var("S"))

    def test_set_membership_of_projection(self):
        assert parse_atom("X in Y.cities") == InAtom(
            Var("X"), Proj(Var("Y"), "cities"))

    def test_comparisons(self):
        assert parse_atom("X < Y") == LtAtom(Var("X"), Var("Y"))
        assert parse_atom("X =< Y") == LeqAtom(Var("X"), Var("Y"))
        assert parse_atom("X != Y") == NeqAtom(Var("X"), Var("Y"))
        assert parse_atom("X <> Y") == NeqAtom(Var("X"), Var("Y"))

    def test_gt_normalised_to_lt_swapped(self):
        assert parse_atom("X > Y") == LtAtom(Var("Y"), Var("X"))
        assert parse_atom("X >= Y") == LeqAtom(Var("Y"), Var("X"))

    def test_missing_operator(self):
        with pytest.raises(ParseError):
            parse_atom("X Y")


class TestClauses:
    def test_paper_clause_c1(self):
        clause = parse_clause(
            "X.state = Y <= Y in StateA, X = Y.capital;")
        assert clause.head == (EqAtom(Proj(Var("X"), "state"), Var("Y")),)
        assert clause.body == (
            MemberAtom(Var("Y"), "StateA"),
            EqAtom(Var("X"), Proj(Var("Y"), "capital")))

    def test_bodyless_clause(self):
        clause = parse_clause('X in CityA <= ;'.replace("<= ", ""))
        assert clause.body == ()

    def test_kind_and_name(self):
        clause = parse_clause(
            "transformation T1: X in CityT <= E in CityE;")
        assert clause.kind == KIND_TRANSFORMATION
        assert clause.name == "T1"
        constraint = parse_clause("constraint C9: X = Y <= X in CityE;")
        assert constraint.kind == KIND_CONSTRAINT
        assert constraint.name == "C9"

    def test_name_without_kind(self):
        clause = parse_clause("C1: X = Y <= X in CityE;")
        assert clause.name == "C1"
        assert clause.kind is None

    def test_multi_atom_head(self):
        clause = parse_clause(
            "X in CountryT, X.name = E.name <= E in CountryE;")
        assert len(clause.head) == 2

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_clause("X = Y <= X in CityE")

    def test_head_only_variables(self):
        clause = parse_clause(
            "Y in CityT, Y.name = E.name <= E in CityE;")
        assert clause.head_only_variables() == frozenset({"Y"})


class TestPrograms:
    SOURCE = """
        -- the Euro country transformation
        transformation T1:
          X in CountryT, X.name = E.name <= E in CountryE;
        constraint C3:
          Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;
    """

    def test_parse_program(self):
        program = parse_program(self.SOURCE)
        assert len(program) == 2
        assert program.clause("T1").kind == KIND_TRANSFORMATION
        assert program.clause("C3").kind == KIND_CONSTRAINT

    def test_program_size_counts_atoms(self):
        program = parse_program(self.SOURCE)
        assert program.size() == 3 + 3

    def test_duplicate_clause_names_rejected(self):
        with pytest.raises(AstError):
            parse_program("A: X in C <= Y in C; A: X in C <= Y in C;")

    def test_resolution_pass(self):
        program = parse_program("X in Foo <= X in Bar, X in Baz;")
        resolved = resolve_memberships(program, ["Foo", "Bar"])
        (clause,) = resolved.clauses
        assert isinstance(clause.head[0], MemberAtom)
        assert isinstance(clause.body[0], MemberAtom)
        assert clause.body[1] == InAtom(Var("X"), Var("Baz"))

    def test_unknown_clause_name(self):
        program = parse_program(self.SOURCE)
        with pytest.raises(AstError):
            program.clause("T9")


class TestSubstitution:
    def test_clause_rename_apart(self):
        clause = parse_clause("X = Y <= X in CityE, Y in CityE;",
                              classes=["CityE"])
        renamed = clause.rename_apart(frozenset({"X"}))
        assert "X" not in renamed.variables() - {"Y"} or True
        assert renamed.variables() != clause.variables()
        # Only X needed renaming.
        assert "Y" in renamed.variables()

    def test_substitute_into_clause(self):
        clause = parse_clause("X.name = N <= X in CityE;", classes=["CityE"])
        ground = clause.substitute({"N": Const("Paris")})
        assert ground.head[0] == EqAtom(
            Proj(Var("X"), "name"), Const("Paris"))
