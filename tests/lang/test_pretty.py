"""Unit tests for pretty printing and parse/print roundtrips."""

from repro.lang import (format_clause, format_program, parse_clause,
                        parse_program)
from repro.workloads.cities import PROGRAM_TEXT, integration_program


CLASSES = ["CityA", "StateA", "CityE", "CountryE", "CityT", "CountryT",
           "StateT"]


class TestFormatClause:
    def test_simple_clause(self):
        clause = parse_clause("X.state = Y <= Y in StateA, X = Y.capital;",
                              classes=CLASSES)
        text = format_clause(clause)
        assert "X.state = Y" in text
        assert "<=" in text

    def test_kind_and_name_rendered(self):
        clause = parse_clause(
            "transformation T1: X in CountryT <= E in CountryE;",
            classes=CLASSES)
        text = format_clause(clause)
        assert text.startswith("transformation T1:")

    def test_bodyless_clause(self):
        clause = parse_clause("X in CountryT;", classes=CLASSES)
        assert format_clause(clause).rstrip().endswith(";")

    def test_long_clause_wraps(self):
        clause = parse_clause(
            "X.capital = Y <= X in CountryT, Y in CityT,"
            " Y.place = ins_euro_city(X), E in CityE, E.name = Y.name,"
            " E.country.name = X.name, E.is_capital = true;",
            classes=CLASSES)
        text = format_clause(clause, width=40)
        assert len(text.splitlines()) > 2
        for line in text.splitlines():
            assert len(line) < 60


class TestRoundtrip:
    def test_integration_program_roundtrips(self):
        program = integration_program()
        reparsed = parse_program(format_program(program), classes=CLASSES)
        assert reparsed.clauses == program.clauses

    def test_term_str_roundtrips(self):
        from repro.lang import parse_term
        samples = [
            "X", '"Paris"', "42", "true", "()",
            "E.country.name",
            "ins_euro_city(X)",
            "ins_male()",
            "Mk_CountryT(N)",
            "Mk_CityT(country = C, name = N)",
            "(a = X, b = Y.c)",
        ]
        for text in samples:
            term = parse_term(text)
            assert parse_term(str(term)) == term

    def test_atom_str_roundtrips(self):
        from repro.lang import parse_atom
        samples = [
            "X = Y", "X != Y", "X < Y", "X =< Y",
            "X in CityA", "X in Y.cities",
            "Y.place = ins_euro_city(X)",
        ]
        for text in samples:
            atom = parse_atom(text, classes=CLASSES)
            assert parse_atom(str(atom), classes=CLASSES) == atom
