"""Unit tests for well-typedness checking (paper Section 3.1)."""

import pytest

from repro.lang import TypecheckError, check_clause, check_program, parse_clause
from repro.model import (BOOL, INT, STR, ClassType, merge_schemas, record,
                         set_of, variant)
from repro.model.types import VariantType, UNIT
from repro.workloads.cities import (euro_schema, integration_program,
                                    target_schema, us_schema)


@pytest.fixture()
def schema():
    return merge_schemas("All", [us_schema().schema, euro_schema().schema,
                                 target_schema().schema])


def clause(text, schema):
    return parse_clause(text, classes=schema.class_names())


class TestPaperClauses:
    def test_whole_integration_program_checks(self, schema):
        program = integration_program()
        reports = check_program(schema, program)
        assert len(reports) == len(program)

    def test_c1_types(self, schema):
        report = check_clause(
            schema, clause("X.state = Y <= Y in StateA, X = Y.capital;",
                           schema))
        assert report.type_of("X") == ClassType("CityA")
        assert report.type_of("Y") == ClassType("StateA")

    def test_t2_variant_payload_inferred(self, schema):
        report = check_clause(schema, clause(
            "Y in CityT, Y.name = E.name, Y.place = ins_euro_city(X)"
            " <= E in CityE, X in CountryT, X.name = E.country.name;",
            schema))
        assert report.type_of("X") == ClassType("CountryT")
        assert report.type_of("E") == ClassType("CityE")

    def test_skolem_returns_class_type(self, schema):
        report = check_clause(schema, clause(
            "Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;", schema))
        assert report.type_of("Y") == ClassType("CountryT")
        assert report.type_of("N") == STR


class TestIllTyped:
    def test_paper_ill_typed_example(self, schema):
        """X < Y.population conflicts with X in CityA (paper Section 3.1)."""
        extended = merge_schemas("Ext", [schema]).classes
        big = merge_schemas("Ext", [schema])
        bad = clause(
            "X = X <= X in CityA, Y in StateA, X < Y.name;", schema)
        with pytest.raises(TypecheckError):
            check_clause(schema, bad)

    def test_unknown_class_in_membership(self, schema):
        bad = parse_clause("X = X <= X in Nowhere;")
        with pytest.raises(TypecheckError):
            check_clause(schema, bad)

    def test_unknown_class_in_skolem(self, schema):
        bad = clause("X = Mk_Nowhere(N) <= X in CityT, N = X.name;", schema)
        with pytest.raises(TypecheckError):
            check_clause(schema, bad)

    def test_unknown_attribute(self, schema):
        bad = clause("X.mayor = N <= X in CityA, N = X.name;", schema)
        with pytest.raises(TypecheckError):
            check_clause(schema, bad)

    def test_unknown_variant_choice(self, schema):
        bad = clause(
            "Y.place = ins_moon_city(X) <= Y in CityT, X in CountryT;",
            schema)
        with pytest.raises(TypecheckError):
            check_clause(schema, bad)

    def test_variant_where_base_expected(self, schema):
        bad = clause(
            "Y.name = ins_euro_city(X) <= Y in CityT, X in CountryT;",
            schema)
        with pytest.raises(TypecheckError):
            check_clause(schema, bad)

    def test_comparison_on_objects(self, schema):
        bad = clause("X = X <= X in CityA, Y in CityA, X < Y;", schema)
        with pytest.raises(TypecheckError):
            check_clause(schema, bad)

    def test_const_type_clash(self, schema):
        bad = clause("X.name = 42 <= X in CityA;", schema)
        with pytest.raises(TypecheckError):
            check_clause(schema, bad)

    def test_bool_vs_string(self, schema):
        bad = clause("X.is_capital = \"yes\" <= X in CityE;", schema)
        with pytest.raises(TypecheckError):
            check_clause(schema, bad)

    def test_record_field_mismatch(self, schema):
        bad = clause(
            "X = Mk_CityT(K), K = (name = N, extra = N)"
            " <= X in CityT, N = X.name, K = (name = N);", schema)
        with pytest.raises(TypecheckError):
            check_clause(schema, bad)


class TestGroundRequirement:
    def test_partial_clause_allowed_without_ground(self, schema):
        # P's type is only pinned to 'some variant choice euro_city' —
        # fine in the default mode.
        partial = clause(
            "P = ins_euro_city(X) <= E in CityE, X in CountryT,"
            " X.name = E.country.name, P = E.x_unknown;", schema)
        with pytest.raises(TypecheckError):
            # unknown attribute still fails
            check_clause(schema, partial)

    def test_require_ground_flags_unresolved(self, schema):
        vague = parse_clause("X = Y <= X in S, Y in S;",
                             classes=schema.class_names())
        # S is a set variable that never gets a ground element type; in
        # default mode this passes, with require_ground it fails.
        check_clause(schema, vague)
        with pytest.raises(TypecheckError):
            check_clause(schema, vague, require_ground=True)


class TestComparisons:
    def test_int_comparison_ok(self):
        from repro.model import Schema
        schema = Schema.of("S", Item=record(name=STR, rank=INT))
        good = parse_clause(
            "X.name = Y.name <= X in Item, Y in Item, X.rank < Y.rank;",
            classes=["Item"])
        report = check_clause(schema, good)
        assert report.type_of("X") == ClassType("Item")

    def test_string_comparison_ok(self):
        from repro.model import Schema
        schema = Schema.of("S", Item=record(name=STR))
        good = parse_clause(
            "X = Y <= X in Item, Y in Item, X.name =< Y.name;",
            classes=["Item"])
        check_clause(schema, good)

    def test_bool_comparison_rejected(self):
        from repro.model import Schema
        schema = Schema.of("S", Item=record(flag=BOOL))
        bad = parse_clause(
            "X = Y <= X in Item, Y in Item, X.flag < Y.flag;",
            classes=["Item"])
        with pytest.raises(TypecheckError):
            check_clause(schema, bad)


class TestSetTypes:
    def test_set_membership_typed(self):
        from repro.model import Schema
        schema = Schema.of(
            "S", Person=record(name=STR, nicknames=set_of(STR)))
        good = parse_clause(
            "X.name = N <= X in Person, N in X.nicknames;",
            classes=["Person"])
        report = check_clause(schema, good)
        assert report.type_of("N") == STR

    def test_set_membership_type_clash(self):
        from repro.model import Schema
        schema = Schema.of(
            "S", Person=record(name=STR, friends=set_of(ClassType("Person")),
                               age=INT))
        bad = parse_clause(
            "X.age = F <= X in Person, F in X.friends;",
            classes=["Person"])
        with pytest.raises(TypecheckError):
            check_clause(schema, bad)


class TestListMembership:
    def test_list_membership_infers_element_type(self):
        from repro.model import Schema, list_of
        schema = Schema.of("S", Doc=record(tags=list_of(STR)))
        clause = parse_clause("T = T <= D in Doc, A in D.tags;",
                              classes=["Doc"])
        report = check_clause(schema, clause)
        assert report.type_of("A") == STR

    def test_membership_in_scalar_rejected(self):
        from repro.model import Schema
        schema = Schema.of("S", Doc=record(name=STR))
        clause = parse_clause("T = T <= D in Doc, A in D.name;",
                              classes=["Doc"])
        with pytest.raises(TypecheckError):
            check_clause(schema, clause)

    def test_element_type_clash_in_list(self):
        from repro.model import Schema, list_of
        schema = Schema.of("S", Doc=record(tags=list_of(STR), rank=INT))
        clause = parse_clause(
            "T = T <= D in Doc, A in D.tags, A = D.rank;",
            classes=["Doc"])
        with pytest.raises(TypecheckError):
            check_clause(schema, clause)


class TestUnresolvedObligations:
    """Deferred inference constraints surface instead of vanishing.

    ``TypeReport.unresolved_obligations()`` feeds the analyzer's
    WOL103 warning: a projection whose subject's type never resolves is
    not an error (partial clauses legitimately leave structure open)
    but it can fail at runtime, so it must be reported.
    """

    def test_untypeable_projection_subject_is_reported(self):
        from repro.model import Schema
        schema = Schema.of("S", Pair=record(name=STR))
        report = check_clause(
            schema,
            parse_clause("Y = N <= M in Pair, M = Mk_Pair(X), N = X.name;",
                         classes=["Pair"]))
        obligations = report.unresolved_obligations()
        assert obligations, "the X.name projection must stay on record"
        assert any("X.name" in entry or ".name" in entry
                   for entry in obligations)

    def test_fully_resolved_clause_has_no_obligations(self, schema):
        report = check_clause(
            schema, clause("X.state = Y <= Y in StateA, X = Y.capital;",
                           schema))
        assert report.unresolved_obligations() == []
