"""``repro lint``: exit codes and golden-pinned output shapes.

The text rendering and the ``--json`` document are consumed by CI
gates and editors, so both are pinned byte-for-byte (the program path
is scrubbed to a placeholder).  Regenerate after intentional changes
with ``UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/cli``.
"""

import json

import pytest

from repro.cli import main

from .test_golden import compare_to_golden, scrub_text

SRC_TEXT = ("schema S { class Item = (name: str, a: str, b: str) "
            "key name; }")
TGT_TEXT = "schema T { class Out = (name: str, v: str) key name; }"

CLEAN_PROGRAM = """
constraint KOut: X = Mk_Out(N) <= X in Out, N = X.name;
transformation P0: X in Out, X.name = N, X.v = N
  <= I in Item, N = I.name;
"""

#: One error (WOL401), one warning (WOL301 pair), one info (WOL204),
#: plus a suppressed WOL303 — exercises every severity and the
#: suppression counter in a single report.
NOISY_PROGRAM = """
-- lint: disable=WOL303 clause=F
constraint KOut: X = Mk_Out(N) <= X in Out, N = X.name;
transformation P0: X in Out, X.name = N <= I in Item, N = I.name;
transformation W1: X.v = V <= X in Out, I in Item,
  X.name = I.name, V = I.a;
transformation W2: X.v = V <= X in Out, I in Item,
  X.name = I.name, V = I.b, U = I.a;
transformation K: Y in Out, Y.v = V <= I in Item, V = I.a;
transformation F: X in Out, X.name = N, X.v = N <= N = "fixed";
"""


@pytest.fixture()
def workspace(tmp_path):
    (tmp_path / "src.schema").write_text(SRC_TEXT)
    (tmp_path / "tgt.schema").write_text(TGT_TEXT)
    (tmp_path / "clean.wol").write_text(CLEAN_PROGRAM)
    (tmp_path / "noisy.wol").write_text(NOISY_PROGRAM)
    return tmp_path


def lint(workspace, program, *extra):
    return main(["lint",
                 "--source", str(workspace / "src.schema"),
                 "--target", str(workspace / "tgt.schema"),
                 str(workspace / program), *extra])


class TestExitCodes:
    def test_clean_program_exits_zero(self, workspace, capsys):
        assert lint(workspace, "clean.wol") == 0
        assert "clean" in capsys.readouterr().out

    def test_errors_fail_by_default(self, workspace):
        assert lint(workspace, "noisy.wol") == 1

    def test_fail_on_warning_tightens_the_gate(self, workspace):
        (workspace / "warn.wol").write_text(
            CLEAN_PROGRAM + """
transformation W1: X.v = V <= X in Out, I in Item,
  X.name = I.name, V = I.a;
""")
        assert lint(workspace, "warn.wol") == 0
        assert lint(workspace, "warn.wol", "--fail-on", "warning") == 1

    def test_fail_on_info_flags_anything(self, workspace, capsys):
        (workspace / "info.wol").write_text(
            CLEAN_PROGRAM.replace(
                "<= I in Item, N = I.name;",
                "<= I in Item, N = I.name, A = I.a;"))
        assert lint(workspace, "info.wol") == 0
        assert lint(workspace, "info.wol", "--fail-on", "info") == 1

    def test_missing_schema_is_a_cli_error(self, workspace):
        assert main(["lint", "--source", str(workspace / "absent.schema"),
                     str(workspace / "clean.wol")]) == 2

    def test_parse_error_reports_wol100(self, workspace, capsys):
        (workspace / "broken.wol").write_text("not wol {{{")
        assert lint(workspace, "broken.wol") == 1
        assert "WOL100" in capsys.readouterr().out


class TestLintGoldens:
    def test_text_output(self, workspace, capsys):
        code = lint(workspace, "noisy.wol")
        out = capsys.readouterr().out
        assert code == 1
        rendered = scrub_text(
            out, {str(workspace / "noisy.wol"): "<program>"})
        compare_to_golden("lint_noisy.txt", rendered)

    def test_json_output(self, workspace, capsys):
        code = lint(workspace, "noisy.wol", "--json")
        out = capsys.readouterr().out
        assert code == 1
        document = json.loads(out)
        assert document["ok"] is False and document["suppressed"] == 1
        rendered = json.dumps(document, indent=2, sort_keys=True) + "\n"
        compare_to_golden("lint_noisy.json", rendered)

    def test_clean_json_output(self, workspace, capsys):
        code = lint(workspace, "clean.wol", "--json")
        out = capsys.readouterr().out
        assert code == 0
        rendered = json.dumps(json.loads(out), indent=2,
                              sort_keys=True) + "\n"
        compare_to_golden("lint_clean.json", rendered)
