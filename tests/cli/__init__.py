"""CLI golden-file regression tests."""
