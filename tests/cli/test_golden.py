"""Golden-file regression tests for the CLI's machine-readable output.

The ``plan``, ``check --json`` and ``apply-delta --json`` outputs are
consumed by CI and external tools, so their exact shape is pinned
against goldens stored in ``tests/cli/goldens/``.  Volatile fields
(elapsed milliseconds, filesystem paths) are scrubbed to stable
placeholders before comparison; everything else — plan step orders,
estimated costs, violation witnesses, propagation counters — must
match byte for byte.

To regenerate after an intentional output change::

    UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/cli

Fixtures are chosen so no anonymous object identity ever reaches the
output (anonymous oids carry process-local serials): the ``check``
golden audits a transformed ReLiBase warehouse whose objects are all
Skolem-keyed, and the ``apply-delta`` golden's violation diff stays
empty by construction.
"""

import json
import os

import pytest

from repro.cli import main
from repro.io import dump_instance
from repro.morphase import Morphase
from repro.workloads import cities, relibase

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

RELIBASE_CONSTRAINTS_TEXT = """
-- Accession is a key for Protein (equal accession, equal object).
KeyProtein:
  X = Y <= X in Protein, Y in Protein, X.accession = Y.accession;

-- Every complex's ligand is a warehouse ligand.
IncComplexLigand:
  V in Ligand <= M in Complex, V = M.ligand;
"""

CITIES_DELTA = {
    "inserts": {
        "CountryE": [{
            "id": {"$oid": "CountryE", "label": "CountryE#new"},
            "value": {"$rec": {"name": "Utopia",
                               "language": "utopian",
                               "currency": "UTO"}}}],
        "CityE": [{
            "id": {"$oid": "CityE", "label": "CityE#new"},
            "value": {"$rec": {
                "name": "Nowhere", "is_capital": True,
                "country": {"$oid": "CountryE",
                            "label": "CountryE#new"}}}}],
    }}


def compare_to_golden(name: str, rendered: str) -> None:
    """Assert ``rendered`` equals the stored golden (or regenerate)."""
    path = os.path.join(GOLDEN_DIR, name)
    if os.environ.get("UPDATE_GOLDENS"):
        with open(path, "w") as handle:
            handle.write(rendered)
    if not os.path.exists(path):
        pytest.fail(f"golden {name} missing; regenerate with "
                    f"UPDATE_GOLDENS=1")
    with open(path) as handle:
        expected = handle.read()
    assert rendered == expected, (
        f"CLI output drifted from goldens/{name}; if the change is "
        f"intentional, regenerate with UPDATE_GOLDENS=1")


def scrub(document, replacements) -> str:
    """Stable rendering of a JSON document with volatile fields fixed.

    ``replacements`` maps a dotted path to the placeholder that
    replaces whatever value the run produced.
    """
    for dotted, placeholder in replacements.items():
        node = document
        *parents, leaf = dotted.split(".")
        for key in parents:
            node = node[key]
        assert leaf in node, f"expected {dotted} in CLI output"
        node[leaf] = placeholder
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


@pytest.fixture()
def relibase_workspace(tmp_path):
    (tmp_path / "sp.schema").write_text(relibase.SWISSPROT_SCHEMA_TEXT)
    (tmp_path / "pdb.schema").write_text(relibase.PDB_SCHEMA_TEXT)
    (tmp_path / "relibase.schema").write_text(
        relibase.RELIBASE_SCHEMA_TEXT)
    (tmp_path / "program.wol").write_text(relibase.PROGRAM_TEXT)
    dump_instance(relibase.sample_swissprot(), str(tmp_path / "sp.json"))
    dump_instance(relibase.sample_pdb(), str(tmp_path / "pdb.json"))
    return tmp_path


@pytest.fixture()
def cities_workspace(tmp_path):
    (tmp_path / "us.schema").write_text(cities.US_SCHEMA_TEXT)
    (tmp_path / "euro.schema").write_text(cities.EURO_SCHEMA_TEXT)
    (tmp_path / "target.schema").write_text(cities.TARGET_SCHEMA_TEXT)
    (tmp_path / "program.wol").write_text(cities.PROGRAM_TEXT)
    dump_instance(cities.sample_us_instance(), str(tmp_path / "us.json"))
    dump_instance(cities.sample_euro_instance(),
                  str(tmp_path / "euro.json"))
    (tmp_path / "delta.json").write_text(json.dumps(CITIES_DELTA))
    return tmp_path


class TestPlanGolden:
    def test_plan_output(self, relibase_workspace, capsys):
        w = relibase_workspace
        code = main(["plan",
                     "--source", str(w / "sp.schema"),
                     "--source", str(w / "pdb.schema"),
                     "--target", str(w / "relibase.schema"),
                     str(w / "program.wol"),
                     "--data", str(w / "sp.json"),
                     "--data", str(w / "pdb.json")])
        out = capsys.readouterr().out
        assert code == 0
        compare_to_golden("plan_relibase.txt", out)


class TestCheckGolden:
    def corrupted_warehouse(self, workspace):
        """A transformed warehouse with one duplicated Protein key."""
        morphase = Morphase(
            [relibase.swissprot_schema(), relibase.pdb_schema()],
            relibase.relibase_schema(), relibase.PROGRAM_TEXT)
        target = morphase.transform(
            [relibase.sample_swissprot(), relibase.sample_pdb()]).target
        builder = target.builder()
        proteins = sorted(target.objects_of("Protein"), key=str)
        builder.put(proteins[0],
                    target.value_of(proteins[0]).with_field(
                        "accession",
                        target.value_of(proteins[1]).get("accession")))
        bad = builder.freeze(validate=False)
        dump_instance(bad, str(workspace / "warehouse.json"))

    def test_check_json_with_violations(self, relibase_workspace,
                                        capsys):
        w = relibase_workspace
        (w / "constraints.wol").write_text(RELIBASE_CONSTRAINTS_TEXT)
        self.corrupted_warehouse(w)
        code = main(["check",
                     "--source", str(w / "relibase.schema"),
                     str(w / "constraints.wol"),
                     "--data", str(w / "warehouse.json"),
                     "--json"])
        out = capsys.readouterr().out
        assert code == 1
        rendered = scrub(json.loads(out),
                         {"stats.elapsed_ms": "<elapsed>"})
        compare_to_golden("check_relibase.json", rendered)

    def test_check_json_parallel_matches_sequential_golden(
            self, relibase_workspace, capsys):
        """The parallel audit emits the same violations (report stats
        differ by construction, so only the violation block is pinned)."""
        w = relibase_workspace
        (w / "constraints.wol").write_text(RELIBASE_CONSTRAINTS_TEXT)
        self.corrupted_warehouse(w)
        code = main(["check",
                     "--source", str(w / "relibase.schema"),
                     str(w / "constraints.wol"),
                     "--data", str(w / "warehouse.json"),
                     "--json", "--parallel", "2"])
        out = capsys.readouterr().out
        assert code == 1
        with open(os.path.join(GOLDEN_DIR,
                               "check_relibase.json")) as handle:
            golden = json.load(handle)
        assert json.loads(out)["violations"] == golden["violations"]


class TestApplyDeltaGolden:
    def test_apply_delta_json(self, cities_workspace, capsys):
        w = cities_workspace
        code = main(["apply-delta",
                     "--source", str(w / "us.schema"),
                     "--source", str(w / "euro.schema"),
                     "--target", str(w / "target.schema"),
                     str(w / "program.wol"),
                     "--data", str(w / "us.json"),
                     "--data", str(w / "euro.json"),
                     "--delta", str(w / "delta.json"),
                     "--out", str(w / "updated.json"),
                     "--json"])
        out = capsys.readouterr().out
        assert code == 0
        rendered = scrub(json.loads(out),
                         {"stats.elapsed_ms": "<elapsed>",
                          "target.path": "<out>"})
        compare_to_golden("apply_delta_cities.json", rendered)


GENOME_GENE_DELTA = {
    "inserts": {
        "Gene": [{
            "id": {"$oid": "Gene",
                   "key": {"$rec": {"name": "G-golden"}}},
            "value": {"$rec": {
                "name": "G-golden",
                "symbol": {"$set": ["gld-1"]},
                "description": {"$set": ["golden gene"]}}}}],
    }}


@pytest.fixture()
def genome_store(tmp_path):
    """A genome store (all-keyed oids, so every byte is deterministic)
    with one snapshot generation and two WAL records."""
    from repro.evolution.delta import delta_from_json
    from repro.store import WarehouseStore
    from repro.workloads import genome

    source = genome.source_instance()
    store = WarehouseStore.create(str(tmp_path / "store"), source)
    store.append(store.decode_delta(GENOME_GENE_DELTA))
    second = json.loads(json.dumps(GENOME_GENE_DELTA).replace(
        "G-golden", "G-golden2"))
    store.append(delta_from_json(second, store.instance))
    store.close()
    return tmp_path


def scrub_text(rendered: str, replacements) -> str:
    for needle, placeholder in replacements.items():
        assert needle in rendered, (
            f"expected {needle!r} in CLI output")
        rendered = rendered.replace(needle, placeholder)
    return rendered


GENOME_PROGRAM_TEXT = """program golden;

seqs = query { N | X in Sequence, N = X.name };
genes = query { N | G in Gene, N = G.name };
both = union seqs, genes;
top = limit both 5;
"""


class TestProgramGoldens:
    """``repro program`` output is API: the JSON result document and
    the canonical AST rendering are pinned against goldens.  The genome
    workload keys every oid, so each byte is deterministic."""

    @pytest.fixture()
    def genome_workspace(self, tmp_path):
        from repro.workloads import genome
        dump_instance(genome.source_instance(),
                      str(tmp_path / "genome.json"))
        (tmp_path / "program.qp").write_text(GENOME_PROGRAM_TEXT)
        return tmp_path

    def test_program_json_golden(self, genome_workspace, capsys):
        w = genome_workspace
        code = main(["program", str(w / "program.qp"),
                     "--data", str(w / "genome.json"), "--json"])
        out = capsys.readouterr().out
        assert code == 0
        rendered = json.dumps(json.loads(out), indent=2,
                              sort_keys=True) + "\n"
        compare_to_golden("program_genome.json", rendered)

    def test_program_ast_golden(self, genome_workspace, capsys):
        w = genome_workspace
        code = main(["program", str(w / "program.qp"), "--ast"])
        out = capsys.readouterr().out
        assert code == 0
        compare_to_golden("program_ast_genome.json", out)

    def test_program_sharded_matches_golden(self, genome_workspace,
                                            capsys):
        """Sharded execution must reproduce the pinned bytes."""
        w = genome_workspace
        code = main(["program", str(w / "program.qp"),
                     "--data", str(w / "genome.json"), "--json",
                     "--shards", "3"])
        out = capsys.readouterr().out
        assert code == 0
        with open(os.path.join(GOLDEN_DIR,
                               "program_genome.json")) as handle:
            golden = json.load(handle)
        assert json.loads(out)["rows"] == golden["rows"]

    def test_envelope_golden(self):
        """The versioned service envelope is wire format — pin it."""
        from repro.service import envelope_error, envelope_ok
        rendered = json.dumps(
            {"ok": envelope_ok({"answer": 42}),
             "error": envelope_error(
                 "validation_failed", "program failed validation",
                 details={"diagnostics": []})},
            indent=2, sort_keys=True) + "\n"
        compare_to_golden("service_envelope.json", rendered)


class TestStoreGoldens:
    def test_serve_help(self, capsys, monkeypatch):
        """The serve surface is API: flags may be added, not drifted.

        Whitespace is normalised before comparison so argparse wrap
        changes across Python versions do not masquerade as drift.
        """
        monkeypatch.setenv("COLUMNS", "80")
        with pytest.raises(SystemExit) as info:
            main(["serve", "--help"])
        assert info.value.code == 0
        out = capsys.readouterr().out
        normalized = " ".join(out.split()) + "\n"
        compare_to_golden("serve_help.txt", normalized)

    def test_snapshot_init_golden(self, tmp_path, capsys):
        from repro.io import dump_instance
        from repro.workloads import genome
        dump_instance(genome.source_instance(),
                      str(tmp_path / "genome.json"))
        code = main(["snapshot", "--store", str(tmp_path / "store"),
                     "--data", str(tmp_path / "genome.json")])
        out = capsys.readouterr().out
        assert code == 0
        rendered = scrub_text(out, {str(tmp_path / "store"): "<store>"})
        compare_to_golden("snapshot_genome.txt", rendered)

    def test_snapshot_compact_golden(self, genome_store, capsys):
        code = main(["snapshot", "--store",
                     str(genome_store / "store")])
        out = capsys.readouterr().out
        assert code == 0
        rendered = scrub_text(
            out, {str(genome_store / "store"): "<store>"})
        compare_to_golden("snapshot_compact_genome.txt", rendered)

    def test_replay_json_golden(self, genome_store, capsys):
        code = main(["replay", "--store", str(genome_store / "store"),
                     "--json"])
        out = capsys.readouterr().out
        assert code == 0
        rendered = scrub(json.loads(out),
                         {"store": "<store>"})
        compare_to_golden("replay_genome.json", rendered)

    def test_store_format_roundtrip_golden(self, genome_store):
        """The canonical store serialisation is the durable format —
        pin it, and pin that a reopened store reproduces it exactly."""
        from repro.store import WarehouseStore
        store = WarehouseStore.open(str(genome_store / "store"))
        rendered = json.dumps(store.canonical_json(), indent=2,
                              sort_keys=True) + "\n"
        compare_to_golden("store_canonical_genome.json", rendered)
        again = WarehouseStore.open(str(genome_store / "store"))
        assert json.dumps(again.canonical_json(), indent=2,
                          sort_keys=True) + "\n" == rendered
        store.close()
        again.close()
