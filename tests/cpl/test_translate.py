"""Unit tests for WOL -> CPL translation and the full CPL path."""

import pytest

from repro.cpl import (CplTranslationError, Filter, Generator, LetBind,
                       run_cpl, translate_body, translate_program)
from repro.lang import parse_clause, parse_program
from repro.model import isomorphic
from repro.morphase import Morphase
from repro.workloads import cities, persons

CLASSES = ["Item", "Out", "CityE", "CountryE"]


def body_of(text, classes=CLASSES):
    return parse_clause(f"T = T <= {text};", classes=classes).body


class TestTranslateBody:
    def test_member_becomes_generator(self):
        quals = translate_body(body_of("X in CityE"), {"CityE"})
        assert isinstance(quals[0], Generator)

    def test_definition_becomes_let(self):
        quals = translate_body(body_of("X in CityE, N = X.name"),
                               {"CityE"})
        assert any(isinstance(q, LetBind) for q in quals)

    def test_join_becomes_filter(self):
        quals = translate_body(
            body_of("X in CityE, Y in CityE, N = X.name, N = Y.name"),
            {"CityE"})
        assert any(isinstance(q, Filter) for q in quals)

    def test_variant_pattern_destructured(self):
        quals = translate_body(
            body_of("X in CityE, V = X.place, V = ins_euro_city(C)"),
            {"CityE"})
        rendered = " ".join(str(q) for q in quals)
        assert "is<euro_city>" in rendered
        assert "payload<euro_city>" in rendered

    def test_unorderable_body_rejected(self):
        # W is never bound by anything.
        with pytest.raises(CplTranslationError):
            translate_body(body_of("X in CityE, X.name = W.name"),
                           {"CityE"})

    def test_non_source_class_rejected(self):
        with pytest.raises(CplTranslationError):
            translate_body(body_of("X in CityE"), {"CountryE"})

    def test_comparisons_translate(self):
        quals = translate_body(
            body_of("X in CityE, Y in CityE, X.name < Y.name,"
                    " X.name != Y.zip"),
            {"CityE"})
        rendered = " ".join(str(q) for q in quals)
        assert "<" in rendered and "<>" in rendered


class TestFullPathEquivalence:
    def test_cities_cpl_matches_direct(self):
        morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                            cities.target_schema(), cities.PROGRAM_TEXT)
        sources = [cities.sample_us_instance(),
                   cities.sample_euro_instance()]
        direct = morphase.transform(sources, backend="direct")
        via_cpl = morphase.transform(sources, backend="cpl")
        # Keyed identities make the instances literally equal, not just
        # isomorphic.
        assert direct.target.valuations == via_cpl.target.valuations

    def test_persons_cpl_matches_direct(self):
        morphase = Morphase([persons.person_schema()],
                            persons.evolved_schema(),
                            persons.PROGRAM_TEXT)
        source = persons.sample_instance()
        direct = morphase.transform(source, backend="direct")
        via_cpl = morphase.transform(source, backend="cpl")
        assert direct.target.valuations == via_cpl.target.valuations

    def test_cpl_source_is_recorded(self):
        morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                            cities.target_schema(), cities.PROGRAM_TEXT)
        result = morphase.transform(
            [cities.sample_us_instance(), cities.sample_euro_instance()],
            backend="cpl")
        assert result.cpl_source is not None
        assert "insert CountryT" in result.cpl_source
        assert "extent(CountryE)" in result.cpl_source

    def test_generated_cpl_runs_on_larger_instances(self):
        morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                            cities.target_schema(), cities.PROGRAM_TEXT)
        sources = [cities.generate_us_instance(5, 3),
                   cities.generate_euro_instance(7, 4)]
        direct = morphase.transform(sources, backend="direct")
        via_cpl = morphase.transform(sources, backend="cpl")
        assert direct.target.valuations == via_cpl.target.valuations
        assert direct.target.class_sizes()["CityT"] == 5 * 3 + 7 * 4


class TestTranslateProgram:
    def test_insert_count_matches_created_objects(self):
        morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                            cities.target_schema(), cities.PROGRAM_TEXT)
        normalized = morphase.compile()
        cpl = translate_program(normalized.program(),
                                cities.target_schema().schema)
        assert len(cpl) == 4  # one created object per normal clause

    def test_non_normal_clause_rejected(self):
        program = parse_program(
            "T: X in Out, X.name = N <= I in Item, N = I.name;",
            classes=["Item", "Out"])
        from repro.model import Schema, record, STR
        target = Schema.of("T", Out=record(name=STR))
        with pytest.raises(CplTranslationError):
            # No identity for X: head plan creates it but identity is
            # missing, making the insert untranslatable.
            translate_program(program, target)
