"""Unit tests for the CPL interpreter."""

import pytest

from repro.cpl import (CplProgram, CplRuntimeError, EBinOp, EConst, EExtent,
                       EField, EIsVariant, EMkOid, ERecord, EVar, EVariant,
                       EVariantPayload, Filter, Generator, Insert, LetBind,
                       eval_expr, run_cpl, solutions)
from repro.model import (INT, STR, InstanceBuilder, Oid, Record, Schema,
                         Variant, WolList, WolSet, record)


def source():
    schema = Schema.of("Src", Item=record(name=STR, rank=INT))
    builder = InstanceBuilder(schema)
    builder.new("Item", Record.of(name="a", rank=1))
    builder.new("Item", Record.of(name="b", rank=2))
    return builder.freeze()


class TestEvalExpr:
    def test_const_and_var(self):
        src = source()
        assert eval_expr(EConst(5), {}, src) == 5
        assert eval_expr(EVar("X"), {"X": 7}, src) == 7
        with pytest.raises(CplRuntimeError):
            eval_expr(EVar("X"), {}, src)

    def test_record_and_field(self):
        src = source()
        rec = eval_expr(ERecord((("a", EConst(1)),)), {}, src)
        assert rec == Record.of(a=1)
        assert eval_expr(EField(EConst(rec) if False else EVar("R"), "a"),
                         {"R": rec}, src) == 1

    def test_field_dereferences_oid(self):
        src = source()
        oid = src.objects_of("Item")[0]
        value = eval_expr(EField(EVar("X"), "name"), {"X": oid}, src)
        assert isinstance(value, str)

    def test_variant_ops(self):
        src = source()
        v = eval_expr(EVariant("l", EConst(1)), {}, src)
        assert v == Variant("l", 1)
        assert eval_expr(EIsVariant(EVar("V"), "l"), {"V": v}, src) is True
        assert eval_expr(EIsVariant(EVar("V"), "m"), {"V": v}, src) is False
        assert eval_expr(EVariantPayload(EVar("V"), "l"), {"V": v},
                         src) == 1
        with pytest.raises(CplRuntimeError):
            eval_expr(EVariantPayload(EVar("V"), "m"), {"V": v}, src)

    def test_mkoid(self):
        src = source()
        oid = eval_expr(EMkOid("Out", EConst("k")), {}, src)
        assert oid == Oid.keyed("Out", "k")

    def test_extent_sorted(self):
        src = source()
        extent = eval_expr(EExtent("Item"), {}, src)
        assert isinstance(extent, WolList)
        assert len(extent) == 2
        with pytest.raises(CplRuntimeError):
            eval_expr(EExtent("Ghost"), {}, src)

    def test_binops(self):
        src = source()
        assert eval_expr(EBinOp("==", EConst(1), EConst(1)), {}, src)
        assert eval_expr(EBinOp("<>", EConst(1), EConst(2)), {}, src)
        assert eval_expr(EBinOp("<", EConst(1), EConst(2)), {}, src)
        assert eval_expr(EBinOp("<=", EConst(2), EConst(2)), {}, src)
        assert eval_expr(
            EBinOp("in", EConst(1), EConst(WolSet.of(1, 2))), {}, src)
        with pytest.raises(CplRuntimeError):
            eval_expr(EBinOp("<", EConst(1), EConst("x")), {}, src)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            EBinOp("**", EConst(1), EConst(1))


class TestSolutions:
    def test_generator_filter_let(self):
        src = source()
        quals = (
            Generator("X", EExtent("Item")),
            LetBind("N", EField(EVar("X"), "name")),
            Filter(EBinOp("==", EVar("N"), EConst("a"))),
        )
        out = list(solutions(quals, {}, src))
        assert len(out) == 1
        assert out[0]["N"] == "a"

    def test_cartesian_product(self):
        src = source()
        quals = (Generator("X", EExtent("Item")),
                 Generator("Y", EExtent("Item")))
        assert len(list(solutions(quals, {}, src))) == 4

    def test_filter_must_be_boolean_true(self):
        src = source()
        quals = (Filter(EConst(1)),)
        assert list(solutions(quals, {}, src)) == []


class TestRunCpl:
    TARGET = Schema.of("Tgt", Out=record(name=STR))

    def test_insert(self):
        src = source()
        program = CplProgram((Insert(
            class_name="Out",
            identity=EMkOid("Out", EField(EVar("X"), "name")),
            attributes=(("name", EField(EVar("X"), "name")),),
            qualifiers=(Generator("X", EExtent("Item")),)),))
        target = run_cpl(program, src, self.TARGET)
        assert target.class_sizes() == {"Out": 2}

    def test_conflict_detected(self):
        src = source()
        program = CplProgram((
            Insert("Out", EMkOid("Out", EConst("k")),
                   (("name", EField(EVar("X"), "name")),),
                   (Generator("X", EExtent("Item")),)),))
        with pytest.raises(CplRuntimeError):
            run_cpl(program, src, self.TARGET)

    def test_incomplete_detected(self):
        src = source()
        program = CplProgram((Insert(
            "Out", EMkOid("Out", EConst("k")), (),
            (Generator("X", EExtent("Item")),)),))
        with pytest.raises(CplRuntimeError):
            run_cpl(program, src, self.TARGET)

    def test_source_rendering(self):
        program = CplProgram((Insert(
            "Out", EMkOid("Out", EConst("k")),
            (("name", EConst("v")),),
            (Generator("X", EExtent("Item")),),
            comment="demo"),))
        text = program.source()
        assert "insert Out" in text
        assert "X <- extent(Item)" in text
        assert "-- demo" in text
