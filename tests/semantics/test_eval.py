"""Unit tests for term evaluation."""

import pytest

from repro.lang import parse_term
from repro.model import Oid, Record, Variant
from repro.semantics import EvalError, evaluate, skolem_key
from repro.workloads.cities import sample_euro_instance


@pytest.fixture()
def euro():
    return sample_euro_instance()


def city(instance, name):
    return next(o for o in instance.objects_of("CityE")
                if instance.attribute(o, "name") == name)


class TestEvaluate:
    def test_variable(self, euro):
        assert evaluate(parse_term("X"), {"X": 1}) == 1

    def test_unbound_variable(self):
        with pytest.raises(EvalError):
            evaluate(parse_term("X"), {})

    def test_constants(self):
        assert evaluate(parse_term("42"), {}) == 42
        assert evaluate(parse_term('"x"'), {}) == "x"
        assert evaluate(parse_term("true"), {}) is True

    def test_projection_dereferences_oids(self, euro):
        london = city(euro, "London")
        value = evaluate(parse_term("X.country.name"), {"X": london}, euro)
        assert value == "United Kingdom"

    def test_projection_of_plain_record(self):
        rec = Record.of(a=1)
        assert evaluate(parse_term("X.a"), {"X": rec}) == 1

    def test_projection_without_instance_fails_on_oid(self, euro):
        london = city(euro, "London")
        with pytest.raises(EvalError):
            evaluate(parse_term("X.name"), {"X": london}, None)

    def test_missing_attribute(self, euro):
        london = city(euro, "London")
        with pytest.raises(EvalError):
            evaluate(parse_term("X.mayor"), {"X": london}, euro)

    def test_variant_term(self):
        value = evaluate(parse_term("ins_euro_city(X)"), {"X": 7})
        assert value == Variant("euro_city", 7)

    def test_unit_variant(self):
        value = evaluate(parse_term("ins_male()"), {})
        assert value == Variant("male")

    def test_record_term(self):
        value = evaluate(parse_term("(a = X, b = 2)"), {"X": 1})
        assert value == Record.of(a=1, b=2)

    def test_skolem_single_positional(self):
        oid = evaluate(parse_term("Mk_CountryT(N)"), {"N": "France"})
        assert oid == Oid.keyed("CountryT", "France")

    def test_skolem_named(self):
        oid = evaluate(parse_term("Mk_CityT(name = N, cn = C)"),
                       {"N": "Paris", "C": "France"})
        assert oid == Oid.keyed(
            "CityT", Record.of(name="Paris", cn="France"))

    def test_skolem_injective(self):
        first = evaluate(parse_term("Mk_C(N)"), {"N": "a"})
        second = evaluate(parse_term("Mk_C(N)"), {"N": "b"})
        third = evaluate(parse_term("Mk_C(N)"), {"N": "a"})
        assert first != second
        assert first == third

    def test_skolem_multi_positional(self):
        oid = evaluate(parse_term("Mk_C(X, Y)"), {"X": 1, "Y": 2})
        assert oid == Oid.keyed("C", Record.of(arg0=1, arg1=2))


class TestSkolemKey:
    def test_empty(self):
        assert skolem_key("C", ()) == Record(())

    def test_single_positional_is_raw(self):
        assert skolem_key("C", ((None, "x"),)) == "x"

    def test_named_packs_record(self):
        key = skolem_key("C", (("a", 1), ("b", 2)))
        assert key == Record.of(a=1, b=2)
