"""Unit tests for the columnar instance mirror (``ColumnStore``)."""

import pytest

from repro.evolution.delta import Delta
from repro.model import InstanceBuilder, Oid, Record, WolSet
from repro.model.schema import parse_schema
from repro.semantics.columns import MISSING, ColumnStore, deterministic_order

SCHEMA = parse_schema("""
schema S {
  class P = (name: str, age: int, tags: {str});
}
""")


def build_instance(specs, validate=True):
    """``specs``: list of (name, age-or-None, tags-or-None)."""
    builder = InstanceBuilder(SCHEMA)
    for name, age, tags in specs:
        fields = {"name": name}
        if age is not None:
            fields["age"] = age
        if tags is not None:
            fields["tags"] = WolSet.of(*tags)
        builder.make("P", name, Record.of(**fields))
    return builder.freeze(validate=validate)


@pytest.fixture()
def instance():
    return build_instance([
        ("a", 30, ("x", "y")),
        ("b", 40, ()),
        ("c", 50, ("z",)),
    ])


class TestLazyBuild:
    def test_extent_in_insertion_order(self, instance):
        store = ColumnStore(instance)
        assert store.extent("P") == list(instance.objects_of("P"))
        assert store.extent_rows("P") == [0, 1, 2]
        assert store.row_map("P") == {
            oid: row for row, oid in enumerate(store.extent("P"))}

    def test_scalar_column_aligned(self, instance):
        store = ColumnStore(instance)
        assert store.scalar_column("P", "age") == [30, 40, 50]
        assert store.scalar_column("P", "name") == ["a", "b", "c"]

    def test_missing_attribute_is_sentinel(self):
        sparse = build_instance(
            [("a", 30, ()), ("b", None, ())], validate=False)
        store = ColumnStore(sparse)
        assert store.scalar_column("P", "age") == [30, MISSING]

    def test_set_slices_deterministically_ordered(self, instance):
        store = ColumnStore(instance)
        a, b, c = store.extent("P")
        assert list(store.set_slice(a, "tags")) == deterministic_order(
            instance.value_of(a).get("tags"))
        assert list(store.set_slice(b, "tags")) == []
        assert list(store.set_slice(c, "tags")) == ["z"]
        # Unknown oid / non-collection attribute enumerate nothing.
        assert list(store.set_slice(Oid.keyed("P", "ghost"), "tags")) == []

    def test_set_lengths_without_flattened_values(self, instance):
        store = ColumnStore(instance)
        assert store.set_lengths("P", "tags") == [2, 0, 1]
        built_before = store.columns_built
        # A later full set column is independent...
        store.set_slice(store.extent("P")[0], "tags")
        assert store.columns_built == built_before + 1
        # ...and once built, lengths come from it directly.
        assert store.set_lengths("P", "tags") == [2, 0, 1]

    def test_counters_track_construction(self, instance):
        store = ColumnStore(instance)
        assert store.stats() == {"classes_built": 0, "columns_built": 0,
                                 "rows_patched": 0}
        store.scalar_column("P", "age")
        store.scalar_column("P", "age")  # cached: no rebuild
        assert store.stats()["classes_built"] == 1
        assert store.stats()["columns_built"] == 1


class TestShardExtents:
    def test_shards_partition_the_extent(self, instance):
        store = ColumnStore(instance)
        shards = [store.shard_extent("P", index, 2) for index in (0, 1)]
        flat = [oid for shard in shards for oid in shard]
        assert sorted(flat, key=str) == sorted(store.extent("P"), key=str)
        assert len(set(flat)) == len(flat)


def snapshot(store, attrs=("name", "age"), set_attrs=("tags",)):
    """Extent-aligned view of every column (tombstone-insensitive)."""
    extent = store.extent("P")
    rows = store.extent_rows("P")
    data = {"extent": list(extent)}
    for attr in attrs:
        column = store.scalar_column("P", attr)
        data[attr] = [column[row] for row in rows]
    for attr in set_attrs:
        data[attr] = [list(store.set_slice(oid, attr)) for oid in extent]
    return data


class TestPatch:
    def test_patch_matches_rebuild(self, instance):
        store = ColumnStore(instance)
        snapshot(store)  # materialise every column first
        store.set_lengths("P", "tags")
        a, b, c = store.extent("P")
        new_d = Oid.keyed("P", "d")
        delta = Delta(
            deletes={"P": (b,)},
            updates={"P": {c: Record.of(name="c", age=51,
                                        tags=WolSet.of("q", "p"))}},
            inserts={"P": {new_d: Record.of(name="d", age=60,
                                            tags=WolSet.of("w"))}})
        updated = delta.apply_to(instance)
        store.patch(updated,
                    strict_removed={"P": (b, c)},
                    strict_added={"P": (c, new_d)})
        assert snapshot(store) == snapshot(ColumnStore(updated))
        lengths = store.set_lengths("P", "tags")
        assert [lengths[row]
                for row in store.extent_rows("P")] == [2, 2, 1]
        assert store.rows_patched > 0
        # Patched in place, not dropped-and-rebuilt.
        assert store.stats()["classes_built"] == 1

    def test_inconsistent_strict_sets_fall_back(self, instance):
        store = ColumnStore(instance)
        snapshot(store)
        ghost = Oid.keyed("P", "ghost")
        new_d = Oid.keyed("P", "d")
        delta = Delta(inserts={"P": {new_d: Record.of(
            name="d", age=60, tags=WolSet.of())}})
        updated = delta.apply_to(instance)
        # The strict sets claim a removal the store never saw: the
        # class must be invalidated and lazily rebuilt, never served
        # half-patched.
        store.patch(updated,
                    strict_removed={"P": (ghost,)},
                    strict_added={"P": (ghost, new_d)})
        assert snapshot(store) == snapshot(ColumnStore(updated))

    def test_unbuilt_classes_are_skipped(self, instance):
        store = ColumnStore(instance)  # nothing materialised
        b = list(instance.objects_of("P"))[1]
        delta = Delta(deletes={"P": (b,)})
        updated = delta.apply_to(instance)
        store.patch(updated, strict_removed={"P": (b,)},
                    strict_added={})
        assert store.rows_patched == 0  # lazily built later instead
        assert snapshot(store) == snapshot(ColumnStore(updated))

    def test_refresh_drops_touched_classes_only(self, instance):
        store = ColumnStore(instance)
        store.scalar_column("P", "age")
        b = list(instance.objects_of("P"))[1]
        updated = Delta(deletes={"P": (b,)}).apply_to(instance)
        store.refresh(updated, ["P"])
        assert store.extent("P") == list(updated.objects_of("P"))
        assert store.scalar_column("P", "age") == [30, 50]
