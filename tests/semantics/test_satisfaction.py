"""Unit tests for clause satisfaction (paper Section 3.1 semantics)."""

import pytest

from repro.lang import parse_clause
from repro.model import InstanceBuilder, Record
from repro.semantics import (clause_violations, merge_instances,
                             satisfies_clause, satisfies_program)
from repro.workloads.cities import (euro_schema, sample_euro_instance,
                                    sample_us_instance, us_schema)

EURO_CLASSES = euro_schema().schema.class_names()
US_CLASSES = us_schema().schema.class_names()


@pytest.fixture()
def euro():
    return sample_euro_instance()


def clause(text, classes=EURO_CLASSES):
    return parse_clause(text, classes=classes)


class TestPaperConstraints:
    def test_c4_every_country_has_capital(self, euro):
        c4 = clause("Y in CityE, Y.country = X, Y.is_capital = true"
                    " <= X in CountryE;")
        assert satisfies_clause(euro, c4)

    def test_c4_violated(self, euro):
        builder = euro.builder()
        builder.new("CountryE", Record.of(
            name="Utopia", language="?", currency="?"))
        broken = builder.freeze()
        c4 = clause("Y in CityE, Y.country = X, Y.is_capital = true"
                    " <= X in CountryE;")
        violations = clause_violations(broken, c4)
        assert len(violations) == 1

    def test_c5_at_most_one_capital(self, euro):
        c5 = clause("X = Y <= X in CityE, Y in CityE,"
                    " X.country = Y.country, X.is_capital = true,"
                    " Y.is_capital = true;")
        assert satisfies_clause(euro, c5)

    def test_c5_violated_by_second_capital(self, euro):
        builder = euro.builder()
        france = next(o for o in euro.objects_of("CountryE")
                      if euro.attribute(o, "name") == "France")
        builder.new("CityE", Record.of(
            name="Marseille", is_capital=True, country=france))
        broken = builder.freeze()
        c5 = clause("X = Y <= X in CityE, Y in CityE,"
                    " X.country = Y.country, X.is_capital = true,"
                    " Y.is_capital = true;")
        assert not satisfies_clause(broken, c5)

    def test_c1_capital_belongs_to_state(self):
        us = sample_us_instance()
        c1 = clause("X.state = Y <= Y in StateA, X = Y.capital;",
                    classes=US_CLASSES)
        assert satisfies_clause(us, c1)

    def test_program_satisfaction(self, euro):
        program = [
            clause("Y in CityE, Y.country = X, Y.is_capital = true"
                   " <= X in CountryE;"),
            clause("X = Y <= X in CityE, Y in CityE,"
                   " X.country = Y.country, X.is_capital = true,"
                   " Y.is_capital = true;"),
        ]
        assert satisfies_program(euro, program)


class TestExistentialHeads:
    def test_head_variable_existentially_quantified(self, euro):
        # For every country there exists a city in it.
        c = clause("Y in CityE, Y.country = X <= X in CountryE;")
        assert satisfies_clause(euro, c)

    def test_violation_binding_projected_to_body_vars(self, euro):
        builder = euro.builder()
        builder.new("CountryE", Record.of(
            name="Utopia", language="?", currency="?"))
        broken = builder.freeze()
        c = clause("Y in CityE, Y.country = X <= X in CountryE;")
        (violation,) = clause_violations(broken, c)
        assert set(violation.binding) == {"X"}
        assert broken.attribute(violation.binding["X"], "name") == "Utopia"


class TestMergeInstances:
    def test_merge_disjoint_schemas(self, euro):
        us = sample_us_instance()
        merged = merge_instances("Both", [us, euro])
        assert merged.size() == us.size() + euro.size()
        merged.validate()

    def test_duplicate_class_rejected(self, euro):
        # Class names must be disjoint: a silent merge would overwrite
        # one input's objects with the other's.
        from repro.model.instance import InstanceError
        with pytest.raises(InstanceError,
                           match="instance #0 and instance #1"):
            merge_instances("Both", [euro, sample_euro_instance()])

    def test_duplicate_class_error_names_both_instances(self, euro):
        from repro.model.instance import InstanceError
        us = sample_us_instance()
        with pytest.raises(InstanceError, match="instance #1.*instance #2"):
            merge_instances("Both", [us, euro, sample_euro_instance()])

    def test_cross_database_clause(self, euro):
        us = sample_us_instance()
        merged = merge_instances("Both", [us, euro])
        # No US city shares a name with a European city in the samples.
        c = parse_clause(
            "X = X <= X in CityA, Y in CityE, X.name = Y.name;",
            classes=US_CLASSES + EURO_CLASSES)
        from repro.semantics import Matcher
        assert not Matcher(merged).satisfiable(c.body)


class TestViolationLimit:
    def test_limit_respected(self, euro):
        builder = euro.builder()
        for index in range(5):
            builder.new("CountryE", Record.of(
                name=f"Ghost{index}", language="?", currency="?"))
        broken = builder.freeze()
        c4 = clause("Y in CityE, Y.country = X, Y.is_capital = true"
                    " <= X in CountryE;")
        assert len(clause_violations(broken, c4, limit=2)) == 2
        assert len(clause_violations(broken, c4)) == 5
