"""Unit tests for the conjunctive matcher."""

import pytest

from repro.lang import parse_atom, parse_clause, parse_term
from repro.model import (STR, ClassType, InstanceBuilder, Oid, Record,
                         Schema, WolSet, record, set_of)
from repro.semantics import Matcher, unify_term
from repro.workloads.cities import euro_schema, sample_euro_instance

CLASSES = ["CityE", "CountryE"]


@pytest.fixture()
def euro():
    return sample_euro_instance()


def atoms(text, classes=CLASSES):
    clause = parse_clause(f"T = T <= {text};", classes=classes)
    return clause.body


class TestUnifyTerm:
    def test_variable_binds(self):
        out = unify_term(parse_term("X"), 5, {}, None)
        assert out == {"X": 5}

    def test_bound_variable_checks(self):
        assert unify_term(parse_term("X"), 5, {"X": 5}, None) == {"X": 5}
        assert unify_term(parse_term("X"), 6, {"X": 5}, None) is None

    def test_const_matches(self):
        assert unify_term(parse_term("42"), 42, {}, None) == {}
        assert unify_term(parse_term("42"), 41, {}, None) is None

    def test_record_decomposition(self):
        value = Record.of(a=1, b=2)
        out = unify_term(parse_term("(a = X, b = Y)"), value, {}, None)
        assert out == {"X": 1, "Y": 2}

    def test_record_field_mismatch(self):
        value = Record.of(a=1)
        assert unify_term(parse_term("(a = X, b = Y)"), value, {},
                          None) is None

    def test_variant_decomposition(self):
        from repro.model import Variant
        out = unify_term(parse_term("ins_l(X)"), Variant("l", 3), {}, None)
        assert out == {"X": 3}
        assert unify_term(parse_term("ins_m(X)"), Variant("l", 3), {},
                          None) is None

    def test_skolem_inversion_single(self):
        oid = Oid.keyed("CountryT", "France")
        out = unify_term(parse_term("Mk_CountryT(N)"), oid, {}, None)
        assert out == {"N": "France"}

    def test_skolem_inversion_named(self):
        oid = Oid.keyed("CityT", Record.of(name="Paris", cn="France"))
        out = unify_term(parse_term("Mk_CityT(name = N, cn = C)"), oid,
                         {}, None)
        assert out == {"N": "Paris", "C": "France"}

    def test_skolem_class_mismatch(self):
        oid = Oid.keyed("StateT", "Iowa")
        assert unify_term(parse_term("Mk_CountryT(N)"), oid, {},
                          None) is None

    def test_anonymous_oid_never_matches_skolem(self):
        assert unify_term(parse_term("Mk_C(N)"), Oid.fresh("C"), {},
                          None) is None

    def test_binding_not_mutated(self):
        binding = {}
        unify_term(parse_term("X"), 5, binding, None)
        assert binding == {}


class TestMatcher:
    def test_class_membership_generates(self, euro):
        matcher = Matcher(euro)
        solutions = list(matcher.solutions(atoms("X in CountryE")))
        assert len(solutions) == 3

    def test_join_on_attribute(self, euro):
        matcher = Matcher(euro)
        body = atoms("X in CityE, X.is_capital = true, X.country = C,"
                     " C in CountryE")
        solutions = list(matcher.solutions(body))
        assert len(solutions) == 3  # one capital per country

    def test_projection_chain(self, euro):
        matcher = Matcher(euro)
        body = atoms('X in CityE, X.country.name = "France"')
        names = {euro.attribute(s["X"], "name")
                 for s in matcher.solutions(body)}
        assert names == {"Paris", "Lyon"}

    def test_constant_filter(self, euro):
        matcher = Matcher(euro)
        body = atoms('X in CityE, X.name = "London"')
        assert len(list(matcher.solutions(body))) == 1

    def test_neq_filters(self, euro):
        matcher = Matcher(euro)
        body = atoms("X in CountryE, Y in CountryE, X != Y")
        assert len(list(matcher.solutions(body))) == 6  # ordered pairs

    def test_comparison(self, euro):
        matcher = Matcher(euro)
        body = atoms("X in CountryE, Y in CountryE, X.name < Y.name")
        assert len(list(matcher.solutions(body))) == 3  # 3 choose 2

    def test_initial_binding_respected(self, euro):
        matcher = Matcher(euro)
        france = next(o for o in euro.objects_of("CountryE")
                      if euro.attribute(o, "name") == "France")
        body = atoms("X in CityE, X.country = C")
        solutions = list(matcher.solutions(body, {"C": france}))
        assert len(solutions) == 2

    def test_satisfiable_short_circuits(self, euro):
        matcher = Matcher(euro)
        assert matcher.satisfiable(atoms("X in CityE"))
        assert not matcher.satisfiable(
            atoms('X in CityE, X.name = "Gotham"'))

    def test_set_membership(self):
        schema = Schema.of(
            "S", Person=record(name=STR, nicknames=set_of(STR)))
        builder = InstanceBuilder(schema)
        builder.new("Person", Record.of(
            name="Sue", nicknames=WolSet.of("s", "su")))
        inst = builder.freeze()
        matcher = Matcher(inst)
        body = atoms("P in Person, N in P.nicknames", classes=["Person"])
        names = {s["N"] for s in matcher.solutions(body)}
        assert names == {"s", "su"}

    def test_skolem_definition_binds(self, euro):
        matcher = Matcher(euro)
        body = atoms("C in CountryE, C.name = N, X = Mk_CountryT(N)")
        solutions = list(matcher.solutions(body))
        assert len(solutions) == 3
        assert all(isinstance(s["X"], Oid) for s in solutions)

    def test_deterministic_order(self, euro):
        matcher = Matcher(euro)
        body = atoms("X in CityE")
        first = [s["X"] for s in matcher.solutions(body)]
        second = [s["X"] for s in matcher.solutions(body)]
        assert first == second
