"""Unit tests for schema diffing and operator synthesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evolution import Evolution
from repro.evolution.diff import DiffError, SchemaDiff, diff_schemas
from repro.model import Record, WolSet, parse_schema
from repro.model.instance import InstanceBuilder

OLD = """
schema Shop {
  class Product = (sku: str, label: str, price: int,
                   barcode: {str}) key sku;
  class Vendor  = (name: str, city: str) key name;
}
"""

NEW_RENAME = """
schema Shop {
  class Product = (sku: str, title: str, price: int,
                   barcode: {str}) key sku;
  class Vendor  = (name: str, city: str) key name;
}
"""

NEW_REQUIRED = """
schema Shop {
  class Product = (sku: str, label: str, price: int,
                   barcode: str) key sku;
  class Vendor  = (name: str, city: str) key name;
}
"""

NEW_MIXED = """
schema Shop {
  class Product = (sku: str, title: str, barcode: {str},
                   in_stock: bool) key sku;
  class Vendor  = (name: str, city: str) key name;
}
"""


def old_schema():
    return parse_schema(OLD)


def shop_instance(schema):
    builder = InstanceBuilder(schema.schema)
    builder.new("Vendor", Record.of(name="Acme", city="Philadelphia"))
    builder.new("Product", Record.of(
        sku="S1", label="Widget", price=10, barcode=WolSet.of("111")))
    builder.new("Product", Record.of(
        sku="S2", label="Gadget", price=20, barcode=WolSet.of()))
    return builder.freeze()


class TestDiffDetection:
    def test_unchanged(self):
        diff = diff_schemas(old_schema(), old_schema())
        assert all(d.unchanged for d in diff.shared.values())
        assert diff.decisions_needed() == []

    def test_rename_detected(self):
        diff = diff_schemas(old_schema(), parse_schema(NEW_RENAME))
        assert diff.shared["Product"].renamed == {"label": "title"}
        assert not diff.shared["Product"].added
        assert not diff.shared["Product"].dropped

    def test_made_required_detected(self):
        diff = diff_schemas(old_schema(), parse_schema(NEW_REQUIRED))
        product = diff.shared["Product"]
        assert "barcode" in product.made_required
        assert any("policy" in d for d in diff.decisions_needed())

    def test_mixed_changes(self):
        diff = diff_schemas(old_schema(), parse_schema(NEW_MIXED))
        product = diff.shared["Product"]
        assert product.renamed == {"label": "title"}
        assert "price" in product.dropped
        assert "in_stock" in product.added
        assert "Product" in diff.summary()

    def test_class_addition_and_drop(self):
        new = parse_schema("""
            schema Shop {
              class Product = (sku: str, label: str, price: int,
                               barcode: {str}) key sku;
              class Brand   = (name: str) key name;
            }
        """)
        diff = diff_schemas(old_schema(), new)
        assert diff.added_classes == ["Brand"]
        assert diff.dropped_classes == ["Vendor"]

    def test_ambiguous_rename_not_guessed(self):
        new = parse_schema("""
            schema Shop {
              class Product = (sku: str, titleA: str, titleB: str,
                               price: int, barcode: {str}) key sku;
              class Vendor  = (name: str, city: str) key name;
            }
        """)
        diff = diff_schemas(old_schema(), new)
        product = diff.shared["Product"]
        # label could be titleA or titleB: stay conservative.
        assert product.renamed == {}
        assert set(product.added) == {"titleA", "titleB"}
        assert set(product.dropped) == {"label"}


class TestOperatorSynthesis:
    def test_rename_program_runs(self):
        old = old_schema()
        diff = diff_schemas(old, parse_schema(NEW_RENAME))
        evolution = diff.to_evolution()
        result = evolution.build()
        out = result.transform(old, shop_instance(old))
        assert out.schema.attributes("Product") == (
            "barcode", "price", "sku", "title")

    def test_required_needs_policy(self):
        diff = diff_schemas(old_schema(), parse_schema(NEW_REQUIRED))
        with pytest.raises(DiffError):
            diff.to_evolution()

    def test_required_with_delete_policy(self):
        old = old_schema()
        diff = diff_schemas(old, parse_schema(NEW_REQUIRED))
        evolution = diff.to_evolution(
            policies={("Product", "barcode"): "delete"})
        out = evolution.build().transform(old, shop_instance(old))
        assert out.class_sizes()["Product"] == 1  # S2 had no barcode

    def test_required_with_default_policy(self):
        old = old_schema()
        diff = diff_schemas(old, parse_schema(NEW_REQUIRED))
        evolution = diff.to_evolution(
            policies={("Product", "barcode"): "default"},
            defaults={("Product", "barcode"): "NO-BARCODE"})
        out = evolution.build().transform(old, shop_instance(old))
        assert out.class_sizes()["Product"] == 2
        barcodes = {out.attribute(p, "barcode")
                    for p in out.objects_of("Product")}
        assert barcodes == {"111", "NO-BARCODE"}

    def test_added_attribute_needs_default(self):
        diff = diff_schemas(old_schema(), parse_schema(NEW_MIXED))
        with pytest.raises(DiffError):
            diff.to_evolution()

    def test_added_attribute_with_default(self):
        old = old_schema()
        diff = diff_schemas(old, parse_schema(NEW_MIXED))
        evolution = diff.to_evolution(
            defaults={("Product", "in_stock"): True})
        out = evolution.build().transform(old, shop_instance(old))
        stocked = {out.attribute(p, "in_stock")
                   for p in out.objects_of("Product")}
        assert stocked == {True}

    def test_new_classes_rejected(self):
        new = parse_schema("""
            schema Shop {
              class Product = (sku: str, label: str, price: int,
                               barcode: {str}) key sku;
              class Vendor  = (name: str, city: str) key name;
              class Brand   = (name: str) key name;
            }
        """)
        diff = diff_schemas(old_schema(), new)
        with pytest.raises(DiffError):
            diff.to_evolution()


class TestDiffRoundTrips:
    """Evolve a schema, diff old-vs-new, and the diff must repropose an
    Evolution that rebuilds the same target schema and acts identically
    on instances — one round trip per supported operator."""

    def roundtrip(self, evolution, policies=None, defaults=None):
        """Build an evolution, diff its result, repropose, compare."""
        first = evolution.build()
        old = evolution.source
        diff = diff_schemas(old, first.target_schema)
        reproposed = diff.to_evolution(
            policies=policies, defaults=defaults,
            target_name=first.target_schema.schema.name)
        second = reproposed.build()
        assert second.target_schema.schema \
            == first.target_schema.schema
        assert second.target_schema.keys.classes() \
            == first.target_schema.keys.classes()
        return first, second

    def test_rename_round_trip(self):
        old = old_schema()
        evolution = Evolution(old, "Shop").copy_class(
            "Product", renames={"label": "title"}).copy_class("Vendor")
        first, second = self.roundtrip(evolution)
        instance = shop_instance(old)
        out_first = first.transform(old, instance)
        out_second = second.transform(old, instance)
        assert out_first.class_sizes() == out_second.class_sizes()
        titles = {out_second.attribute(p, "title")
                  for p in out_second.objects_of("Product")}
        assert titles == {"Widget", "Gadget"}

    def test_drop_round_trip(self):
        old = old_schema()
        evolution = Evolution(old, "Shop").copy_class(
            "Product", drops=("price",)).copy_class("Vendor")
        first, second = self.roundtrip(evolution)
        out = second.transform(old, shop_instance(old))
        assert out.schema.attributes("Product") == (
            "barcode", "label", "sku")
        assert out.class_sizes() == first.transform(
            old, shop_instance(old)).class_sizes()

    def test_add_round_trip(self):
        from repro.model.types import BaseType
        old = old_schema()
        evolution = Evolution(old, "Shop").copy_class(
            "Product",
            adds={"in_stock": (BaseType("bool"), True)}).copy_class(
                "Vendor")
        _, second = self.roundtrip(
            evolution, defaults={("Product", "in_stock"): True})
        out = second.transform(old, shop_instance(old))
        assert {out.attribute(p, "in_stock")
                for p in out.objects_of("Product")} == {True}

    def test_make_required_round_trip_both_policies(self):
        for policy, default in (("delete", None),
                                ("default", "NO-BARCODE")):
            old = old_schema()
            evolution = Evolution(old, "Shop")
            evolution.copy_class("Product").make_required(
                "Product", "barcode", policy, default=default)
            evolution.copy_class("Vendor")
            defaults = ({("Product", "barcode"): default}
                        if default is not None else None)
            first, second = self.roundtrip(
                evolution,
                policies={("Product", "barcode"): policy},
                defaults=defaults)
            out_first = first.transform(old, shop_instance(old))
            out_second = second.transform(old, shop_instance(old))
            assert out_first.class_sizes() == out_second.class_sizes()

    @settings(max_examples=25, deadline=None)
    @given(
        renamed=st.booleans(),
        dropped=st.sampled_from([(), ("price",), ("label", "price")]),
        added=st.booleans(),
    )
    def test_copy_class_round_trip_property(self, renamed, dropped,
                                            added):
        """Any mix of rename/drop/add on one class survives the diff.

        The added attribute's type (bool) collides with nothing
        droppable, so the conservative rename heuristic cannot absorb
        it and the diff must detect every change exactly.
        """
        from repro.model.types import BaseType
        old = old_schema()
        renames = {"label": "title"} if renamed and "label" not in dropped \
            else {}
        adds = {"in_stock": (BaseType("bool"), True)} if added else {}
        evolution = Evolution(old, "Shop").copy_class(
            "Product", renames=renames, drops=dropped,
            adds=adds).copy_class("Vendor")
        first = evolution.build()
        diff = diff_schemas(old, first.target_schema)
        product = diff.shared["Product"]
        assert set(product.dropped) | set(product.renamed) \
            == set(dropped) | set(renames)
        assert set(product.added) == set(adds)
        defaults = {("Product", "in_stock"): True} if added else None
        reproposed = diff.to_evolution(defaults=defaults,
                                       target_name="Shop")
        assert reproposed.build().target_schema.schema \
            == first.target_schema.schema
