"""Unit tests for schema diffing and operator synthesis."""

import pytest

from repro.evolution import Evolution
from repro.evolution.diff import DiffError, SchemaDiff, diff_schemas
from repro.model import Record, WolSet, parse_schema
from repro.model.instance import InstanceBuilder

OLD = """
schema Shop {
  class Product = (sku: str, label: str, price: int,
                   barcode: {str}) key sku;
  class Vendor  = (name: str, city: str) key name;
}
"""

NEW_RENAME = """
schema Shop {
  class Product = (sku: str, title: str, price: int,
                   barcode: {str}) key sku;
  class Vendor  = (name: str, city: str) key name;
}
"""

NEW_REQUIRED = """
schema Shop {
  class Product = (sku: str, label: str, price: int,
                   barcode: str) key sku;
  class Vendor  = (name: str, city: str) key name;
}
"""

NEW_MIXED = """
schema Shop {
  class Product = (sku: str, title: str, barcode: {str},
                   in_stock: bool) key sku;
  class Vendor  = (name: str, city: str) key name;
}
"""


def old_schema():
    return parse_schema(OLD)


def shop_instance(schema):
    builder = InstanceBuilder(schema.schema)
    builder.new("Vendor", Record.of(name="Acme", city="Philadelphia"))
    builder.new("Product", Record.of(
        sku="S1", label="Widget", price=10, barcode=WolSet.of("111")))
    builder.new("Product", Record.of(
        sku="S2", label="Gadget", price=20, barcode=WolSet.of()))
    return builder.freeze()


class TestDiffDetection:
    def test_unchanged(self):
        diff = diff_schemas(old_schema(), old_schema())
        assert all(d.unchanged for d in diff.shared.values())
        assert diff.decisions_needed() == []

    def test_rename_detected(self):
        diff = diff_schemas(old_schema(), parse_schema(NEW_RENAME))
        assert diff.shared["Product"].renamed == {"label": "title"}
        assert not diff.shared["Product"].added
        assert not diff.shared["Product"].dropped

    def test_made_required_detected(self):
        diff = diff_schemas(old_schema(), parse_schema(NEW_REQUIRED))
        product = diff.shared["Product"]
        assert "barcode" in product.made_required
        assert any("policy" in d for d in diff.decisions_needed())

    def test_mixed_changes(self):
        diff = diff_schemas(old_schema(), parse_schema(NEW_MIXED))
        product = diff.shared["Product"]
        assert product.renamed == {"label": "title"}
        assert "price" in product.dropped
        assert "in_stock" in product.added
        assert "Product" in diff.summary()

    def test_class_addition_and_drop(self):
        new = parse_schema("""
            schema Shop {
              class Product = (sku: str, label: str, price: int,
                               barcode: {str}) key sku;
              class Brand   = (name: str) key name;
            }
        """)
        diff = diff_schemas(old_schema(), new)
        assert diff.added_classes == ["Brand"]
        assert diff.dropped_classes == ["Vendor"]

    def test_ambiguous_rename_not_guessed(self):
        new = parse_schema("""
            schema Shop {
              class Product = (sku: str, titleA: str, titleB: str,
                               price: int, barcode: {str}) key sku;
              class Vendor  = (name: str, city: str) key name;
            }
        """)
        diff = diff_schemas(old_schema(), new)
        product = diff.shared["Product"]
        # label could be titleA or titleB: stay conservative.
        assert product.renamed == {}
        assert set(product.added) == {"titleA", "titleB"}
        assert set(product.dropped) == {"label"}


class TestOperatorSynthesis:
    def test_rename_program_runs(self):
        old = old_schema()
        diff = diff_schemas(old, parse_schema(NEW_RENAME))
        evolution = diff.to_evolution()
        result = evolution.build()
        out = result.transform(old, shop_instance(old))
        assert out.schema.attributes("Product") == (
            "barcode", "price", "sku", "title")

    def test_required_needs_policy(self):
        diff = diff_schemas(old_schema(), parse_schema(NEW_REQUIRED))
        with pytest.raises(DiffError):
            diff.to_evolution()

    def test_required_with_delete_policy(self):
        old = old_schema()
        diff = diff_schemas(old, parse_schema(NEW_REQUIRED))
        evolution = diff.to_evolution(
            policies={("Product", "barcode"): "delete"})
        out = evolution.build().transform(old, shop_instance(old))
        assert out.class_sizes()["Product"] == 1  # S2 had no barcode

    def test_required_with_default_policy(self):
        old = old_schema()
        diff = diff_schemas(old, parse_schema(NEW_REQUIRED))
        evolution = diff.to_evolution(
            policies={("Product", "barcode"): "default"},
            defaults={("Product", "barcode"): "NO-BARCODE"})
        out = evolution.build().transform(old, shop_instance(old))
        assert out.class_sizes()["Product"] == 2
        barcodes = {out.attribute(p, "barcode")
                    for p in out.objects_of("Product")}
        assert barcodes == {"111", "NO-BARCODE"}

    def test_added_attribute_needs_default(self):
        diff = diff_schemas(old_schema(), parse_schema(NEW_MIXED))
        with pytest.raises(DiffError):
            diff.to_evolution()

    def test_added_attribute_with_default(self):
        old = old_schema()
        diff = diff_schemas(old, parse_schema(NEW_MIXED))
        evolution = diff.to_evolution(
            defaults={("Product", "in_stock"): True})
        out = evolution.build().transform(old, shop_instance(old))
        stocked = {out.attribute(p, "in_stock")
                   for p in out.objects_of("Product")}
        assert stocked == {True}

    def test_new_classes_rejected(self):
        new = parse_schema("""
            schema Shop {
              class Product = (sku: str, label: str, price: int,
                               barcode: {str}) key sku;
              class Vendor  = (name: str, city: str) key name;
              class Brand   = (name: str) key name;
            }
        """)
        diff = diff_schemas(old_schema(), new)
        with pytest.raises(DiffError):
            diff.to_evolution()
