"""Unit tests for the schema-evolution operator toolkit."""

import pytest

from repro.evolution import Evolution, EvolutionError
from repro.model import (INT, STR, Oid, Record, WolSet, isomorphic,
                         parse_schema)
from repro.model.instance import InstanceBuilder
from repro.morphase import Morphase
from repro.workloads import cities, persons


def library_schema():
    return parse_schema("""
        schema Library {
          class Book   = (title: str, author: Author,
                          isbn: {str}) key title;
          class Author = (name: str, born: int) key name;
        }
    """)


def library_instance(schema, with_isbn=True):
    builder = InstanceBuilder(schema.schema)
    author = builder.new("Author", Record.of(name="Woolf", born=1882))
    builder.new("Book", Record.of(
        title="Orlando", author=author,
        isbn=WolSet.of("978-1") if with_isbn else WolSet.of()))
    builder.new("Book", Record.of(
        title="The Waves", author=author, isbn=WolSet.of()))
    return builder.freeze()


class TestCopyClass:
    def test_identity_copy(self):
        schema = library_schema()
        evo = Evolution(schema, "V2")
        evo.copy_class("Author")
        result = evo.build()
        builder = InstanceBuilder(schema.schema)
        builder.new("Author", Record.of(name="Woolf", born=1882))
        out = result.transform(schema, builder.freeze())
        assert out.class_sizes() == {"Author": 1}
        (oid,) = out.objects_of("Author")
        assert out.attribute(oid, "name") == "Woolf"

    def test_rename_class_and_attribute(self):
        schema = library_schema()
        evo = Evolution(schema, "V2")
        evo.copy_class("Author", target_class="Writer",
                       renames={"born": "birth_year"})
        result = evo.build()
        assert result.target_schema.schema.attributes("Writer") == (
            "birth_year", "name")
        builder = InstanceBuilder(schema.schema)
        builder.new("Author", Record.of(name="Woolf", born=1882))
        out = result.transform(schema, builder.freeze())
        (oid,) = out.objects_of("Writer")
        assert out.attribute(oid, "birth_year") == 1882

    def test_drop_attribute(self):
        schema = library_schema()
        evo = Evolution(schema, "V2")
        evo.copy_class("Author", drops=["born"])
        result = evo.build()
        assert result.target_schema.schema.attributes("Author") == ("name",)

    def test_add_attribute_with_default(self):
        schema = library_schema()
        evo = Evolution(schema, "V2")
        evo.copy_class("Author", adds={"country": (STR, "unknown")})
        result = evo.build()
        builder = InstanceBuilder(schema.schema)
        builder.new("Author", Record.of(name="Woolf", born=1882))
        out = result.transform(schema, builder.freeze())
        (oid,) = out.objects_of("Author")
        assert out.attribute(oid, "country") == "unknown"

    def test_reference_rewired_through_keys(self):
        schema = library_schema()
        evo = Evolution(schema, "V2")
        evo.copy_class("Author", target_class="Writer")
        evo.copy_class("Book", drops=["isbn"],
                       renames={"author": "writer"})
        result = evo.build()
        out = result.transform(schema, library_instance(schema))
        (book, book2) = sorted(out.objects_of("Book"), key=str)
        writer = out.attribute(book, "writer")
        assert writer.class_name == "Writer"
        assert out.attribute(writer, "name") == "Woolf"

    def test_unknown_class_rejected(self):
        with pytest.raises(EvolutionError):
            Evolution(library_schema()).copy_class("Magazine")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(EvolutionError):
            Evolution(library_schema()).copy_class(
                "Author", drops=["publisher"])

    def test_unmapped_reference_rejected(self):
        schema = library_schema()
        evo = Evolution(schema)
        evo.copy_class("Book", drops=["isbn"])  # Author not copied
        with pytest.raises(EvolutionError):
            evo.build()


class TestMakeRequired:
    def test_delete_policy_drops_objects(self):
        schema = library_schema()
        evo = Evolution(schema, "V2")
        evo.copy_class("Author")
        evo.copy_class("Book")
        evo.make_required("Book", "isbn", policy="delete")
        result = evo.build()
        out = result.transform(schema, library_instance(schema))
        # Only Orlando has an isbn; The Waves is deleted.
        assert out.class_sizes()["Book"] == 1

    def test_default_policy_fills_value(self):
        schema = library_schema()
        evo = Evolution(schema, "V2")
        evo.copy_class("Author")
        evo.copy_class("Book")
        evo.make_required("Book", "isbn", policy="default",
                          default="unassigned")
        result = evo.build()
        assert result.defaults == {("Book", "isbn"): "unassigned"}
        out = result.transform(schema, library_instance(schema))
        assert out.class_sizes()["Book"] == 2
        isbns = {out.attribute(b, "isbn") for b in out.objects_of("Book")}
        assert isbns == {"978-1", "unassigned"}

    def test_default_policy_needs_value(self):
        schema = library_schema()
        evo = Evolution(schema)
        evo.copy_class("Book")
        with pytest.raises(EvolutionError):
            evo.make_required("Book", "isbn", policy="default")

    def test_scalar_attribute_rejected(self):
        schema = library_schema()
        evo = Evolution(schema)
        evo.copy_class("Book")
        with pytest.raises(EvolutionError):
            evo.make_required("Book", "title", policy="delete")

    def test_unknown_policy_rejected(self):
        schema = library_schema()
        evo = Evolution(schema)
        evo.copy_class("Book")
        with pytest.raises(EvolutionError):
            evo.make_required("Book", "isbn", policy="maybe")

    def test_requires_copy_first(self):
        schema = library_schema()
        evo = Evolution(schema)
        with pytest.raises(EvolutionError):
            evo.make_required("Book", "isbn", policy="delete")


class TestSplitAndReify:
    @staticmethod
    def _evolution():
        evo = Evolution(persons.person_schema(), "Evolved")
        evo.split_class("Person", "sex",
                        {"male": "Male", "female": "Female"})
        evo.reify_reference(
            "Person", "spouse", "Marriage",
            subject_target="Male", object_target="Female",
            subject_label="husband", object_label="wife",
            subject_filter=("sex", "male"),
            object_filter=("sex", "female"))
        return evo

    def test_regenerates_paper_example(self):
        """The operator-generated program computes the same result as the
        hand-written (T6)-(T8)."""
        result = self._evolution().build()
        hand_written = Morphase([persons.person_schema()],
                                persons.evolved_schema(),
                                persons.PROGRAM_TEXT)
        source = persons.sample_instance()
        assert isomorphic(
            result.transform(persons.person_schema(), source),
            hand_written.transform(source).target)

    def test_split_schema_shape(self):
        result = self._evolution().build()
        schema = result.target_schema.schema
        assert schema.class_names() == ("Female", "Male", "Marriage")
        assert schema.attributes("Male") == ("name",)
        assert schema.attributes("Marriage") == ("husband", "wife")

    def test_split_needs_variant_attribute(self):
        evo = Evolution(persons.person_schema())
        with pytest.raises(EvolutionError):
            evo.split_class("Person", "name", {"x": "X"})

    def test_split_unknown_label_rejected(self):
        evo = Evolution(persons.person_schema())
        with pytest.raises(EvolutionError):
            evo.split_class("Person", "sex", {"other": "Other"})

    def test_reify_needs_reference(self):
        evo = Evolution(persons.person_schema())
        with pytest.raises(EvolutionError):
            evo.reify_reference("Person", "name", "L", "A", "B")

    def test_asymmetric_instance_loses_information(self):
        """The operator-generated program inherits Example 4.2's
        information-loss behaviour on unconstrained sources."""
        result = self._evolution().build()
        source_schema = persons.person_schema()
        a = result.transform(source_schema, persons.asymmetric_instance())
        b = result.transform(source_schema,
                             persons.symmetric_variant_of_asymmetric())
        assert isomorphic(a, b)


class TestCitiesSubset:
    def test_copy_us_database(self):
        evo = Evolution(cities.us_schema(), "USv2")
        evo.copy_class("StateA", target_class="State")
        evo.copy_class("CityA", target_class="City",
                       renames={"state": "in_state"})
        result = evo.build()
        out = result.transform(cities.us_schema(),
                               cities.sample_us_instance())
        assert out.class_sizes() == {"City": 5, "State": 2}
        # Cross-references survive the copy through key-based rewiring.
        for city in out.objects_of("City"):
            state = out.attribute(city, "in_state")
            assert state.class_name == "State"
