"""Unit tests for the first-class instance delta model."""

import json

import pytest

from repro.evolution.delta import (Delta, DeltaError, compose_deltas,
                                   delta_between, delta_from_json,
                                   delta_to_json, dump_delta, load_delta)
from repro.io.json_io import instance_to_json
from repro.model import Record, WolSet, parse_schema
from repro.model.instance import InstanceBuilder
from repro.model.values import Oid

SCHEMA = parse_schema("""
schema Shop {
  class Product = (sku: str, label: str, price: int) key sku;
  class Vendor  = (name: str, products: {Product}) key name;
}
""")


def product(sku, label="thing", price=1):
    return Oid.keyed("Product", Record.of(sku=sku)), Record.of(
        sku=sku, label=label, price=price)


def base_instance():
    builder = InstanceBuilder(SCHEMA.schema)
    p1, v1 = product("S1", "Widget", 10)
    p2, v2 = product("S2", "Gadget", 20)
    builder.put(p1, v1)
    builder.put(p2, v2)
    builder.put(Oid.keyed("Vendor", Record.of(name="Acme")),
                Record.of(name="Acme", products=WolSet.of(p1, p2)))
    return builder.freeze()


class TestDeltaModel:
    def test_empty_delta(self):
        delta = Delta()
        assert delta.is_empty()
        assert delta.size() == 0
        assert delta.classes() == frozenset()

    def test_shape_accessors(self):
        p3, v3 = product("S3")
        p1, v1 = product("S1", "Widget v2", 11)
        p2, _ = product("S2")
        delta = Delta(inserts={"Product": {p3: v3}},
                      updates={"Product": {p1: v1}},
                      deletes={"Product": (p2,)})
        assert delta.size() == 3
        assert delta.classes() == frozenset({"Product"})
        assert set(delta.removed("Product")) == {p1, p2}
        assert set(delta.added("Product")) == {p1, p3}
        assert "1 insert(s), 1 update(s), 1 delete(s)" in delta.summary()

    def test_wrong_class_filing_rejected(self):
        p1, v1 = product("S1")
        with pytest.raises(DeltaError):
            Delta(inserts={"Vendor": {p1: v1}})

    def test_overlapping_groups_rejected(self):
        p1, v1 = product("S1")
        with pytest.raises(DeltaError):
            Delta(inserts={"Product": {p1: v1}},
                  deletes={"Product": (p1,)})

    def test_duplicate_deletes_rejected(self):
        p1, _ = product("S1")
        with pytest.raises(DeltaError):
            Delta(deletes={"Product": (p1, p1)})


class TestApplication:
    def test_apply_insert_update_delete(self):
        instance = base_instance()
        p3, v3 = product("S3", "New", 30)
        p1, v1_new = product("S1", "Widget v2", 12)
        p2, _ = product("S2")
        vendor = next(iter(instance.objects_of("Vendor")))
        vendor_value = Record.of(name="Acme", products=WolSet.of(p1, p3))
        delta = Delta(inserts={"Product": {p3: v3}},
                      updates={"Product": {p1: v1_new},
                               "Vendor": {vendor: vendor_value}},
                      deletes={"Product": (p2,)})
        updated = delta.apply_to(instance)
        assert updated.class_sizes() == {"Product": 2, "Vendor": 1}
        assert updated.value_of(p1) == v1_new
        assert updated.value_of(p3) == v3
        assert not updated.has_object(p2)
        # The original instance is untouched.
        assert instance.has_object(p2)
        assert instance.value_of(p1).get("price") == 10

    def test_insert_existing_rejected(self):
        p1, v1 = product("S1")
        with pytest.raises(DeltaError):
            Delta(inserts={"Product": {p1: v1}}).apply_to(base_instance())

    def test_delete_missing_rejected(self):
        p9, _ = product("S9")
        with pytest.raises(DeltaError):
            Delta(deletes={"Product": (p9,)}).apply_to(base_instance())

    def test_update_missing_rejected(self):
        p9, v9 = product("S9")
        with pytest.raises(DeltaError):
            Delta(updates={"Product": {p9: v9}}).apply_to(base_instance())

    def test_unknown_class_rejected(self):
        oid = Oid.keyed("Brand", "b")
        with pytest.raises(DeltaError):
            Delta(deletes={"Brand": (oid,)}).apply_to(base_instance())

    def test_changed_value_validation(self):
        p1, _ = product("S1")
        bad = Record.of(sku="S1", label="x")  # missing price
        with pytest.raises(DeltaError):
            Delta(updates={"Product": {p1: bad}}).apply_to(base_instance())

    def test_dangling_insert_reference_rejected(self):
        ghost, _ = product("S9")
        vendor = Oid.keyed("Vendor", Record.of(name="New"))
        value = Record.of(name="New", products=WolSet.of(ghost))
        with pytest.raises(DeltaError):
            Delta(inserts={"Vendor": {vendor: value}}).apply_to(
                base_instance())

    def test_invert_round_trip(self):
        instance = base_instance()
        p3, v3 = product("S3", "New", 30)
        p1, v1_new = product("S1", "Widget v2", 12)
        p2, _ = product("S2")
        vendor = next(iter(instance.objects_of("Vendor")))
        delta = Delta(inserts={"Product": {p3: v3}},
                      updates={"Product": {p1: v1_new},
                               "Vendor": {vendor: Record.of(
                                   name="Acme",
                                   products=WolSet.of(p1, p3))}},
                      deletes={"Product": (p2,)})
        updated = delta.apply_to(instance)
        restored = delta.invert(instance).apply_to(updated,
                                                   validate_changed=False)
        assert restored.valuations == instance.valuations


class TestDeltaBetween:
    def test_recovers_all_change_kinds(self):
        instance = base_instance()
        p3, v3 = product("S3")
        p1, v1_new = product("S1", "renamed", 10)
        p2, _ = product("S2")
        vendor = next(iter(instance.objects_of("Vendor")))
        original = Delta(inserts={"Product": {p3: v3}},
                         updates={"Product": {p1: v1_new},
                                  "Vendor": {vendor: Record.of(
                                      name="Acme",
                                      products=WolSet.of(p1, p3))}},
                         deletes={"Product": (p2,)})
        updated = original.apply_to(instance)
        recovered = delta_between(instance, updated)
        assert recovered.apply_to(instance).valuations \
            == updated.valuations
        assert set(recovered.deletes["Product"]) == {p2}
        assert recovered.inserts["Product"] == {p3: v3}
        assert set(recovered.updates["Product"]) == {p1}

    def test_identical_instances_give_empty_delta(self):
        instance = base_instance()
        assert delta_between(instance, instance).is_empty()


class TestJsonRoundTrip:
    def test_keyed_round_trip(self, tmp_path):
        instance = base_instance()
        p3, v3 = product("S3")
        p1, v1_new = product("S1", "v2", 99)
        p2, _ = product("S2")
        delta = Delta(inserts={"Product": {p3: v3}},
                      updates={"Product": {p1: v1_new}},
                      deletes={"Product": (p2,)})
        path = str(tmp_path / "delta.json")
        dump_delta(delta, path)
        loaded = load_delta(path)
        assert loaded == delta
        assert loaded.apply_to(instance).valuations \
            == delta.apply_to(instance).valuations

    def test_label_addressing_resolves_against_instance(self):
        schema = parse_schema(
            "schema S { class Item = (name: str) key name; }").schema
        builder = InstanceBuilder(schema)
        builder.new("Item", Record.of(name="b"))
        builder.new("Item", Record.of(name="a"))
        instance = builder.freeze()
        # Labels follow the dump order of instance_to_json.
        dumped = instance_to_json(instance)
        labels = [entry["id"]["label"] for entry in dumped["objects"]["Item"]]
        data = {"deletes": {"Item": [{"$oid": "Item", "label": labels[0]}]},
                "updates": {"Item": [{
                    "id": {"$oid": "Item", "label": labels[1]},
                    "value": {"$rec": {"name": "renamed"}}}]}}
        delta = delta_from_json(data, instance)
        updated = delta.apply_to(instance)
        assert updated.class_sizes() == {"Item": 1}
        remaining = next(iter(updated.objects_of("Item")))
        assert updated.value_of(remaining) == Record.of(name="renamed")

    def test_fresh_label_creates_new_object(self):
        schema = parse_schema(
            "schema S { class Item = (name: str) key name; }").schema
        builder = InstanceBuilder(schema)
        builder.new("Item", Record.of(name="a"))
        instance = builder.freeze()
        data = {"inserts": {"Item": [{
            "id": {"$oid": "Item", "label": "Item#new"},
            "value": {"$rec": {"name": "b"}}}]}}
        delta = delta_from_json(data, instance)
        assert delta.apply_to(instance).class_sizes() == {"Item": 2}

    def test_json_shape_is_sorted_and_stable(self):
        p1, v1 = product("S1")
        delta = Delta(updates={"Product": {p1: v1}})
        first = json.dumps(delta_to_json(delta), sort_keys=True)
        second = json.dumps(delta_to_json(delta), sort_keys=True)
        assert first == second

    def test_malformed_entry_rejected(self):
        with pytest.raises(DeltaError):
            delta_from_json({"inserts": {"Product": [{"value": 1}]}})
        with pytest.raises(DeltaError):
            delta_from_json({"deletes": {"Product": [{"no": "oid"}]}})

    def test_labels_survive_reload_across_serial_digit_boundary(
            self, tmp_path):
        # Loaded anonymous objects get fresh serials; with >= 10
        # objects the lexicographic order of the fresh serials can
        # differ from the dump's label order ('#100' sorts before
        # '#95').  The label mapping captured at load time must resolve
        # every label to the object the dump named — re-deriving it by
        # sorting the reloaded instance would permute.
        from repro.io.json_io import dump_instance, load_instance
        schema = parse_schema(
            "schema S { class Item = (name: str) key name; }").schema
        builder = InstanceBuilder(schema)
        for index in range(12):
            builder.new("Item", Record.of(name=f"n{index}"))
        instance = builder.freeze()
        path = str(tmp_path / "items.json")
        dump_instance(instance, path)

        dumped = instance_to_json(instance)
        label_to_name = {
            entry["id"]["label"]: entry["value"]["$rec"]["name"]
            for entry in dumped["objects"]["Item"]}

        labels = {}
        reloaded = load_instance(path, labels=labels)
        for label, name in label_to_name.items():
            data = {"updates": {"Item": [{
                "id": {"$oid": "Item", "label": label},
                "value": {"$rec": {"name": "changed"}}}]}}
            delta = delta_from_json(data, reloaded, labels=labels)
            (oid,) = next(iter(delta.updates["Item"].items()))[:1]
            assert reloaded.value_of(oid) == Record.of(name=name), (
                f"label {label} resolved to the wrong object")


class TestCompose:
    """compose_deltas(a, b).apply_to(i) == b.apply_to(a.apply_to(i))."""

    def check(self, first, second):
        instance = base_instance()
        sequential = second.apply_to(first.apply_to(instance))
        composed = compose_deltas(first, second)
        assert delta_between(composed.apply_to(instance),
                             sequential).is_empty()
        return composed

    def test_insert_then_update_collapses_to_insert(self):
        oid, value = product("S9", "New", 5)
        first = Delta(inserts={"Product": {oid: value}})
        second = Delta(updates={"Product": {
            oid: value.with_field("price", 6)}})
        composed = self.check(first, second)
        assert oid in composed.inserts["Product"]
        assert not composed.updates

    def test_insert_then_delete_cancels(self):
        oid, value = product("S9")
        composed = self.check(
            Delta(inserts={"Product": {oid: value}}),
            Delta(deletes={"Product": (oid,)}))
        assert composed.is_empty()

    def test_update_then_update_last_wins(self):
        oid, value = product("S1", "Widget", 11)
        composed = self.check(
            Delta(updates={"Product": {oid: value}}),
            Delta(updates={"Product": {
                oid: value.with_field("price", 12)}}))
        assert composed.updates["Product"][oid].get("price") == 12

    def test_update_then_delete_is_delete(self):
        oid, value = product("S1", "Widget", 11)
        vendor = Oid.keyed("Vendor", Record.of(name="Acme"))
        p2, _ = product("S2")
        composed = compose_deltas(
            Delta(updates={"Product": {oid: value},
                           "Vendor": {vendor: Record.of(
                               name="Acme",
                               products=WolSet.of(p2))}}),
            Delta(deletes={"Product": (oid,)}))
        assert composed.deletes == {"Product": (oid,)}
        assert oid not in composed.updates.get("Product", {})
        instance = base_instance()
        assert delta_between(
            composed.apply_to(instance),
            Delta(deletes={"Product": (oid,)}).apply_to(
                Delta(updates={"Product": {oid: value},
                               "Vendor": {vendor: Record.of(
                                   name="Acme",
                                   products=WolSet.of(p2))}}
                      ).apply_to(instance))).is_empty()

    def test_delete_then_reinsert_is_update(self):
        oid, value = product("S1", "Reborn", 99)
        vendor = Oid.keyed("Vendor", Record.of(name="Acme"))
        p2, _ = product("S2")
        drop_ref = Delta(
            deletes={"Product": (oid,)},
            updates={"Vendor": {vendor: Record.of(
                name="Acme", products=WolSet.of(p2))}})
        composed = self.check(
            drop_ref, Delta(inserts={"Product": {oid: value}}))
        assert composed.updates["Product"][oid] == value
        assert not composed.deletes

    def test_invalid_sequences_refuse(self):
        oid, value = product("S1")
        present = Delta(updates={"Product": {oid: value}})
        with pytest.raises(DeltaError, match="still present"):
            compose_deltas(present,
                           Delta(inserts={"Product": {oid: value}}))
        gone = Delta(deletes={"Product": (oid,)})
        with pytest.raises(DeltaError, match="deleted by the first"):
            compose_deltas(gone,
                           Delta(updates={"Product": {oid: value}}))
        with pytest.raises(DeltaError, match="deleted by both"):
            compose_deltas(gone, Delta(deletes={"Product": (oid,)}))

    def test_disjoint_classes_union(self):
        p9, v9 = product("S9")
        vendor = Oid.keyed("Vendor", Record.of(name="Bmce"))
        composed = self.check(
            Delta(inserts={"Product": {p9: v9}}),
            Delta(inserts={"Vendor": {vendor: Record.of(
                name="Bmce", products=WolSet.of(p9))}}))
        assert set(composed.inserts) == {"Product", "Vendor"}
