"""AST round-trips: text DSL ⇄ canonical JSON AST ⇄ text.

The canonical JSON AST is the wire format; the text DSL is a
serialisation of it.  These tests pin the round-trip contract both on
hand-written programs and on hypothesis-generated ones, plus the
strictness of :meth:`QueryProgram.from_json` (it must reject anything
it would not itself emit).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.program import (PROGRAM_VERSION, DifferenceOp, IntersectOp,
                           LimitOp, ProgramParseError, ProjectOp, QueryOp,
                           QueryProgram, Statement, UnionOp, format_program,
                           format_statement, parse_program_text)

CANONICAL_TEXT = """program capitals;

caps = query { N | X in CityE, X.is_capital = true, N = X.name };
alln = query { N | X in CityE, N = X.name };
rest = difference alln, caps;
both = union caps, rest;
pair = intersect alln, both;
name = project pair -> N;
top = limit name 3;
"""


class TestTextRoundTrip:
    def test_parse_format_is_identity_on_canonical_text(self):
        program = parse_program_text(CANONICAL_TEXT)
        assert format_program(program) == CANONICAL_TEXT

    def test_format_parse_is_identity_on_ast(self):
        program = parse_program_text(CANONICAL_TEXT)
        assert parse_program_text(format_program(program)) == program

    def test_comments_and_whitespace_are_immaterial(self):
        noisy = """
        -- a comment
        program capitals;   # another comment
        caps = query { N | X in CityE, X.is_capital = true, N = X.name };
          alln=query { N | X in CityE, N = X.name }   ;
        rest = difference   alln ,caps;
        both = union caps, rest;
        pair = intersect alln, both;
        name = project pair ->N;
        top = limit name   3;
        """
        assert parse_program_text(noisy) \
            == parse_program_text(CANONICAL_TEXT)

    def test_statement_named_program_is_not_a_header(self):
        parsed = parse_program_text("program = query { X in CityE };")
        assert parsed.name is None
        assert parsed.statement_names() == ("program",)

    def test_star_projection_means_all_variables(self):
        parsed = parse_program_text(
            "a = query { * | X in CityE, N = X.name };")
        assert parsed.statements[0].op == QueryOp(
            body="X in CityE, N = X.name", project=())

    def test_nested_braces_scan_to_balance(self):
        parsed = parse_program_text(
            "a = query { X in CityE, S = {1, 2} };")
        assert parsed.statements[0].op.body == "X in CityE, S = {1, 2}"

    @pytest.mark.parametrize("text", [
        "x = ;",                          # missing operator
        "x = query { unterminated ;",     # unbalanced brace
        "x = frobnicate a, b;",           # unknown operator
        "x = difference a;",              # wrong arity
        "x = difference a, b, c;",
        "x = project a -> ;",             # empty projection
        "x = limit a;",                   # missing count
        "x = query { a | b | c };" * 0 + "x = union;",  # empty inputs
        "= query { X in CityE };",        # missing name
        "x = query { X in CityE }",       # missing terminator
    ])
    def test_malformed_text_raises_parse_error(self, text):
        with pytest.raises(ProgramParseError):
            parse_program_text(text)

    def test_parse_errors_carry_line_numbers(self):
        with pytest.raises(ProgramParseError, match="line 3"):
            parse_program_text(
                "a = query { X in CityE };\n\nb = nonsense a;\n")


class TestJsonRoundTrip:
    def test_to_json_from_json_is_identity(self):
        program = parse_program_text(CANONICAL_TEXT)
        assert QueryProgram.from_json(program.to_json()) == program

    def test_json_survives_serialisation(self):
        program = parse_program_text(CANONICAL_TEXT)
        wire = json.dumps(program.to_json(), sort_keys=True)
        assert QueryProgram.from_json(json.loads(wire)) == program

    def test_canonical_shape(self):
        program = parse_program_text(
            "caps = query { N | X in CityE, N = X.name };\n"
            "top = limit caps 2;")
        assert program.to_json() == {
            "version": PROGRAM_VERSION,
            "statements": [
                {"name": "caps", "op": "query",
                 "body": "X in CityE, N = X.name", "project": ["N"]},
                {"name": "top", "op": "limit", "input": "caps",
                 "count": 2},
            ]}

    @pytest.mark.parametrize("document", [
        "not an object",
        {"version": PROGRAM_VERSION},                      # no statements
        {"version": 99, "statements": []},                 # bad version
        {"statements": []},                                # no version
        {"version": PROGRAM_VERSION, "statements": {}},    # wrong type
        {"version": PROGRAM_VERSION, "statements": [],
         "extra": 1},                                      # unknown field
        {"version": PROGRAM_VERSION, "name": 7,
         "statements": []},                                # bad name type
        {"version": PROGRAM_VERSION, "statements": ["x"]},
        {"version": PROGRAM_VERSION, "statements": [
            {"name": "a", "op": "frobnicate"}]},           # unknown op
        {"version": PROGRAM_VERSION, "statements": [
            {"name": "a", "op": "query"}]},                # missing body
        {"version": PROGRAM_VERSION, "statements": [
            {"name": "a", "op": "query", "body": "X in C",
             "count": 3}]},                                # field of other op
        {"version": PROGRAM_VERSION, "statements": [
            {"name": "a", "op": "limit", "input": "b",
             "count": True}]},                             # bool as int
        {"version": PROGRAM_VERSION, "statements": [
            {"name": "a", "op": "difference",
             "inputs": ["b"]}]},                           # wrong arity
        {"version": PROGRAM_VERSION, "statements": [
            {"name": "a", "op": "union", "inputs": "b"}]},
    ])
    def test_from_json_rejects_drift(self, document):
        with pytest.raises(ProgramParseError):
            QueryProgram.from_json(document)


# ----------------------------------------------------------------------
# Property: random programs round-trip through both forms
# ----------------------------------------------------------------------

_names = st.sampled_from(
    ["a", "b", "c", "caps", "alln", "rest", "top", "x_1", "_tmp"])
_bodies = st.sampled_from([
    "X in CityE, N = X.name",
    "X in CityE, X.is_capital = true, N = X.name",
    "C in CountryE, N = C.name, L = C.language",
    "X in CityE, C = X.country, N = C.name",
])
_ops = st.one_of(
    st.tuples(_bodies,
              st.lists(st.sampled_from(["N", "X", "C", "L"]),
                       max_size=2, unique=True)).map(
        lambda pair: QueryOp(body=pair[0], project=tuple(pair[1]))),
    st.lists(_names, min_size=1, max_size=3).map(
        lambda names: UnionOp(sources=tuple(names))),
    st.lists(_names, min_size=1, max_size=3).map(
        lambda names: IntersectOp(sources=tuple(names))),
    st.tuples(_names, _names).map(
        lambda pair: DifferenceOp(left=pair[0], right=pair[1])),
    st.tuples(_names, st.lists(st.sampled_from(["N", "X", "C"]),
                               min_size=1, max_size=2, unique=True)).map(
        lambda pair: ProjectOp(source=pair[0],
                               columns=tuple(pair[1]))),
    st.tuples(_names, st.integers(min_value=-3, max_value=40)).map(
        lambda pair: LimitOp(source=pair[0], count=pair[1])),
)
_programs = st.builds(
    lambda name, pairs: QueryProgram(
        statements=tuple(Statement(name=n, op=op) for n, op in pairs),
        name=name),
    st.one_of(st.none(), _names),
    st.lists(st.tuples(_names, _ops), max_size=6))


class TestRoundTripProperty:
    @settings(max_examples=200, deadline=None)
    @given(_programs)
    def test_text_and_json_round_trips(self, program):
        """parse(format(p)) == p and from_json(to_json(p)) == p.

        Holds for *every* structurally well-formed program — including
        ones static validation would reject (forward references, bad
        arity): serialisation is independent of validity.
        """
        assert parse_program_text(format_program(program)) == program
        assert QueryProgram.from_json(program.to_json()) == program

    @settings(max_examples=50, deadline=None)
    @given(_programs)
    def test_format_is_canonical(self, program):
        """Formatting is a fixed point: format(parse(format(p))) is
        format(p), and each statement renders on one line."""
        rendered = format_program(program)
        assert format_program(parse_program_text(rendered)) == rendered
        for statement in program.statements:
            assert format_statement(statement).endswith(";")
            assert "\n" not in format_statement(statement)
