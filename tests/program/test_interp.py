"""Program execution semantics, pinned differentially.

The oracle for every ``query`` statement is the batch
:class:`repro.query.Query` API run through the *dynamic* matcher; the
oracle for set algebra is plain Python set algebra over the oracle
rows.  The interpreter must agree byte-for-byte — across columnar vs
scalar execution and sharded vs sequential plans (the canonical row
order makes those equalities exact, not just set-equal).
"""

import json

import pytest

from repro.io.json_io import dump_oid_encoder, value_to_json
from repro.program import (ProgramError, compile_program,
                           parse_program_text, run_compiled, run_program)
from repro.query.query import Query
from repro.workloads import cities, genome

PROGRAM_TEXT = """
caps = query { N | X in CityE, X.is_capital = true, N = X.name };
alln = query { N | X in CityE, N = X.name };
rest = difference alln, caps;
both = union caps, rest;
some = intersect alln, both;
top = limit some 3;
"""


@pytest.fixture(scope="module")
def euro():
    return cities.sample_euro_instance()


def oracle_rows(instance, text):
    """Canonical row set via the *dynamic* batch Query API."""
    encoder = dump_oid_encoder(instance)
    query = Query.parse(text, classes=instance.schema.class_names())
    keyed = {}
    for row in query.run(instance):
        encoded = {name: value_to_json(value, encoder)
                   for name, value in row.items()}
        keyed.setdefault(json.dumps(encoded, sort_keys=True), encoded)
    return [keyed[key] for key in sorted(keyed)]


class TestQueryStatements:
    def test_single_query_matches_batch_oracle(self, euro):
        result = run_program(
            parse_program_text(
                "caps = query { N | X in CityE, X.is_capital = true, "
                "N = X.name };"),
            euro)
        assert list(result.result.rows) == oracle_rows(
            euro, "N | X in CityE, X.is_capital = true, N = X.name")

    def test_join_query_matches_batch_oracle(self, euro):
        body = ("N, L | X in CityE, C = X.country, N = X.name, "
                "L = C.language")
        result = run_program(
            parse_program_text(f"j = query {{ {body} }};"), euro)
        assert result.result.columns == ("N", "L")
        assert list(result.result.rows) == oracle_rows(euro, body)

    def test_columnar_and_scalar_agree(self, euro):
        program = parse_program_text(PROGRAM_TEXT)
        vectorized = run_program(program, euro, columnar=True)
        scalar = run_program(program, euro, columnar=False)
        assert vectorized.result == scalar.result
        for name in program.statement_names():
            assert vectorized.sets[name] == scalar.sets[name]

    def test_sharded_equals_sequential(self, euro):
        program = parse_program_text(PROGRAM_TEXT)
        sequential = run_program(program, euro)
        for shards in (2, 3, 7):
            sharded = run_program(program, euro, shards=shards)
            assert sharded.result == sequential.result, shards

    def test_invalid_shard_count_rejected(self, euro):
        program = parse_program_text("a = query { X in CityE };")
        with pytest.raises(ProgramError):
            run_program(program, euro, shards=0)

    def test_rows_are_duplicate_free_and_canonically_ordered(self, euro):
        # Projecting away the distinguishing column forces duplicates
        # at the binding level; the result set must collapse them.
        result = run_program(
            parse_program_text(
                "l = query { L | C in CountryE, L = C.language };"),
            euro)
        keys = [json.dumps(row, sort_keys=True)
                for row in result.result.rows]
        assert keys == sorted(set(keys))


class TestSetAlgebra:
    def test_algebra_matches_python_set_oracle(self, euro):
        program = parse_program_text(PROGRAM_TEXT)
        outcome = run_program(program, euro)
        caps = {json.dumps(r, sort_keys=True) for r in oracle_rows(
            euro, "N | X in CityE, X.is_capital = true, N = X.name")}
        alln = {json.dumps(r, sort_keys=True) for r in oracle_rows(
            euro, "N | X in CityE, N = X.name")}
        assert set(outcome.sets["rest"].keys()) == alln - caps
        assert set(outcome.sets["both"].keys()) == caps | (alln - caps)
        assert set(outcome.sets["some"].keys()) == alln & (caps | alln)
        assert list(outcome.sets["top"].keys()) \
            == list(outcome.sets["some"].keys())[:3]

    def test_project_drops_columns_and_duplicates(self, euro):
        outcome = run_program(parse_program_text(
            "a = query { N, L | C in CountryE, N = C.name, "
            "L = C.language };\n"
            "b = project a -> L;"), euro)
        expected = sorted({json.dumps({"L": row["L"]}, sort_keys=True)
                           for row in outcome.sets["a"].rows})
        assert list(outcome.sets["b"].keys()) == expected
        assert outcome.sets["b"].columns == ("L",)

    def test_limit_is_prefix_of_canonical_order(self, euro):
        outcome = run_program(parse_program_text(
            "a = query { N | X in CityE, N = X.name };\n"
            "b = limit a 2;"), euro)
        assert list(outcome.sets["b"].rows) \
            == list(outcome.sets["a"].rows)[:2]

    def test_limit_beyond_size_is_whole_set(self, euro):
        outcome = run_program(parse_program_text(
            "a = query { N | X in CityE, N = X.name };\n"
            "b = limit a 9999;"), euro)
        assert outcome.sets["b"].rows == outcome.sets["a"].rows


class TestCompiledPrograms:
    def test_shared_pool_is_reused_across_statements(self, euro):
        program = parse_program_text(PROGRAM_TEXT)
        compiled = compile_program(program, euro)
        assert compiled.prebuilt_indexes >= 1
        outcome = run_compiled(compiled, euro)
        assert outcome.result.rows  # executed through the shared pool

    def test_traces_expose_execution_shape(self, euro):
        program = parse_program_text(PROGRAM_TEXT)
        outcome = run_program(program, euro)
        by_name = {trace.name: trace for trace in outcome.traces}
        assert by_name["caps"].planned and by_name["caps"].columnar
        assert by_name["rest"].op == "difference"
        document = outcome.to_json()
        assert document["result"] == "top"
        assert [t["name"] for t in document["statements"]] \
            == list(program.statement_names())

    def test_explain_is_stable(self, euro):
        program = parse_program_text(PROGRAM_TEXT)
        first = compile_program(program, euro).explain()
        second = compile_program(program, euro).explain()
        assert first == second
        assert "planned" in first and "difference" in first

    def test_keyed_source_instance(self):
        """Programs run over keyed instances too (genome sources)."""
        instance = genome.source_instance()
        body = "S | G in Sequence, S = G.name"
        outcome = run_program(
            parse_program_text(f"names = query {{ {body} }};\n"
                               f"top = limit names 5;"),
            instance)
        assert list(outcome.sets["names"].rows) \
            == oracle_rows(instance, body)
