"""One firing test per WOL5xx code — the program validator's vocabulary.

Mirrors ``tests/analysis/test_passes.py``: each test presents the
smallest program that trips exactly the code under test and asserts the
diagnostic anchors to the right statement.  The registry drift test
over there reads this file, so every WOL5xx code must appear quoted
here.
"""

import pytest

from repro.program import (MAX_STATEMENTS, ProgramValidationError,
                           check_program, parse_program_text,
                           validate_program, validate_text)
from repro.workloads import cities

CLASSES = ("CityE", "CountryE")


def validate(text):
    return validate_program(parse_program_text(text), classes=CLASSES)


def has(report, code, clause=None):
    for diagnostic in report.diagnostics:
        if diagnostic.code == code and (clause is None
                                        or diagnostic.clause == clause):
            return diagnostic
    raise AssertionError(
        f"expected {code} ({clause or 'any statement'}); got "
        f"{[str(d) for d in report.diagnostics]}")


class TestBoundsAndNames:
    def test_wol500_parse_error_as_report(self):
        report = validate_text("x = nonsense a;", classes=CLASSES)
        assert has(report, "WOL500")
        assert not report.ok

    def test_wol501_empty_program(self):
        report = validate("")
        assert has(report, "WOL501")

    def test_wol501_over_statement_limit(self):
        text = "a0 = query { X in CityE };\n" + "\n".join(
            f"a{i} = union a0, a0;" for i in range(1, MAX_STATEMENTS + 1))
        report = validate(text)
        assert has(report, "WOL501")

    def test_wol502_duplicate_statement_name(self):
        report = validate(
            "a = query { X in CityE };\n"
            "a = query { X in CountryE };")
        found = has(report, "WOL502", clause="a")
        assert found.clause_index == 1

    def test_wol503_undefined_reference(self):
        report = validate(
            "a = query { X in CityE };\n"
            "b = union a, ghost;")
        assert has(report, "WOL503", clause="b")

    def test_wol503_forward_and_self_references_rejected(self):
        report = validate(
            "a = union a, b;\n"
            "b = query { X in CityE };")
        found = has(report, "WOL503", clause="a")
        assert found.clause_index == 0
        assert "earlier" in found.message


class TestQueryBodies:
    def test_wol504_unparsable_body(self):
        report = validate("a = query { X in in };")
        assert has(report, "WOL504", clause="a")

    def test_wol504_not_range_restricted(self):
        report = validate("a = query { N = X.name };")
        found = has(report, "WOL504", clause="a")
        assert "range-restricted" in found.message

    def test_wol504_unknown_projection_variable(self):
        report = validate("a = query { Z | X in CityE, N = X.name };")
        assert has(report, "WOL504", clause="a")


class TestAlgebra:
    def test_wol505_column_mismatch(self):
        report = validate(
            "a = query { N | X in CityE, N = X.name };\n"
            "b = query { X in CountryE };\n"
            "c = union a, b;")
        found = has(report, "WOL505", clause="c")
        assert found.suggestion is not None

    def test_wol506_unknown_projection_column(self):
        report = validate(
            "a = query { N | X in CityE, N = X.name };\n"
            "b = project a -> Z;")
        assert has(report, "WOL506", clause="b")

    def test_wol507_negative_limit(self):
        report = validate(
            "a = query { X in CityE };\n"
            "b = limit a -1;")
        assert has(report, "WOL507", clause="b")

    def test_wol508_unused_statement_is_a_warning(self):
        report = validate(
            "a = query { X in CityE };\n"
            "b = query { X in CountryE };\n"
            "c = limit b 1;")
        found = has(report, "WOL508", clause="a")
        assert found.severity == "warning"
        assert report.ok  # warnings do not block execution

    def test_result_statement_is_never_unused(self):
        report = validate("a = query { X in CityE };")
        assert report.diagnostics == []


class TestCheckProgram:
    def test_clean_program_passes(self):
        program = parse_program_text(
            "caps = query { N | X in CityE, X.is_capital = true, "
            "N = X.name };\n"
            "alln = query { N | X in CityE, N = X.name };\n"
            "rest = difference alln, caps;")
        report = check_program(program, classes=CLASSES)
        assert report.ok

    def test_errors_raise_with_report_attached(self):
        program = parse_program_text("b = union a, a;")
        with pytest.raises(ProgramValidationError) as info:
            check_program(program, classes=CLASSES)
        assert any(d.code == "WOL503"
                   for d in info.value.report.errors())

    def test_compile_refuses_invalid_programs(self):
        from repro.program import compile_program
        instance = cities.sample_euro_instance()
        program = parse_program_text("b = limit ghost 3;")
        with pytest.raises(ProgramValidationError):
            compile_program(program, instance)

    def test_without_classes_structure_still_checked(self):
        report = validate_program(
            parse_program_text("a = query { X in Anything };\n"
                               "b = union a, ghost;"))
        assert has(report, "WOL503", clause="b")
