"""Shared hypothesis strategies for property-based tests."""

from __future__ import annotations

import string

from hypothesis import strategies as st

from repro.lang.ast import (Clause, Const, EqAtom, InAtom, LeqAtom, LtAtom,
                            MemberAtom, NeqAtom, Proj, RecordTerm,
                            SkolemTerm, Var, VariantTerm)
from repro.model import (BOOL, INT, STR, BaseType, Record, UNIT_VALUE,
                         Variant, WolList, WolSet, record, set_of, variant)

# ----------------------------------------------------------------------
# Identifiers
# ----------------------------------------------------------------------

_LOWER = string.ascii_lowercase

label_names = st.text(_LOWER, min_size=1, max_size=6)
var_names = st.sampled_from(
    ["X", "Y", "Z", "N", "M", "V", "W", "P", "Q", "R"])
class_names = st.sampled_from(["CityE", "CountryE", "CityT", "CountryT"])
attr_names = st.sampled_from(["name", "language", "currency", "country",
                              "is_capital", "place", "capital"])

# ----------------------------------------------------------------------
# Values
# ----------------------------------------------------------------------

base_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(_LOWER, max_size=8),
    st.booleans(),
    st.just(UNIT_VALUE),
)


def values(max_depth: int = 3):
    """Arbitrary WOL values (no oids: those need an instance context)."""
    return st.recursive(
        base_values,
        lambda children: st.one_of(
            st.lists(st.tuples(label_names, children), max_size=3,
                     unique_by=lambda item: item[0]).map(
                         lambda fields: Record(tuple(fields))),
            st.tuples(label_names, children).map(
                lambda pair: Variant(pair[0], pair[1])),
            st.lists(children, max_size=3).map(
                lambda items: WolList(tuple(items))),
            st.lists(children, max_size=3).map(
                lambda items: WolSet(frozenset(items))),
        ),
        max_leaves=8)


# ----------------------------------------------------------------------
# Types (ground, bounded depth)
# ----------------------------------------------------------------------

base_types = st.sampled_from([INT, STR, BOOL])


def types(max_depth: int = 3):
    return st.recursive(
        base_types,
        lambda children: st.one_of(
            st.lists(st.tuples(label_names, children), min_size=1,
                     max_size=3,
                     unique_by=lambda item: item[0]).map(
                         lambda fields: record(**dict(fields))),
            st.lists(st.tuples(label_names, children), min_size=1,
                     max_size=3,
                     unique_by=lambda item: item[0]).map(
                         lambda choices: variant(**dict(choices))),
            children.map(set_of),
        ),
        max_leaves=6)


# ----------------------------------------------------------------------
# Terms and clauses
# ----------------------------------------------------------------------

constants = st.one_of(
    st.integers(min_value=-99, max_value=99).map(Const),
    st.text(_LOWER, max_size=6).map(Const),
    st.booleans().map(Const),
)


def terms(max_depth: int = 3):
    return st.recursive(
        st.one_of(var_names.map(Var), constants),
        lambda children: st.one_of(
            st.tuples(children, attr_names).map(
                lambda pair: Proj(pair[0], pair[1])),
            st.tuples(label_names, children).map(
                lambda pair: VariantTerm(pair[0], pair[1])),
            st.lists(st.tuples(label_names, children), min_size=1,
                     max_size=3,
                     unique_by=lambda item: item[0]).map(
                         lambda fields: RecordTerm(tuple(fields))),
            st.tuples(class_names,
                      st.lists(children, min_size=1, max_size=3)).map(
                          lambda pair: SkolemTerm(
                              pair[0],
                              tuple((None, arg) for arg in pair[1]))),
        ),
        max_leaves=6)


def atoms():
    term = terms()
    return st.one_of(
        st.tuples(term, class_names).map(
            lambda pair: MemberAtom(pair[0], pair[1])),
        st.tuples(term, term).map(lambda pair: EqAtom(*pair)),
        st.tuples(term, term).map(lambda pair: NeqAtom(*pair)),
        st.tuples(term, term).map(lambda pair: LtAtom(*pair)),
        st.tuples(term, term).map(lambda pair: LeqAtom(*pair)),
        st.tuples(term, term).map(lambda pair: InAtom(*pair)),
    )


def clauses():
    return st.tuples(
        st.lists(atoms(), min_size=1, max_size=4),
        st.lists(atoms(), max_size=4),
    ).map(lambda pair: Clause(tuple(pair[0]), tuple(pair[1])))
