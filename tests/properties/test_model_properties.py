"""Property-based tests for the data model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (Oid, Record, check_value, isomorphic, map_oids,
                         oids_in, parse_type, rename_oids)
from repro.model.values import ValueError_

from .strategies import types, values


class TestTypeProperties:
    @given(types())
    @settings(max_examples=200)
    def test_type_str_roundtrip(self, ty):
        assert parse_type(str(ty)) == ty

    @given(types())
    @settings(max_examples=200)
    def test_ground_types_are_ground(self, ty):
        assert ty.is_ground()

    @given(types())
    @settings(max_examples=200)
    def test_walk_includes_self(self, ty):
        assert next(iter(ty.walk())) is ty


class TestValueProperties:
    @given(values())
    @settings(max_examples=200)
    def test_values_hashable_and_self_equal(self, value):
        hash(value)
        assert value == value

    @given(values())
    @settings(max_examples=200)
    def test_no_oids_without_context(self, value):
        assert list(oids_in(value)) == []

    @given(values())
    @settings(max_examples=200)
    def test_map_oids_identity_on_oid_free_values(self, value):
        a, b = Oid.fresh("A"), Oid.fresh("A")
        assert map_oids(value, {a: b}) == value


class TestIsomorphismProperties:
    @staticmethod
    def _ring(names):
        from repro.model import InstanceBuilder, Schema, record, STR, ClassType
        schema = Schema.of(
            "R", Node=record(name=STR, next=ClassType("Node")))
        builder = InstanceBuilder(schema)
        oids = [Oid.fresh("Node") for _ in names]
        for index, name in enumerate(names):
            builder.put(oids[index], Record.of(
                name=name, next=oids[(index + 1) % len(names)]))
        return builder.freeze()

    @given(st.lists(st.text("ab", max_size=2), min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_renaming_is_isomorphic(self, names):
        instance = self._ring(names)
        mapping = {oid: Oid.fresh("Node") for oid in instance.all_oids()}
        assert isomorphic(instance, rename_oids(instance, mapping))

    @given(st.lists(st.text("ab", max_size=2), min_size=1, max_size=4),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_rotation_is_isomorphic(self, names, shift):
        instance = self._ring(names)
        rotated = self._ring(names[shift % len(names):]
                             + names[:shift % len(names)])
        assert isomorphic(instance, rotated)

    @given(st.lists(st.text("ab", max_size=2), min_size=2, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_different_sizes_never_isomorphic(self, names):
        assert not isomorphic(self._ring(names), self._ring(names[:-1]))
