"""Property-based tests for the language layer."""

from hypothesis import given, settings

from repro.lang import parse_atom, parse_clause, parse_term
from repro.lang.ast import InAtom, MemberAtom, Var
from repro.lang.pretty import format_clause

from .strategies import atoms, clauses, terms

CLASSES = ["CityE", "CountryE", "CityT", "CountryT"]


def _normalise_memberships(atom):
    """Parsing maps ``X in V`` (bare var) to a MemberAtom; mirror that."""
    if isinstance(atom, InAtom) and isinstance(atom.collection, Var):
        if atom.collection.name in CLASSES:
            return MemberAtom(atom.element, atom.collection.name)
        return atom
    return atom


class TestParserRoundtrips:
    @given(terms())
    @settings(max_examples=200)
    def test_term_roundtrip(self, term):
        assert parse_term(str(term)) == term

    @given(atoms())
    @settings(max_examples=200)
    def test_atom_roundtrip(self, atom):
        expected = _normalise_memberships(atom)
        assert parse_atom(str(atom), classes=CLASSES) == expected

    @given(clauses())
    @settings(max_examples=100)
    def test_clause_roundtrip(self, clause):
        expected_head = tuple(_normalise_memberships(a)
                              for a in clause.head)
        expected_body = tuple(_normalise_memberships(a)
                              for a in clause.body)
        reparsed = parse_clause(str(clause), classes=CLASSES)
        assert reparsed.head == expected_head
        assert reparsed.body == expected_body

    @given(clauses())
    @settings(max_examples=100)
    def test_pretty_format_roundtrip(self, clause):
        reparsed = parse_clause(format_clause(clause), classes=CLASSES)
        expected_head = tuple(_normalise_memberships(a)
                              for a in clause.head)
        expected_body = tuple(_normalise_memberships(a)
                              for a in clause.body)
        assert reparsed.head == expected_head
        assert reparsed.body == expected_body


class TestSubstitutionProperties:
    @given(clauses())
    @settings(max_examples=100)
    def test_rename_apart_preserves_shape(self, clause):
        renamed = clause.rename_apart(clause.variables())
        assert len(renamed.head) == len(clause.head)
        assert len(renamed.body) == len(clause.body)
        assert len(renamed.variables()) == len(clause.variables())

    @given(clauses())
    @settings(max_examples=100)
    def test_identity_substitution(self, clause):
        assert clause.substitute({}) == clause

    @given(terms())
    @settings(max_examples=200)
    def test_variables_of_substituted_term(self, term):
        renamed = term.rename({name: name + "_r"
                               for name in term.variables()})
        assert renamed.variables() == frozenset(
            name + "_r" for name in term.variables())
