"""Property-based tests over the whole compilation/execution pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import isomorphic
from repro.morphase import Morphase
from repro.normalization import (clause_signature, congruence_of,
                                 is_snf_clause, snf_clause, Unsatisfiable)
from repro.semantics import Matcher
from repro.workloads import cities, persons

from .strategies import clauses


@pytest.fixture(scope="module")
def city_morphase():
    return Morphase([cities.us_schema(), cities.euro_schema()],
                    cities.target_schema(), cities.PROGRAM_TEXT)


class TestSnfProperties:
    @given(clauses())
    @settings(max_examples=150)
    def test_snf_produces_snf(self, clause):
        from repro.normalization.snf import SnfError
        try:
            out = snf_clause(clause)
        except SnfError:
            return  # e.g. projections off constants: legitimately rejected
        assert is_snf_clause(out)

    @given(clauses())
    @settings(max_examples=150)
    def test_snf_idempotent(self, clause):
        from repro.normalization.snf import SnfError
        try:
            once = snf_clause(clause)
        except SnfError:
            return
        twice = snf_clause(once)
        assert set(twice.head) == set(once.head)
        assert set(twice.body) == set(once.body)

    @given(clauses())
    @settings(max_examples=150)
    def test_signature_invariant_under_renaming(self, clause):
        from repro.normalization.snf import SnfError
        try:
            out = snf_clause(clause)
        except SnfError:
            return
        renamed = out.rename({name: f"rv_{index}" for index, name in
                              enumerate(sorted(out.variables()))})
        assert clause_signature(out) == clause_signature(renamed)


class TestCongruenceProperties:
    @given(clauses(), st.randoms())
    @settings(max_examples=100)
    def test_order_independence(self, clause, rng):
        from repro.normalization.snf import SnfError
        try:
            out = snf_clause(clause)
        except SnfError:
            return
        atoms = list(out.body)
        shuffled = list(atoms)
        rng.shuffle(shuffled)
        try:
            first = congruence_of(atoms)
        except Unsatisfiable:
            with pytest.raises(Unsatisfiable):
                congruence_of(shuffled)
            return
        second = congruence_of(shuffled)
        variables = sorted(out.variables())
        from repro.lang.ast import Var
        for i, left in enumerate(variables):
            for right in variables[i + 1:]:
                assert (first.same(Var(left), Var(right))
                        == second.same(Var(left), Var(right)))


class TestExecutionProperties:
    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_transform_deterministic(self, countries, cities_per, seed):
        morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                            cities.target_schema(), cities.PROGRAM_TEXT)
        euro = cities.generate_euro_instance(countries, cities_per, seed)
        us = cities.generate_us_instance(2, 2, seed)
        first = morphase.transform([us, euro]).target
        second = morphase.transform([us, euro]).target
        assert first.valuations == second.valuations

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_cpl_agrees_with_direct(self, countries, cities_per, seed):
        morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                            cities.target_schema(), cities.PROGRAM_TEXT)
        euro = cities.generate_euro_instance(countries, cities_per, seed)
        us = cities.generate_us_instance(1, 2, seed)
        direct = morphase.transform([us, euro], backend="direct").target
        via_cpl = morphase.transform([us, euro], backend="cpl").target
        assert direct.valuations == via_cpl.valuations

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_target_sizes_match_source_structure(self, countries,
                                                 cities_per, seed):
        morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                            cities.target_schema(), cities.PROGRAM_TEXT)
        euro = cities.generate_euro_instance(countries, cities_per, seed)
        us = cities.generate_us_instance(2, 2, seed)
        target = morphase.transform([us, euro]).target
        sizes = target.class_sizes()
        assert sizes["CountryT"] == countries
        assert sizes["StateT"] == 2
        assert sizes["CityT"] == countries * cities_per + 4

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_audit_always_clean(self, countries, cities_per, seed):
        morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                            cities.target_schema(), cities.PROGRAM_TEXT)
        euro = cities.generate_euro_instance(countries, cities_per, seed)
        us = cities.generate_us_instance(1, 1, seed)
        target = morphase.transform([us, euro]).target
        assert morphase.audit([us, euro], target) == []


class TestPersonsProperties:
    @given(st.integers(min_value=0, max_value=8))
    @settings(max_examples=15, deadline=None)
    def test_couples_map_to_matching_sizes(self, couples):
        morphase = Morphase([persons.person_schema()],
                            persons.evolved_schema(),
                            persons.PROGRAM_TEXT)
        source = persons.generate_instance(couples)
        target = morphase.transform(source).target
        assert target.class_sizes() == {
            "Male": couples, "Female": couples, "Marriage": couples}
