"""Property test: recovery from a WAL truncated at *any* byte offset.

The crash model: the process dies mid-append, leaving the log cut at
an arbitrary byte.  Recovery must yield a prefix-consistent instance —
byte-identical (canonical serialisation) to replaying exactly the
surviving intact records onto the snapshot, which an oracle store
(fed the same delta prefix, never crashed) materialises.

Hypothesis drives both the delta sequence (inserts, updates and
deletes over anonymous- and keyed-oid classes, referential integrity
maintained by construction) and the truncation offset.
"""

import json
import os
import shutil

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evolution.delta import Delta
from repro.model.values import Oid, Record
from repro.store import WarehouseStore
from repro.store.store import WAL_NAME
from repro.workloads import cities


class DeltaScript:
    """Deterministically replay abstract ops into applicable deltas.

    Ops are abstract (``("insert_city", country_index)``) so hypothesis
    shrinks over a stable space; the script resolves them against the
    evolving instance, guaranteeing each delta applies cleanly.
    """

    def __init__(self, instance) -> None:
        self.instance = instance
        self.counter = 0
        self.inserted_cities = []

    def build(self, op) -> Delta:
        kind, argument = op
        self.counter += 1
        tag = self.counter
        if kind == "insert_country":
            oid = Oid.fresh("CountryE")
            delta = Delta(inserts={"CountryE": {oid: Record.of(
                name=f"Land{tag}", language=f"lang{tag}",
                currency=f"C{tag}")}})
        elif kind == "insert_city":
            countries = sorted(self.instance.objects_of("CountryE"),
                               key=str)
            country = countries[argument % len(countries)]
            oid = Oid.fresh("CityE")
            self.inserted_cities.append(oid)
            delta = Delta(inserts={"CityE": {oid: Record.of(
                name=f"Town{tag}", is_capital=False, country=country)}})
        elif kind == "update_city":
            cities_ = sorted(self.instance.objects_of("CityE"), key=str)
            city = cities_[argument % len(cities_)]
            value = self.instance.value_of(city)
            delta = Delta(updates={"CityE": {
                city: value.with_field("name", f"Renamed{tag}")}})
        elif kind == "delete_inserted_city":
            if not self.inserted_cities:
                return Delta()
            city = self.inserted_cities.pop(argument
                                            % len(self.inserted_cities))
            delta = Delta(deletes={"CityE": (city,)})
        else:  # pragma: no cover - strategy is closed over kinds
            raise AssertionError(kind)
        self.instance = delta.apply_to(self.instance)
        return delta


OPS = st.lists(
    st.tuples(st.sampled_from(["insert_country", "insert_city",
                               "update_city", "delete_inserted_city"]),
              st.integers(min_value=0, max_value=7)),
    min_size=1, max_size=8)


@settings(max_examples=25, deadline=None)
@given(ops=OPS, cut=st.integers(min_value=0, max_value=10_000))
def test_truncated_wal_recovers_a_consistent_prefix(ops, cut,
                                                    tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("recovery")
    base = cities.sample_euro_instance()
    store = WarehouseStore.create(str(tmp_path / "store"), base)
    deltas = []
    script = DeltaScript(store.instance)
    for op in ops:
        delta = script.build(op)
        if delta.is_empty():
            continue
        deltas.append(delta)
        store.append(delta)
    store.close()

    wal_path = os.path.join(store.path, WAL_NAME)
    size = os.path.getsize(wal_path)
    offset = cut % (size + 1)

    # count the records that survive the cut intact
    surviving = 0
    consumed = 0
    with open(wal_path, "rb") as handle:
        for line in handle:
            consumed += len(line)
            if consumed <= offset:
                surviving += 1
            else:
                break

    crashed = str(tmp_path / "crashed")
    shutil.copytree(store.path, crashed)
    with open(os.path.join(crashed, WAL_NAME), "rb+") as handle:
        handle.truncate(offset)
    recovered = WarehouseStore.open(crashed)
    assert recovered.seq == surviving

    # oracle: a store fed exactly the surviving prefix, never crashed
    oracle = WarehouseStore.create(str(tmp_path / "oracle"), base)
    for delta in deltas[:surviving]:
        oracle.append(delta)
    assert json.dumps(recovered.canonical_json(), sort_keys=True) \
        == json.dumps(oracle.canonical_json(), sort_keys=True)
