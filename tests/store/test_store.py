"""WarehouseStore tests: durability, recovery, compaction, labels.

The store's contract is differential: kill-and-reopen at any point
must recover state byte-identical (canonical serialisation) to an
in-memory oracle that never crashed.  The oracle here is simply the
original ``WarehouseStore`` object kept in memory while a second
``open()`` re-reads everything from disk.
"""

import json
import os

import pytest

from repro.evolution.delta import Delta, DeltaError
from repro.model.values import Oid, Record
from repro.store import StoreError, WarehouseStore
from repro.store.snapshot import SnapshotError
from repro.store.store import WAL_NAME
from repro.workloads import cities, genome


def canonical(store) -> str:
    return json.dumps(store.canonical_json(), sort_keys=True)


def euro_store(tmp_path, name="store"):
    return WarehouseStore.create(str(tmp_path / name),
                                 cities.sample_euro_instance())


def insert_country(tag):
    oid = Oid.fresh("CountryE")
    return oid, Delta(inserts={"CountryE": {oid: Record.of(
        name=f"Land{tag}", language=f"lang{tag}", currency=f"C{tag}")}})


class TestLifecycle:
    def test_create_then_open_is_identical(self, tmp_path):
        store = euro_store(tmp_path)
        reopened = WarehouseStore.open(store.path)
        assert canonical(reopened) == canonical(store)
        assert reopened.seq == 0

    def test_create_twice_refuses(self, tmp_path):
        store = euro_store(tmp_path)
        with pytest.raises(StoreError, match="already holds"):
            WarehouseStore.create(store.path,
                                  cities.sample_euro_instance())

    def test_open_missing_refuses(self, tmp_path):
        with pytest.raises(SnapshotError, match="not a warehouse store"):
            WarehouseStore.open(str(tmp_path / "nothing"))

    def test_open_or_create(self, tmp_path):
        path = str(tmp_path / "s")
        with pytest.raises(StoreError, match="no initial instance"):
            WarehouseStore.open_or_create(path)
        store = WarehouseStore.open_or_create(
            path, cities.sample_euro_instance())
        assert WarehouseStore.open_or_create(path).seq == store.seq


class TestKillAndReopen:
    def test_reopen_after_every_append_matches_oracle(self, tmp_path):
        oracle = euro_store(tmp_path)
        for tag in range(5):
            _, delta = insert_country(tag)
            oracle.append(delta)
            reopened = WarehouseStore.open(oracle.path)
            assert canonical(reopened) == canonical(oracle)
            assert reopened.seq == oracle.seq

    def test_reopen_after_snapshot_mid_sequence(self, tmp_path):
        oracle = euro_store(tmp_path)
        for tag in range(3):
            oracle.append(insert_country(tag)[1])
        oracle.snapshot()
        for tag in range(3, 6):
            oracle.append(insert_country(tag)[1])
        reopened = WarehouseStore.open(oracle.path)
        assert canonical(reopened) == canonical(oracle)
        assert reopened.base_seq == 3 and reopened.seq == 6

    def test_update_and_delete_roundtrip(self, tmp_path):
        oracle = euro_store(tmp_path)
        oid, delta = insert_country("X")
        oracle.append(delta)
        oracle.append(Delta(updates={"CountryE": {oid: Record.of(
            name="LandX", language="renamed", currency="CX")}}))
        mid = WarehouseStore.open(oracle.path)
        assert canonical(mid) == canonical(oracle)
        oracle.append(Delta(deletes={"CountryE": (oid,)}))
        assert canonical(WarehouseStore.open(oracle.path)) \
            == canonical(oracle)

    def test_torn_final_record_recovers_prefix(self, tmp_path):
        oracle = euro_store(tmp_path)
        oracle.append(insert_country("A")[1])
        prefix = canonical(oracle)
        oracle.append(insert_country("B")[1])
        oracle.close()
        wal_path = os.path.join(oracle.path, WAL_NAME)
        with open(wal_path, "rb+") as handle:
            handle.truncate(os.path.getsize(wal_path) - 3)
        recovered = WarehouseStore.open(oracle.path)
        assert recovered.recovered_torn is not None
        assert recovered.seq == 1
        assert canonical(recovered) == prefix
        # the tail was truncated away: appending continues cleanly
        recovered.append(insert_country("C")[1])
        assert WarehouseStore.open(oracle.path).seq == 2

    def test_wal_gap_refuses(self, tmp_path):
        oracle = euro_store(tmp_path)
        oracle.append(insert_country("A")[1])
        oracle.append(insert_country("B")[1])
        oracle.close()
        wal_path = os.path.join(oracle.path, WAL_NAME)
        with open(wal_path, "rb") as handle:
            lines = handle.readlines()
        with open(wal_path, "wb") as handle:
            handle.write(lines[1])  # drop record 1, keep record 2
        with pytest.raises(StoreError, match="WAL gap"):
            WarehouseStore.open(oracle.path)

    def test_tampered_snapshot_refuses(self, tmp_path):
        store = euro_store(tmp_path)
        path = os.path.join(store.path, store.snapshot_file)
        with open(path, "r+", encoding="utf-8") as handle:
            text = handle.read().replace("CountryE", "CountryX", 1)
            handle.seek(0)
            handle.write(text)
            handle.truncate()
        with pytest.raises(SnapshotError, match="content check"):
            WarehouseStore.open(store.path)


class TestCompaction:
    def test_snapshot_resets_wal_and_prunes(self, tmp_path):
        store = euro_store(tmp_path)
        first_snapshot = store.snapshot_file
        for tag in range(3):
            store.append(insert_country(tag)[1])
        assert store.wal.size_bytes() > 0
        name = store.snapshot()
        assert store.wal.size_bytes() == 0
        assert store.tail == []
        snapshots = [entry for entry in os.listdir(store.path)
                     if entry.startswith("snap-")]
        assert snapshots == [name]
        assert name != first_snapshot

    def test_snapshot_is_idempotent_by_content(self, tmp_path):
        store = euro_store(tmp_path)
        assert store.snapshot() == store.snapshot_file
        # no deltas in between: same content, same address
        again = WarehouseStore.open(store.path)
        assert again.snapshot_file == store.snapshot_file

    def test_stale_wal_records_skipped_after_manifest_flip(self,
                                                          tmp_path):
        """Crash between CURRENT flip and WAL reset loses nothing."""
        store = euro_store(tmp_path)
        for tag in range(2):
            store.append(insert_country(tag)[1])
        reference = canonical(store)
        # simulate the crash: write snapshot + manifest, keep old WAL
        from repro.store.snapshot import write_current, write_snapshot
        name = write_snapshot(store.path, store.instance, store.seq)
        write_current(store.path, name, base_seq=store.seq, wal=WAL_NAME)
        store.close()
        recovered = WarehouseStore.open(store.path)
        assert recovered.base_seq == 2 and recovered.seq == 2
        assert recovered.tail == []
        # labels re-derive at the snapshot, so compare structurally
        from repro.model.isomorphism import isomorphic
        assert isomorphic(recovered.instance, store.instance)
        assert json.loads(reference)["objects"].keys() \
            == recovered.canonical_json()["objects"].keys()


class TestLabelAddressing:
    def test_client_label_survives_reopen(self, tmp_path):
        store = euro_store(tmp_path)
        insert = {"inserts": {"CountryE": [
            {"id": {"$oid": "CountryE", "label": "CountryE#mine"},
             "value": {"$rec": {"name": "Utopia", "language": "u",
                                "currency": "UTO"}}}]}}
        store.append(store.decode_delta(insert))
        reopened = WarehouseStore.open(store.path)
        update = {"updates": {"CountryE": [
            {"id": {"$oid": "CountryE", "label": "CountryE#mine"},
             "value": {"$rec": {"name": "Utopia", "language": "topian",
                                "currency": "UTO"}}}]}}
        reopened.append(reopened.decode_delta(update))
        languages = sorted(
            reopened.instance.value_of(oid).get("language")
            for oid in reopened.instance.objects_of("CountryE"))
        assert "topian" in languages and "u" not in languages

    def test_unknown_update_label_refuses(self, tmp_path):
        store = euro_store(tmp_path)
        update = {"updates": {"CountryE": [
            {"id": {"$oid": "CountryE", "label": "CountryE#nope"},
             "value": {"$rec": {"name": "X", "language": "x",
                                "currency": "X"}}}]}}
        with pytest.raises(DeltaError, match="cannot update"):
            store.append(store.decode_delta(update))

    def test_keyed_store_has_deterministic_snapshots(self, tmp_path):
        """All-keyed workloads content-address identically everywhere."""
        first = WarehouseStore.create(str(tmp_path / "a"),
                                      genome.source_instance())
        second = WarehouseStore.create(str(tmp_path / "b"),
                                       genome.source_instance())
        assert first.snapshot_file == second.snapshot_file
        assert canonical(first) == canonical(second)


class TestValidation:
    def test_inapplicable_delta_never_reaches_the_wal(self, tmp_path):
        store = euro_store(tmp_path)
        ghost = Oid.fresh("CountryE")
        with pytest.raises(DeltaError, match="cannot delete"):
            store.append(Delta(deletes={"CountryE": (ghost,)}))
        assert store.wal.size_bytes() == 0
        assert WarehouseStore.open(store.path).seq == 0

    def test_empty_delta_is_a_noop(self, tmp_path):
        store = euro_store(tmp_path)
        assert store.append(Delta()) == 0
        assert store.wal.size_bytes() == 0
