"""Write-ahead log unit tests: append/replay, torn tails, corruption."""

import json
import os

import pytest

from repro.store.wal import TornTail, WalError, WriteAheadLog


@pytest.fixture()
def wal(tmp_path):
    return WriteAheadLog(str(tmp_path / "wal.jsonl"))


def fill(wal, count=3):
    for seq in range(1, count + 1):
        wal.append(seq, {"n": seq, "blob": "x" * seq})
    wal.close()


class TestRoundTrip:
    def test_append_then_replay(self, wal):
        fill(wal, 3)
        records, torn = wal.replay()
        assert torn is None
        assert [r.seq for r in records] == [1, 2, 3]
        assert records[2].payload == {"n": 3, "blob": "xxx"}

    def test_missing_file_is_empty(self, wal):
        records, torn = wal.replay()
        assert records == [] and torn is None

    def test_reset_empties(self, wal):
        fill(wal, 2)
        wal.reset()
        assert wal.replay() == ([], None)
        assert wal.size_bytes() == 0

    def test_append_after_reopen_continues(self, wal):
        fill(wal, 2)
        again = WriteAheadLog(wal.path)
        again.append(3, {"n": 3})
        again.close()
        records, torn = again.replay()
        assert [r.seq for r in records] == [1, 2, 3]
        assert torn is None


class TestTornTail:
    def truncated(self, wal, drop_bytes):
        fill(wal, 3)
        size = os.path.getsize(wal.path)
        with open(wal.path, "rb+") as handle:
            handle.truncate(size - drop_bytes)
        return wal

    def test_torn_final_record_tolerated(self, wal):
        self.truncated(wal, drop_bytes=5)
        records, torn = wal.replay()
        assert [r.seq for r in records] == [1, 2]
        assert isinstance(torn, TornTail)

    def test_truncate_at_cleans_tail(self, wal):
        self.truncated(wal, drop_bytes=5)
        _, torn = wal.replay()
        wal.truncate_at(torn.offset)
        records, torn_after = wal.replay()
        assert [r.seq for r in records] == [1, 2]
        assert torn_after is None

    def test_append_after_cleanup(self, wal):
        self.truncated(wal, drop_bytes=5)
        _, torn = wal.replay()
        wal.truncate_at(torn.offset)
        wal.append(3, {"n": "again"})
        wal.close()
        records, torn = wal.replay()
        assert [r.seq for r in records] == [1, 2, 3]
        assert torn is None

    def test_truncation_to_exact_boundary_is_clean(self, wal):
        fill(wal, 3)
        with open(wal.path, "rb") as handle:
            lines = handle.readlines()
        with open(wal.path, "rb+") as handle:
            handle.truncate(len(lines[0]) + len(lines[1]))
        records, torn = wal.replay()
        assert [r.seq for r in records] == [1, 2]
        assert torn is None


class TestCorruption:
    def test_checksum_mismatch_in_tail_is_torn(self, wal):
        fill(wal, 2)
        with open(wal.path, "rb") as handle:
            lines = handle.readlines()
        record = json.loads(lines[1])
        record["payload"] = {"n": "tampered"}
        lines[1] = (json.dumps(record).encode() + b"\n")
        with open(wal.path, "wb") as handle:
            handle.writelines(lines)
        records, torn = wal.replay()
        assert [r.seq for r in records] == [1]
        assert torn is not None and "checksum" in torn.reason

    def test_damage_before_intact_record_raises(self, wal):
        fill(wal, 3)
        with open(wal.path, "rb") as handle:
            lines = handle.readlines()
        lines[1] = b"garbage that is not json\n"
        with open(wal.path, "wb") as handle:
            handle.writelines(lines)
        with pytest.raises(WalError, match="corrupt, not torn"):
            wal.replay()

    def test_non_object_line_is_damage(self, wal):
        fill(wal, 1)
        with open(wal.path, "ab") as handle:
            handle.write(b"[1, 2, 3]\n")
        records, torn = wal.replay()
        assert [r.seq for r in records] == [1]
        assert torn is not None


class TestFailedAppend:
    def test_failed_write_truncates_back(self, wal):
        """A write error mid-append must not leave partial bytes:
        the next successful append would otherwise turn the tear into
        mid-log corruption that replay refuses."""
        fill(wal, 2)
        wal.append(3, {"n": 3})  # opens the handle

        class ExplodingHandle:
            def __init__(self, real):
                self.real = real

            def write(self, text):
                self.real.write(text[: len(text) // 2])
                self.real.flush()
                raise OSError("disk full")

            def __getattr__(self, name):
                return getattr(self.real, name)

        wal._handle = ExplodingHandle(wal._handle)
        with pytest.raises(OSError, match="disk full"):
            wal.append(4, {"n": 4, "blob": "y" * 50})
        # the partial record is gone; appending and replaying both work
        wal.append(4, {"n": 4})
        records, torn = wal.replay()
        assert [r.seq for r in records] == [1, 2, 3, 4]
        assert torn is None


class TestStrictSequence:
    """Replay refuses duplicate or regressing sequence numbers.

    Appends hand out ``seq`` monotonically, so a duplicate can only be
    tampering or mis-assembly — and a follower tailing the log over
    ``/wal`` would double-apply the duplicated record.  Before this
    was enforced, replay accepted such logs silently.
    """

    def append_raw(self, wal, seq, payload):
        import zlib
        text = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))
        crc = zlib.crc32(text.encode()) & 0xFFFFFFFF
        line = json.dumps({"seq": seq, "crc": crc, "payload": payload},
                          sort_keys=True, separators=(",", ":")) + "\n"
        with open(wal.path, "a", encoding="utf-8") as handle:
            handle.write(line)

    def test_duplicate_seq_raises(self, wal):
        fill(wal, 2)
        self.append_raw(wal, 2, {"n": "again"})
        with pytest.raises(WalError, match="does not increase"):
            wal.replay()

    def test_regressing_seq_raises(self, wal):
        fill(wal, 3)
        self.append_raw(wal, 1, {"n": "rewound"})
        with pytest.raises(WalError, match="strictly"):
            wal.replay()

    def test_gap_is_still_fine_at_wal_level(self, wal):
        """Gaps are legal here — the *store* checks contiguity against
        its ``base_seq`` watermark (a snapshot legitimately swallows a
        prefix); the WAL itself only refuses non-increasing order."""
        self.append_raw(wal, 5, {"n": 5})
        self.append_raw(wal, 9, {"n": 9})
        records, torn = wal.replay()
        assert [r.seq for r in records] == [5, 9]
        assert torn is None

    def test_duplicate_then_torn_tail_still_raises(self, wal):
        fill(wal, 2)
        self.append_raw(wal, 2, {"n": "again"})
        with open(wal.path, "ab") as handle:
            handle.write(b'{"seq": 3, "crc"')  # torn final append
        with pytest.raises(WalError, match="does not increase"):
            wal.replay()
