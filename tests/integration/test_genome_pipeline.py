"""Integration test: the genome warehouse trial (E7, paper Section 6).

ACeDB-style tree data (ACe22DB stand-in) is imported into the WOL model,
transformed by a WOL program, and exported to a relational warehouse
(Chr22DB stand-in) — heterogeneous models bridged through WOL exactly as
in the Penn genome-centre trials.
"""

import pytest

from repro.adapters.acedb import schema_of_acedb
from repro.adapters.relational import export_instance, import_database
from repro.morphase import Morphase
from repro.workloads import genome


@pytest.fixture(scope="module")
def morphase():
    source_schema = schema_of_acedb(genome.sample_acedb())
    return Morphase([source_schema], genome.warehouse_schema(),
                    genome.PROGRAM_TEXT)


class TestSampleTrial:
    def test_transforms_and_exports(self, morphase):
        result = morphase.transform(genome.source_instance())
        database = export_instance(result.target,
                                   genome.WAREHOUSE_TABLES)
        assert database.check_foreign_keys() == []
        assert database.table("GeneT").lookup("comt")[
            "description"].startswith("catechol")

    def test_sparse_objects_dropped(self, morphase):
        """The unmapped clone and the gene-less sequence link vanish —
        the 'delete' reading of optional-to-required (paper Section 1)."""
        result = morphase.transform(genome.source_instance())
        clone_names = {result.target.attribute(c, "name")
                       for c in result.target.objects_of("CloneT")}
        assert "c22_3" not in clone_names  # no map_position/length
        assert result.target.class_sizes()["SeqGene"] == 2  # S3 has no gene

    def test_reference_chain_preserved(self, morphase):
        result = morphase.transform(genome.source_instance())
        target = result.target
        by_name = {target.attribute(c, "name"): c
                   for c in target.objects_of("CloneT")}
        seq = target.attribute(by_name["c22_1"], "seq")
        assert target.attribute(seq, "name") == "AC000050"


class TestScaledTrial:
    @pytest.mark.parametrize("sparsity", [0.5, 0.8, 1.0])
    def test_roundtrip_at_scale(self, morphase, sparsity):
        database = genome.generate_acedb(15, 30, 45, sparsity=sparsity,
                                         seed=7)
        source = genome.source_instance(database)
        result = morphase.transform(source)
        result.target.validate()
        exported = export_instance(result.target,
                                   genome.WAREHOUSE_TABLES)
        assert exported.check_foreign_keys() == []
        # Row counts match the instance exactly.
        for table_name, table in exported.tables.items():
            assert len(table) == result.target.class_sizes()[table_name]

    def test_warehouse_monotone_in_sparsity(self, morphase):
        sizes = []
        for sparsity in (0.3, 0.6, 0.9):
            database = genome.generate_acedb(10, 20, 30,
                                             sparsity=sparsity, seed=3)
            result = morphase.transform(genome.source_instance(database))
            sizes.append(result.target.size())
        assert sizes[0] < sizes[2]


class TestSchemaEvolutionRobustness:
    """Section 6: 'it has also been easy to modify the original WOL
    program to reflect schema changes' — adding a tag to the source only
    needs the importer rerun; the program is untouched."""

    def test_extra_source_tag_is_ignored_gracefully(self):
        from repro.adapters.acedb import AceClass, AceDatabase, TagSpec
        extended_classes = list(genome.ACE_CLASSES)
        extended_classes[0] = AceClass("Gene", (
            TagSpec("symbol", "str"),
            TagSpec("description", "str"),
            TagSpec("pubmed_id", "int"),  # schema evolution!
        ))
        database = AceDatabase("ACe22v2", tuple(extended_classes))
        obj = database.new_object("Gene", "COMT")
        obj.add("symbol", "comt")
        obj.add("description", "desc")
        obj.add("pubmed_id", 12345)
        source_schema = schema_of_acedb(database)
        morphase = Morphase([source_schema], genome.warehouse_schema(),
                            genome.PROGRAM_TEXT)
        from repro.adapters.acedb import import_acedb
        result = morphase.transform(import_acedb(database))
        assert result.target.class_sizes()["GeneT"] == 1
