"""Integration test: the ReLiBase drug-design warehouse (Section 6).

SWISSPROT-like and PDB-like sources integrate into a ReLiBase-like object
model — the paper's second reported deployment of WOL.  Exercises
multi-source joins and set-valued attribute accumulation end to end.
"""

import pytest

from repro.model import WolSet, isomorphic
from repro.morphase import Morphase
from repro.workloads import relibase


@pytest.fixture(scope="module")
def morphase():
    return Morphase([relibase.swissprot_schema(), relibase.pdb_schema()],
                    relibase.relibase_schema(), relibase.PROGRAM_TEXT)


@pytest.fixture(scope="module")
def result(morphase):
    return morphase.transform([relibase.sample_swissprot(),
                               relibase.sample_pdb()])


class TestSampleWarehouse:
    def test_class_sizes(self, result):
        assert result.target.class_sizes() == {
            "Complex": 2, "Ligand": 2, "Protein": 3, "Structure": 3}

    def test_unmatched_pdb_structure_dropped(self, result):
        """9XYZ has no SWISSPROT counterpart: the cross-database join
        excludes it."""
        pdb_ids = {result.target.attribute(s, "pdb_id")
                   for s in result.target.objects_of("Structure")}
        assert "9XYZ" not in pdb_ids
        assert pdb_ids == {"1M17", "2ITY", "1HCK"}

    def test_set_valued_structures_accumulate(self, result):
        target = result.target
        by_accession = {target.attribute(p, "accession"): p
                        for p in target.objects_of("Protein")}
        egfr_structures = target.attribute(by_accession["P00533"],
                                           "structures")
        assert len(egfr_structures) == 2
        # A protein without structures gets the empty set, not an error.
        bace = target.attribute(by_accession["P56817"], "structures")
        assert bace == WolSet.of()

    def test_structure_protein_backlink(self, result):
        target = result.target
        for structure in target.objects_of("Structure"):
            protein = target.attribute(structure, "protein")
            assert structure in target.attribute(protein, "structures")

    def test_complexes_join_both_sides(self, result):
        target = result.target
        for complex_ in target.objects_of("Complex"):
            structure = target.attribute(complex_, "structure")
            ligand = target.attribute(complex_, "ligand")
            assert structure.class_name == "Structure"
            assert ligand.class_name == "Ligand"
            assert isinstance(target.attribute(complex_, "affinity"),
                              float)

    def test_audit_clean(self, morphase, result):
        assert morphase.audit(
            [relibase.sample_swissprot(), relibase.sample_pdb()],
            result.target) == []

    def test_cpl_backend_matches(self, morphase):
        sources = [relibase.sample_swissprot(), relibase.sample_pdb()]
        direct = morphase.transform(sources, backend="direct")
        via_cpl = morphase.transform(sources, backend="cpl")
        assert direct.target.valuations == via_cpl.target.valuations


class TestScaledWarehouse:
    def test_sizes_follow_generators(self, morphase):
        sp, pdb = relibase.generate_sources(12, 2, 8, 20, seed=5)
        target = morphase.transform([sp, pdb]).target
        sizes = target.class_sizes()
        assert sizes["Protein"] == 12
        assert sizes["Structure"] == 24
        assert sizes["Ligand"] == 8
        assert sizes["Complex"] == 20
        target.validate()

    def test_every_structure_in_its_protein_set(self, morphase):
        sp, pdb = relibase.generate_sources(6, 3, 4, 10, seed=7)
        target = morphase.transform([sp, pdb]).target
        collected = sum(len(target.attribute(p, "structures"))
                        for p in target.objects_of("Protein"))
        assert collected == target.class_sizes()["Structure"]

    def test_deterministic(self, morphase):
        sp, pdb = relibase.generate_sources(5, 2, 3, 6, seed=1)
        first = morphase.transform([sp, pdb]).target
        second = morphase.transform([sp, pdb]).target
        assert first.valuations == second.valuations
