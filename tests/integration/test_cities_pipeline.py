"""Integration test: the paper's running example end-to-end (F1-F3).

Figures 1 and 2 (US and European cities) are integrated into the Figure 3
schema, including the hard part the paper highlights in Example 1.1: the
Boolean ``is_capital`` attribute of European cities becomes the ``capital``
*reference* attribute of target countries, which requires the source
constraints (C4)/(C5) for well-definedness.
"""

import pytest

from repro.engine.executor import ExecutionError
from repro.model import Oid, Record, Variant, isomorphic
from repro.morphase import Morphase, MorphaseError
from repro.workloads import cities


@pytest.fixture(scope="module")
def morphase():
    return Morphase([cities.us_schema(), cities.euro_schema()],
                    cities.target_schema(), cities.PROGRAM_TEXT)


@pytest.fixture(scope="module")
def result(morphase):
    return morphase.transform([cities.sample_us_instance(),
                               cities.sample_euro_instance()])


class TestIntegratedInstance:
    def test_class_sizes(self, result):
        assert result.target.class_sizes() == {
            "CityT": 12, "CountryT": 3, "StateT": 2}

    def test_boolean_becomes_reference(self, result):
        """The is_capital -> capital re-representation (Example 1.1)."""
        target = result.target
        for country in target.objects_of("CountryT"):
            capital = target.attribute(country, "capital")
            assert capital.class_name == "CityT"
            # The capital city's place points back at the country.
            place = target.attribute(capital, "place")
            assert place == Variant("euro_city", country)

    def test_specific_capitals(self, result):
        target = result.target
        by_name = {target.attribute(c, "name"): c
                   for c in target.objects_of("CountryT")}
        capital = target.attribute(by_name["France"], "capital")
        assert target.attribute(capital, "name") == "Paris"
        capital = target.attribute(by_name["United Kingdom"], "capital")
        assert target.attribute(capital, "name") == "London"

    def test_us_states_mapped(self, result):
        target = result.target
        by_name = {target.attribute(s, "name"): s
                   for s in target.objects_of("StateT")}
        assert set(by_name) == {"Pennsylvania", "California"}
        capital = target.attribute(by_name["Pennsylvania"], "capital")
        assert target.attribute(capital, "name") == "Harrisburg"

    def test_place_variant_split(self, result):
        target = result.target
        euro_cities = 0
        us_cities = 0
        for city in target.objects_of("CityT"):
            place = target.attribute(city, "place")
            if place.label == "euro_city":
                euro_cities += 1
            else:
                assert place.label == "us_city"
                us_cities += 1
        assert euro_cities == 7
        assert us_cities == 5

    def test_non_capital_cities_present(self, result):
        target = result.target
        names = {target.attribute(c, "name")
                 for c in target.objects_of("CityT")}
        assert {"Manchester", "Lyon", "Philadelphia"} <= names

    def test_target_is_valid_and_keyed(self, result):
        result.target.validate()
        from repro.model import satisfies_keys
        assert satisfies_keys(result.target, cities.target_schema().keys)

    def test_audit_clean(self, morphase, result):
        violations = morphase.audit(
            [cities.sample_us_instance(), cities.sample_euro_instance()],
            result.target)
        assert violations == []


class TestWellDefinednessNeedsConstraints:
    """Example 1.1: without (C4)/(C5) the transformation is ill-defined."""

    def test_country_without_capital_makes_program_incomplete(self,
                                                              morphase):
        builder = cities.sample_euro_instance().builder()
        builder.new("CountryE", Record.of(
            name="Utopia", language="Esperanto", currency="stela"))
        broken = builder.freeze()
        # T1 creates the CountryT but no firing of T1+T3 supplies its
        # capital.  Since the merged clause never fires for Utopia, the
        # object is simply absent -- and the audit detects that T1 is
        # violated (no corresponding CountryT for Utopia).
        result = morphase.transform([cities.sample_us_instance(), broken])
        names = {result.target.attribute(c, "name")
                 for c in result.target.objects_of("CountryT")}
        assert "Utopia" not in names
        assert morphase.audit(
            [cities.sample_us_instance(), broken], result.target)

    def test_two_capitals_is_a_runtime_conflict(self, morphase):
        builder = cities.sample_euro_instance().builder()
        france = next(o for o in builder.objects_of("CountryE")
                      if builder.value_of(o).get("name") == "France")
        builder.new("CityE", Record.of(
            name="Marseille", is_capital=True, country=france))
        broken = builder.freeze()
        with pytest.raises(ExecutionError) as excinfo:
            morphase.transform([cities.sample_us_instance(), broken])
        assert "conflict" in str(excinfo.value)

    def test_source_checking_rejects_both_upfront(self, morphase):
        builder = cities.sample_euro_instance().builder()
        builder.new("CountryE", Record.of(
            name="Utopia", language="Esperanto", currency="stela"))
        broken = builder.freeze()
        with pytest.raises(MorphaseError):
            morphase.transform([cities.sample_us_instance(), broken],
                               check_source_constraints=True)


class TestScaling:
    def test_generated_instances_integrate(self, morphase):
        euro = cities.generate_euro_instance(8, 4, seed=11)
        us = cities.generate_us_instance(5, 3, seed=11)
        target = morphase.transform([us, euro]).target
        assert target.class_sizes() == {
            "CityT": 8 * 4 + 5 * 3, "CountryT": 8, "StateT": 5}
        target.validate()

    def test_isomorphic_sources_give_isomorphic_targets(self, morphase):
        euro = cities.generate_euro_instance(3, 2, seed=0)
        us = cities.generate_us_instance(2, 2, seed=0)
        first = morphase.transform([us, euro]).target
        second = morphase.transform([us, euro]).target
        assert isomorphic(first, second)
