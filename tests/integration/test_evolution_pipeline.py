"""Integration test: schema evolution + information capacity (F4-F5).

Example 4.2: the Person schema evolves into Male/Female/Marriage; the
transformation (T6)-(T8) preserves information exactly on sources
satisfying (C9)-(C11).
"""

import pytest

from repro.infocap import check_injectivity, check_preservation
from repro.model import Oid, isomorphic
from repro.morphase import Morphase
from repro.workloads import persons


@pytest.fixture(scope="module")
def morphase():
    return Morphase([persons.person_schema()], persons.evolved_schema(),
                    persons.PROGRAM_TEXT)


class TestEvolution:
    def test_couples_map_fully(self, morphase):
        target = morphase.transform(persons.sample_instance()).target
        assert target.class_sizes() == {
            "Male": 3, "Female": 3, "Marriage": 3}

    def test_marriages_link_correct_pairs(self, morphase):
        target = morphase.transform(
            persons.couples_instance([("Adam", "Beth")])).target
        (marriage,) = target.objects_of("Marriage")
        husband = target.attribute(marriage, "husband")
        wife = target.attribute(marriage, "wife")
        assert target.attribute(husband, "name") == "Adam"
        assert target.attribute(wife, "name") == "Beth"

    def test_audit_clean_on_constrained_source(self, morphase):
        source = persons.sample_instance()
        target = morphase.transform(source).target
        assert morphase.audit(source, target) == []

    def test_cpl_backend_agrees(self, morphase):
        source = persons.sample_instance()
        direct = morphase.transform(source, backend="direct")
        via_cpl = morphase.transform(source, backend="cpl")
        assert direct.target.valuations == via_cpl.target.valuations


class TestInformationCapacity:
    """Section 4.3, made quantitative."""

    def test_not_injective_without_constraints(self, morphase):
        def transform(instance):
            return morphase.transform(instance).target

        report = check_injectivity(transform, [
            persons.asymmetric_instance(),
            persons.symmetric_variant_of_asymmetric()])
        assert not report.injective

    def test_injective_with_constraints(self, morphase):
        def transform(instance):
            return morphase.transform(instance).target

        constraints = morphase.compile().source_constraints
        family = [
            persons.generate_instance(0),
            persons.generate_instance(1),
            persons.generate_instance(2),
            persons.generate_instance(3),
            persons.couples_instance([("X", "Y")]),
            persons.couples_instance([("A", "B"), ("C", "D")]),
            persons.asymmetric_instance(),
            persons.symmetric_variant_of_asymmetric(),
        ]
        report = check_preservation(transform, family, constraints)
        assert not report.unconstrained.injective
        assert report.constrained.injective
        # The two pathological instances fail the constraints.
        assert report.constrained_count == report.total_count - 2

    def test_audit_flags_information_loss(self, morphase):
        """On the asymmetric source the transformation drops Ann's
        marriage; the audit over source+target shows (T8) satisfied but
        the source constraints violated, explaining the loss."""
        source = persons.asymmetric_instance()
        target = morphase.transform(source).target
        # The evolved instance has fewer marriages than spouse links.
        spouse_links = sum(
            1 for p in source.objects_of("Person"))
        assert target.class_sizes()["Marriage"] < spouse_links
        constraints = morphase.compile().source_constraints
        from repro.semantics import satisfies_program
        assert not satisfies_program(source, constraints)
