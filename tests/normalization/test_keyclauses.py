"""Unit tests for key clause recognition and identity derivation."""

import pytest

from repro.lang import SkolemTerm, Var, parse_clause
from repro.model import KeySpec, attribute_key, attributes_key
from repro.normalization import (congruence_of, derive_identity,
                                 key_paths_from_spec, recognise_key_clause,
                                 recognise_source_key_paths, snf_clause)
from repro.workloads.cities import euro_schema

CLASSES = ["CityE", "CountryE", "CityT", "CountryT", "StateT"]


def snf(text):
    return snf_clause(parse_clause(text, classes=CLASSES))


class TestRecogniseKeyClause:
    def test_paper_c3(self):
        key = recognise_key_clause(snf(
            "Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;"))
        assert key is not None
        assert key.class_name == "CountryT"
        assert key.object_var == "Y"

    def test_named_compound_key(self):
        key = recognise_key_clause(snf(
            "X = Mk_CityT(name = N, place = P)"
            " <= X in CityT, N = X.name, P = X.place;"))
        assert key is not None
        assert key.skolem.is_named

    def test_deep_path_key(self):
        key = recognise_key_clause(snf(
            "X = Mk_CityT(name = N, cn = M)"
            " <= X in CityT, N = X.name, M = X.country.name;"))
        assert key is not None
        assert len(key.definitions) == 3  # name, country, country.name

    def test_rejects_multi_atom_head(self):
        assert recognise_key_clause(snf(
            "X = Mk_CityT(N), X in CityT <= N = X.name;")) is None

    def test_rejects_extra_members(self):
        assert recognise_key_clause(snf(
            "X = Mk_CityT(N) <= X in CityT, Y in CountryT,"
            " N = X.name;")) is None

    def test_rejects_non_key_shapes(self):
        assert recognise_key_clause(snf(
            "X.name = N <= X in CityT, N = N;")) is None


class TestDeriveIdentity:
    def test_simple_derivation(self):
        key = recognise_key_clause(snf(
            "Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;"))
        producer = snf("X in CountryT, X.name = E.name <= E in CountryE;")
        congruence = congruence_of(producer.atoms())
        identity = derive_identity(congruence, Var("X"), key)
        assert identity is not None
        assert identity.class_name == "CountryT"
        (label, arg), = identity.args
        assert label is None

    def test_deep_path_derivation(self):
        key = recognise_key_clause(snf(
            "X = Mk_CityT(name = N, cn = M)"
            " <= X in CityT, N = X.name, M = X.country.name;"))
        producer = snf(
            "Y in CityT, Y.name = E.name, Y.country = C"
            " <= E in CityE, C in CountryT, C.name = E.country.name;")
        # Y.country.name resolves through C.name, which the body defines.
        congruence = congruence_of(producer.atoms())
        identity = derive_identity(congruence, Var("Y"), key)
        assert identity is not None
        labels = [label for label, _ in identity.args]
        assert labels == ["cn", "name"]

    def test_deep_path_derivation_fails_without_link(self):
        key = recognise_key_clause(snf(
            "X = Mk_CityT(name = N, cn = M)"
            " <= X in CityT, N = X.name, M = X.country.name;"))
        producer = snf(
            "Y in CityT, Y.name = E.name, Y.country = C"
            " <= E in CityE, C in CountryT;")
        # Nothing defines C.name: the cn component cannot be derived.
        congruence = congruence_of(producer.atoms())
        assert derive_identity(congruence, Var("Y"), key) is None

    def test_derivation_fails_without_key_attribute(self):
        key = recognise_key_clause(snf(
            "Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;"))
        producer = snf(
            "X in CountryT, X.language = E.language <= E in CountryE;")
        congruence = congruence_of(producer.atoms())
        assert derive_identity(congruence, Var("X"), key) is None

    def test_variant_valued_key(self):
        key = recognise_key_clause(snf(
            "X = Mk_CityT(name = N, place = P)"
            " <= X in CityT, N = X.name, P = X.place;"))
        producer = snf(
            "Y in CityT, Y.name = E.name, Y.place = ins_euro_city(C)"
            " <= E in CityE, C in CountryT;")
        congruence = congruence_of(producer.atoms())
        identity = derive_identity(congruence, Var("Y"), key)
        assert identity is not None
        labels = [label for label, _ in identity.args]
        assert labels == ["name", "place"]


class TestSourceKeyRecognition:
    def test_paper_c8(self):
        recognised = recognise_source_key_paths(snf(
            "X = Y <= X in CountryE, Y in CountryE, X.name = Y.name;"))
        assert recognised == ("CountryE", (("name",),))

    def test_compound_paths(self):
        recognised = recognise_source_key_paths(snf(
            "X = Y <= X in CityE, Y in CityE, X.name = Y.name,"
            " X.country.name = Y.country.name;"))
        assert recognised == ("CityE", (("country", "name"), ("name",)))

    def test_oid_equality_keeps_prefix_only(self):
        recognised = recognise_source_key_paths(snf(
            "X = Y <= X in CityE, Y in CityE, X.country = Y.country;"))
        assert recognised == ("CityE", (("country",),))

    def test_conditional_clause_rejected(self):
        """The paper's (C5) must NOT be treated as a key."""
        recognised = recognise_source_key_paths(snf(
            "X = Y <= X in CityE, Y in CityE, X.country = Y.country,"
            " X.is_capital = true, Y.is_capital = true;"))
        assert recognised is None

    def test_extra_member_rejected(self):
        recognised = recognise_source_key_paths(snf(
            "X = Y <= X in CityE, Y in CityE, Z in CountryE,"
            " X.name = Y.name;"))
        assert recognised is None

    def test_comparison_rejected(self):
        recognised = recognise_source_key_paths(snf(
            "X = Y <= X in CityE, Y in CityE, X.name = Y.name,"
            " X.name != Y.zip;"))
        assert recognised is None

    def test_different_classes_rejected(self):
        recognised = recognise_source_key_paths(snf(
            "X = Y <= X in CityE, Y in CountryE, X.name = Y.name;"))
        assert recognised is None

    def test_unlinked_paths_rejected(self):
        recognised = recognise_source_key_paths(snf(
            "X = Y <= X in CityE, Y in CityE, N = X.name, M = Y.name;"))
        assert recognised is None


class TestKeyPathsFromSpec:
    def test_spec_conversion(self):
        schema = euro_schema()
        paths = key_paths_from_spec(schema.keys)
        assert paths["CountryE"] == ((("name",),),)
        assert paths["CityE"] == (
            (("name",), ("country", "name")),)
