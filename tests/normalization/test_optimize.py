"""Unit tests for constraint-based simplification (paper Section 4.2)."""

import pytest

from repro.lang import EqAtom, MemberAtom, parse_clause
from repro.normalization import (clause_signature, is_body_satisfiable,
                                 simplify_clause, snf_clause)

CLASSES = ["CityE", "CountryE", "CityT", "CountryT"]
KEYS = {"CountryE": ((("name",),),),
        "CityE": ((("name",), ("country", "name")),)}


def snf(text):
    return snf_clause(parse_clause(text, classes=CLASSES))


def members(clause, cname):
    return [a for a in clause.body
            if isinstance(a, MemberAtom) and a.class_name == cname]


class TestPaperExample41:
    """Clauses (T4)+(T5) combined, simplified with key (C8)."""

    COMBINED = (
        "X = Mk_CountryT(N), X.language = L, X.currency = C"
        " <= Y in CountryE, Y.name = N, Y.language = L,"
        "    Z in CountryE, Z.name = N, Z.currency = C;")

    def test_with_key_constraint_collapses_self_join(self):
        out = simplify_clause(snf(self.COMBINED), KEYS)
        assert len(members(out, "CountryE")) == 1

    def test_without_key_constraint_keeps_join(self):
        out = simplify_clause(snf(self.COMBINED), None)
        assert len(members(out, "CountryE")) == 2

    def test_simplified_clause_is_smaller(self):
        with_keys = simplify_clause(snf(self.COMBINED), KEYS)
        without = simplify_clause(snf(self.COMBINED), None)
        assert with_keys.size() < without.size()


class TestUnsatPruning:
    def test_conflicting_constants_pruned(self):
        clause = snf('X.name = N <= X in CityE, N = "a", N = "b";')
        assert simplify_clause(clause, None) is None
        assert not is_body_satisfiable(clause)

    def test_prune_unsat_false_keeps_clause(self):
        clause = snf('X.name = N <= X in CityE, N = "a", N = "b";')
        assert simplify_clause(clause, None, prune_unsat=False) is clause

    def test_variant_clash_pruned(self):
        clause = snf("X.place = P <= X in CityT, P = ins_a(V),"
                     " P = ins_b(W), V in CityE, W in CityE;")
        assert simplify_clause(clause, None) is None

    def test_satisfiable_clause_kept(self):
        clause = snf("X.name = N <= X in CityE, N = X.name;")
        assert simplify_clause(clause, None) is not None


class TestCanonicalisation:
    def test_duplicate_atoms_merged(self):
        clause = snf("T = T <= E in CityE, V = E.name, W = E.name,"
                     " V = W;")
        out = simplify_clause(clause, None, prune_unused=False)
        projections = [a for a in out.body if isinstance(a, EqAtom)]
        # V and W collapse to one canonical projection.
        assert len(projections) == 1

    def test_constants_propagate(self):
        clause = snf('X.name = N <= X in CityE, N = M, M = "Paris";')
        out = simplify_clause(clause, None)
        assert any("Paris" in str(a) for a in out.body + out.head)

    def test_trivial_equalities_dropped(self):
        clause = snf("X.name = N <= X in CityE, N = N, N = X.name;")
        out = simplify_clause(clause, None)
        assert all(str(a) != "N = N" for a in out.body)


class TestUnusedPruning:
    def test_unused_definition_dropped(self):
        clause = snf("X.name = N <= X in CityE, N = X.name,"
                     " U = X.is_capital;")
        out = simplify_clause(clause, None)
        assert all("is_capital" not in str(a) for a in out.body)

    def test_used_definition_kept(self):
        clause = snf("X.name = N <= X in CityE, N = X.name,"
                     " U = X.is_capital, U = true;")
        out = simplify_clause(clause, None)
        assert any("is_capital" in str(a) for a in out.body)

    def test_join_definitions_kept(self):
        # V defined twice: a join between two projections; must stay.
        clause = snf("T = T <= X in CityE, Y in CityE,"
                     " V = X.name, V = Y.name;")
        out = simplify_clause(clause, None)
        assert sum("name" in str(a) for a in out.body) == 2

    def test_member_atoms_never_dropped(self):
        clause = snf("T = T <= X in CityE, Y in CountryE;")
        out = simplify_clause(clause, None)
        assert len(out.body) == 2


class TestHeadIdentityReasoning:
    def test_head_identity_equates_body_keys(self):
        # Head says X = Mk_CountryT(N); body binds X = Mk_CountryT(M).
        # Injectivity makes N = M, collapsing the two CountryE members.
        clause = snf(
            "X in CountryT, X = Mk_CountryT(N), X.name = N"
            " <= Y in CountryE, N = Y.name, Z in CountryE, M = Z.name,"
            "    X = Mk_CountryT(M);")
        out = simplify_clause(clause, KEYS)
        assert len(members(out, "CountryE")) == 1


class TestClauseSignature:
    def test_renaming_invariant(self):
        first = snf("X.name = N <= X in CityE, N = X.name;")
        second = snf("A.name = B <= A in CityE, B = A.name;")
        assert clause_signature(first) == clause_signature(second)

    def test_different_clauses_differ(self):
        first = snf("X.name = N <= X in CityE, N = X.name;")
        second = snf("X.country = N <= X in CityE, N = X.country;")
        assert clause_signature(first) != clause_signature(second)
