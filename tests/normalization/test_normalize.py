"""Unit tests for the normal-form driver (paper Section 5)."""

import pytest

from repro.lang import MemberAtom, parse_program
from repro.model import merge_schemas
from repro.normalization import (NormalizationError, NormalizationOptions,
                                 normalize)
from repro.workloads import cities, persons


def norm_cities(program=None, **opts):
    source = merge_schemas("Src", [cities.us_schema().schema,
                                   cities.euro_schema().schema])
    keys = None
    if "source_keys" not in opts:
        from repro.model import KeySpec
        functions = {}
        for schema in (cities.us_schema(), cities.euro_schema()):
            functions.update(schema.keys.functions)
        keys = KeySpec(functions)
    else:
        keys = opts.pop("source_keys")
    options = NormalizationOptions(**opts) if opts else None
    return normalize(program or cities.integration_program(), source,
                     cities.target_schema().schema, source_keys=keys,
                     options=options)


def body_classes(clause):
    return {a.class_name for a in clause.body
            if isinstance(a, MemberAtom)}


class TestCitiesProgram:
    def test_produces_expected_clause_count(self):
        normalized = norm_cities()
        assert normalized.report.normal_clauses == 4

    def test_bodies_are_source_only(self):
        normalized = norm_cities()
        target = set(cities.target_schema().schema.class_names())
        for clause in normalized.clauses:
            assert not (body_classes(clause) & target)

    def test_every_head_has_identity(self):
        from repro.lang import EqAtom, SkolemTerm
        normalized = norm_cities()
        for clause in normalized.clauses:
            assert any(isinstance(a, EqAtom)
                       and isinstance(a.right, SkolemTerm)
                       for a in clause.head)

    def test_cross_variant_combinations_pruned(self):
        normalized = norm_cities()
        assert normalized.report.pruned_unsatisfiable >= 2

    def test_all_attributes_covered(self):
        normalized = norm_cities()
        assert normalized.report.uncovered == {}

    def test_source_constraints_partitioned(self):
        normalized = norm_cities()
        names = {c.name for c in normalized.source_constraints}
        assert {"C1", "C4", "C5"} <= names

    def test_key_clauses_recognised(self):
        normalized = norm_cities()
        assert set(normalized.key_clauses) == {"CityT", "CountryT",
                                               "StateT"}

    def test_source_key_paths_extracted(self):
        normalized = norm_cities()
        assert normalized.source_key_paths["CountryE"] == ((("name",),),)

    def test_report_counts(self):
        normalized = norm_cities()
        report = normalized.report
        assert report.input_clauses == 12
        assert report.producers == 4
        assert report.assigners == 2
        assert report.normal_size > 0
        assert report.elapsed_seconds >= 0


class TestConstraintAblation:
    def test_without_constraints_more_clauses(self):
        with_constraints = norm_cities()
        without = norm_cities(use_constraints=False)
        assert (without.report.normal_clauses
                > with_constraints.report.normal_clauses)

    def test_without_constraints_bigger_bodies(self):
        with_constraints = norm_cities()
        without = norm_cities(use_constraints=False)
        assert without.report.normal_size > with_constraints.report.normal_size

    def test_without_simplify_bigger(self):
        simplified = norm_cities()
        raw = norm_cities(simplify=False)
        assert raw.report.normal_size >= simplified.report.normal_size


class TestPersonsProgram:
    @staticmethod
    def _normalized():
        from repro.lang import Program
        from repro.morphase import generate_target_key_clauses
        program = persons.evolution_program()
        generated = generate_target_key_clauses(
            persons.evolved_schema(), skip=["Marriage"])
        program = Program(program.clauses + tuple(generated))
        return normalize(program,
                         persons.person_schema().schema,
                         persons.evolved_schema().schema,
                         source_keys=persons.person_schema().keys)

    def test_marriage_unfolds_male_female(self):
        normalized = self._normalized()
        t8 = [c for c in normalized.clauses
              if any(isinstance(a, MemberAtom)
                     and a.class_name == "Marriage" for a in c.head)]
        assert len(t8) == 1
        assert body_classes(t8[0]) == {"Person"}

    def test_person_key_merges_joins(self):
        normalized = self._normalized()
        (t8,) = [c for c in normalized.clauses
                 if any(isinstance(a, MemberAtom)
                        and a.class_name == "Marriage" for a in c.head)]
        # Four Person references (Z, W, T6's, T7's) collapse to two.
        assert sum(1 for a in t8.body
                   if isinstance(a, MemberAtom)) == 2


class TestErrors:
    def test_overlapping_schemas_rejected(self):
        schema = cities.us_schema().schema
        with pytest.raises(NormalizationError):
            normalize(cities.integration_program(), schema, schema)

    def test_missing_key_clause(self):
        program = parse_program(
            "T: X in CountryT, X.name = E.name <= E in CountryE;",
            classes=["CountryE", "CountryT"])
        with pytest.raises(NormalizationError) as excinfo:
            normalize(program, cities.euro_schema().schema,
                      cities.target_schema().schema)
        assert "key clause" in str(excinfo.value)

    def test_underdetermined_key(self):
        program = parse_program(
            """
            T: X in CountryT, X.language = E.language <= E in CountryE;
            K: X = Mk_CountryT(N) <= X in CountryT, N = X.name;
            """,
            classes=["CountryE", "CountryT"])
        with pytest.raises(NormalizationError) as excinfo:
            normalize(program, cities.euro_schema().schema,
                      cities.target_schema().schema)
        assert "key" in str(excinfo.value)

    def test_recursive_program_rejected(self):
        program = parse_program(
            """
            K: X = Mk_Node(N) <= X in Node, N = X.name;
            T: X in Node, X.name = N, X.next = Y
               <= Y in Node, N = Y.name;
            """,
            classes=["Node", "Src"])
        from repro.model import Schema, record, STR, ClassType
        source = Schema.of("S", Src=record(name=STR))
        target = Schema.of(
            "T2", Node=record(name=STR, next=ClassType("Node")))
        with pytest.raises(NormalizationError) as excinfo:
            normalize(program, source, target)
        assert "recursive" in str(excinfo.value).lower()

    def test_unknown_class_rejected(self):
        program = parse_program("T: X in Ghost <= E in CountryE;")
        with pytest.raises(NormalizationError):
            normalize(program, cities.euro_schema().schema,
                      cities.target_schema().schema)

    def test_create_and_assign_external_rejected(self):
        program = parse_program(
            """
            K: X = Mk_CountryT(N) <= X in CountryT, N = X.name;
            K2: X = Mk_StateT(N) <= X in StateT, N = X.name;
            T: X in CountryT, X.name = E.name, S.capital = Y
               <= E in CountryE, S in StateT, Y in CityT;
            """,
            classes=["CountryE", "CountryT", "StateT", "CityT"])
        with pytest.raises(NormalizationError):
            normalize(program, cities.euro_schema().schema,
                      cities.target_schema().schema)


class TestOptionalAttributes:
    def test_optional_attr_not_required_for_completeness(self):
        from repro.model import Schema, record, STR, set_of
        source = Schema.of("S", Item=record(name=STR, note=set_of(STR)))
        target = Schema.of("T", Out=record(name=STR, note=STR))
        program = parse_program(
            """
            K: X = Mk_Out(N) <= X in Out, N = X.name;
            P: X in Out, X.name = N <= I in Item, N = I.name;
            A: X.note = V <= X in Out, I in Item, X.name = I.name,
               V in I.note;
            """,
            classes=["Item", "Out"])
        normalized = normalize(
            program, source, target,
            options=NormalizationOptions(
                optional_attributes=frozenset({("Out", "note")})))
        # Both the bare producer and the producer+assigner merge emitted.
        assert normalized.report.normal_clauses == 2
        assert normalized.report.uncovered == {}

    def test_without_marking_attr_is_gated(self):
        from repro.model import Schema, record, STR, set_of
        source = Schema.of("S", Item=record(name=STR, note=set_of(STR)))
        target = Schema.of("T", Out=record(name=STR, note=STR))
        program = parse_program(
            """
            K: X = Mk_Out(N) <= X in Out, N = X.name;
            P: X in Out, X.name = N <= I in Item, N = I.name;
            A: X.note = V <= X in Out, I in Item, X.name = I.name,
               V in I.note;
            """,
            classes=["Item", "Out"])
        normalized = normalize(program, source, target)
        # Only the complete combination is emitted.
        assert normalized.report.normal_clauses == 1
