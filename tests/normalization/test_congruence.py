"""Unit tests for congruence closure and unsatisfiability detection."""

import pytest

from repro.lang import Const, Var, parse_clause
from repro.normalization import Unsatisfiable, congruence_of

CLASSES = ["CityE", "CountryE", "CityT", "CountryT"]


def body(text):
    return parse_clause(f"T = T <= {text};", classes=CLASSES).body


class TestEqualities:
    def test_transitive_variable_merge(self):
        congruence = congruence_of(body("X = Y, Y = Z"))
        assert congruence.same(Var("X"), Var("Z"))

    def test_constant_propagation(self):
        congruence = congruence_of(body('X = Y, Y = "a"'))
        assert congruence.representative(Var("X")) == Const("a")

    def test_distinct_constants_clash(self):
        with pytest.raises(Unsatisfiable):
            congruence_of(body('X = "a", X = "b"'))

    def test_bool_not_int(self):
        # true and 1 are different constants despite Python's bool==int.
        congruence_of(body("X = true, Y = 1"))
        with pytest.raises(Unsatisfiable):
            congruence_of(body("X = true, X = 1"))


class TestProjectionFunctionality:
    def test_same_projection_merges_results(self):
        congruence = congruence_of(
            body("E in CityE, V = E.name, W = E.name"))
        assert congruence.same(Var("V"), Var("W"))

    def test_projection_through_merged_subjects(self):
        congruence = congruence_of(
            body("E in CityE, F in CityE, E = F, V = E.name, W = F.name"))
        assert congruence.same(Var("V"), Var("W"))

    def test_lookup_projection(self):
        congruence = congruence_of(body("E in CityE, V = E.name"))
        assert congruence.lookup_projection(Var("E"), "name") == Var("V")
        assert congruence.lookup_projection(Var("E"), "zip") is None


class TestConstructorInjectivity:
    def test_variant_injectivity(self):
        congruence = congruence_of(
            body("X = ins_a(V), X = ins_a(W)"))
        assert congruence.same(Var("V"), Var("W"))

    def test_variant_label_clash(self):
        with pytest.raises(Unsatisfiable):
            congruence_of(body("X = ins_a(V), X = ins_b(W)"))

    def test_skolem_injectivity(self):
        congruence = congruence_of(
            body("X = Mk_CountryT(V), X = Mk_CountryT(W)"))
        assert congruence.same(Var("V"), Var("W"))

    def test_skolem_class_clash(self):
        with pytest.raises(Unsatisfiable):
            congruence_of(body("X = Mk_CountryT(V), X = Mk_CityT(W)"))

    def test_record_injectivity(self):
        congruence = congruence_of(
            body("X = (a = V, b = W), X = (a = P, b = Q)"))
        assert congruence.same(Var("V"), Var("P"))
        assert congruence.same(Var("W"), Var("Q"))

    def test_record_label_clash(self):
        with pytest.raises(Unsatisfiable):
            congruence_of(body("X = (a = V), X = (b = W)"))

    def test_constant_vs_construction_clash(self):
        with pytest.raises(Unsatisfiable):
            congruence_of(body('X = ins_a(V), X = "str"'))

    def test_injectivity_cascades(self):
        congruence = congruence_of(
            body("X = ins_a(V), Y = ins_a(W), X = Y, V = P"))
        assert congruence.same(Var("W"), Var("P"))


class TestMemberships:
    def test_two_classes_clash(self):
        with pytest.raises(Unsatisfiable):
            congruence_of(body("X in CityE, X in CountryE"))

    def test_merged_into_two_classes_clash(self):
        with pytest.raises(Unsatisfiable):
            congruence_of(body("X in CityE, Y in CountryE, X = Y"))

    def test_constant_member_clash(self):
        with pytest.raises(Unsatisfiable):
            congruence_of(body('X in CityE, X = "Paris"'))

    def test_classes_of(self):
        congruence = congruence_of(body("X in CityE, Y = X"))
        assert congruence.classes_of(Var("Y")) == {"CityE"}


class TestDisequalitiesAndComparisons:
    def test_neq_violated(self):
        with pytest.raises(Unsatisfiable):
            congruence_of(body("X != Y, X = Y"))

    def test_neq_ok(self):
        congruence_of(body("X != Y"))

    def test_false_constant_comparison(self):
        with pytest.raises(Unsatisfiable):
            congruence_of(body("X = 2, Y = 1, X < Y"))

    def test_true_constant_comparison(self):
        congruence_of(body("X = 1, Y = 2, X < Y"))

    def test_irreflexive_lt(self):
        with pytest.raises(Unsatisfiable):
            congruence_of(body("X = Y, X < Y"))

    def test_leq_reflexive_ok(self):
        congruence_of(body("X = Y, X =< Y"))


class TestKeyMerging:
    KEYS = {"CountryE": ((("name",),),),
            "CityE": ((("name",), ("country", "name")),)}

    def test_single_path_key_merge(self):
        congruence = congruence_of(
            body("X in CountryE, Y in CountryE, N = X.name, N = Y.name"),
            self.KEYS)
        assert congruence.same(Var("X"), Var("Y"))

    def test_no_merge_without_keys(self):
        congruence = congruence_of(
            body("X in CountryE, Y in CountryE, N = X.name, N = Y.name"))
        assert not congruence.same(Var("X"), Var("Y"))

    def test_compound_key_needs_all_paths(self):
        # Same name but country names unknown: no merge.
        congruence = congruence_of(
            body("X in CityE, Y in CityE, N = X.name, N = Y.name"),
            self.KEYS)
        assert not congruence.same(Var("X"), Var("Y"))

    def test_compound_key_merges_with_all_paths(self):
        congruence = congruence_of(
            body("X in CityE, Y in CityE, N = X.name, N = Y.name,"
                 " C = X.country, D = Y.country, M = C.name, M = D.name"),
            self.KEYS)
        assert congruence.same(Var("X"), Var("Y"))

    def test_key_merge_cascades_into_congruence(self):
        congruence = congruence_of(
            body("X in CountryE, Y in CountryE, N = X.name, N = Y.name,"
                 " L1 = X.language, L2 = Y.language"),
            self.KEYS)
        assert congruence.same(Var("L1"), Var("L2"))

    def test_alternative_keys(self):
        # Either key alone suffices to merge.
        keys = {"CountryE": ((("name",),), (("currency",),))}
        congruence = congruence_of(
            body("X in CountryE, Y in CountryE, C = X.currency,"
                 " C = Y.currency"),
            keys)
        assert congruence.same(Var("X"), Var("Y"))


class TestConstConstructedOrderIndependence:
    """Regression pins for the Hypothesis falsifiers: const-vs-constructed
    clash detection must fire in *every* atom/argument order."""

    def test_const_equals_variant_both_atom_orders(self):
        # Falsifier #1: X in CityE, 0 = <a: X> — Unsatisfiable no matter
        # where the membership atom sits.
        from repro.lang.ast import EqAtom, MemberAtom, VariantTerm
        member = MemberAtom(Var("X"), "CityE")
        clash = EqAtom(Const(0), VariantTerm("a", Var("X")))
        for atoms in ([member, clash], [clash, member]):
            with pytest.raises(Unsatisfiable):
                congruence_of(atoms)

    def test_const_meets_construction_in_either_union_order(self):
        # Falsifier #2: X = 0, X = <a: Y> — whichever side of the union
        # carries the construction when the constant becomes the root.
        from repro.lang.ast import EqAtom, VariantTerm
        to_const = EqAtom(Var("X"), Const(0))
        to_variant = EqAtom(Var("X"), VariantTerm("a", Var("Y")))
        for atoms in ([to_const, to_variant], [to_variant, to_const]):
            with pytest.raises(Unsatisfiable):
                congruence_of(atoms)

    def test_variant_constant_decomposes_instead_of_clashing(self):
        # A *variant-valued* constant is not a clash: the construction
        # decomposes against it, binding the payload — in both orders.
        from repro.lang.ast import EqAtom, VariantTerm
        from repro.model.values import Variant
        decompose = EqAtom(Const(Variant("a", 7)), VariantTerm("a", Var("X")))
        payload = EqAtom(Var("X"), Const(7))
        for atoms in ([decompose], [decompose, payload],
                      [payload, decompose]):
            congruence = congruence_of(atoms)
            assert congruence.representative(Var("X")) == Const(7)

    def test_variant_constant_label_mismatch(self):
        from repro.lang.ast import EqAtom, VariantTerm
        from repro.model.values import Variant
        with pytest.raises(Unsatisfiable):
            congruence_of(
                [EqAtom(Const(Variant("b", 7)), VariantTerm("a", Var("X")))])

    def test_variant_constant_payload_clash_through_union(self):
        from repro.lang.ast import EqAtom, VariantTerm
        from repro.model.values import Variant
        decompose = EqAtom(Const(Variant("a", 7)), VariantTerm("a", Var("X")))
        other = EqAtom(Var("X"), Const(8))
        for atoms in ([decompose, other], [other, decompose]):
            with pytest.raises(Unsatisfiable):
                congruence_of(atoms)

    def test_record_constant_decomposes_fieldwise(self):
        from repro.lang.ast import EqAtom, RecordTerm
        from repro.model.values import Record
        term = RecordTerm((("a", Var("X")), ("b", Var("Y"))))
        constant = Const(Record((("a", 1), ("b", 2))))
        for atoms in ([EqAtom(constant, term)],
                      [EqAtom(Var("Z"), term), EqAtom(Var("Z"), constant)],
                      [EqAtom(Var("Z"), constant), EqAtom(Var("Z"), term)]):
            congruence = congruence_of(atoms)
            assert congruence.representative(Var("X")) == Const(1)
            assert congruence.representative(Var("Y")) == Const(2)

    def test_scalar_constant_never_equals_record(self):
        from repro.lang.ast import EqAtom, RecordTerm
        term = RecordTerm((("a", Var("X")),))
        first = EqAtom(Var("Z"), term)
        second = EqAtom(Var("Z"), Const("scalar"))
        for atoms in ([first, second], [second, first]):
            with pytest.raises(Unsatisfiable):
                congruence_of(atoms)
