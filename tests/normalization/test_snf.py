"""Unit tests for semi-normal form conversion (paper Section 5)."""

import pytest

from repro.lang import (EqAtom, InAtom, MemberAtom, Proj, SkolemTerm, Var,
                        parse_clause)
from repro.normalization import is_snf_atom, is_snf_clause, snf_clause
from repro.normalization.snf import AUX_PREFIX

CLASSES = ["CityA", "StateA", "CityE", "CountryE", "CityT", "CountryT",
           "StateT"]


def clause(text):
    return parse_clause(text, classes=CLASSES)


class TestSnfShapes:
    def test_flat_clause_unchanged(self):
        c = clause("X.state = Y <= Y in StateA, X = Y.capital;")
        out = snf_clause(c)
        assert is_snf_clause(out)
        # Originally flat atoms survive structurally.
        assert MemberAtom(Var("Y"), "StateA") in out.body

    def test_projection_chain_flattened(self):
        c = clause("T = T <= E in CityE, E.country.name = N;")
        out = snf_clause(c)
        assert is_snf_clause(out)
        # One auxiliary for the intermediate E.country.
        aux = [a for a in out.body
               if isinstance(a, EqAtom) and isinstance(a.right, Proj)
               and a.right.attr == "country"]
        assert len(aux) == 1
        assert aux[0].left.name.startswith(AUX_PREFIX)

    def test_skolem_args_flattened(self):
        c = clause("X = Mk_CityT(name = E.name, place = ins_euro_city(C))"
                   " <= E in CityE, C in CountryT;")
        out = snf_clause(c)
        assert is_snf_clause(out)
        skolems = [a for a in out.head + out.body
                   if isinstance(a, EqAtom)
                   and isinstance(a.right, SkolemTerm)]
        assert len(skolems) == 1
        for _, arg in skolems[0].right.args:
            assert isinstance(arg, Var)

    def test_nested_variant_flattened(self):
        c = clause("T = T <= E in CityE, X = ins_wrap(ins_inner(E));")
        out = snf_clause(c)
        assert is_snf_clause(out)

    def test_comparison_sides_flattened(self):
        c = clause("T = T <= X in CityE, Y in CityE, X.name < Y.name;")
        out = snf_clause(c)
        assert is_snf_clause(out)

    def test_constant_equation(self):
        c = clause('T = T <= X in CityE, X.name = "Paris";')
        out = snf_clause(c)
        assert is_snf_clause(out)

    def test_set_membership_collection_flattened(self):
        c = clause("T = T <= X in CityE, N in X.tags;")
        out = snf_clause(c)
        assert is_snf_clause(out)
        assert any(isinstance(a, InAtom) and isinstance(a.collection, Var)
                   for a in out.body)

    def test_idempotent(self):
        c = clause("Y in CityT, Y.name = E.name,"
                   " Y.place = ins_euro_city(X)"
                   " <= E in CityE, X in CountryT,"
                   " X.name = E.country.name;")
        once = snf_clause(c)
        twice = snf_clause(once)
        assert once.head == twice.head
        assert once.body == twice.body


class TestHeadBodySplit:
    def test_source_reads_move_to_body(self):
        c = clause("Y in CityT, Y.name = E.name <= E in CityE;")
        out = snf_clause(c)
        # The E.name read is evaluable from the body and moves there.
        reads = [a for a in out.body
                 if isinstance(a, EqAtom) and isinstance(a.right, Proj)
                 and isinstance(a.right.subject, Var)
                 and a.right.subject.name == "E"]
        assert len(reads) == 1
        # The assignment to the created object stays in the head.
        assigns = [a for a in out.head
                   if isinstance(a, EqAtom) and isinstance(a.right, Proj)
                   and a.right.subject.name == "Y"]
        assert len(assigns) == 1

    def test_assignments_stay_in_head(self):
        c = clause("X.capital = Y <= X in CountryT, Y in CityT;")
        out = snf_clause(c)
        assert any(isinstance(a, EqAtom) and isinstance(a.right, Proj)
                   for a in out.head)

    def test_membership_stays_in_head(self):
        c = clause("Y in CityT <= E in CityE;")
        out = snf_clause(c)
        assert out.head == (MemberAtom(Var("Y"), "CityT"),)

    def test_skolem_identity_stays_in_head(self):
        c = clause("X = Mk_CountryT(N) <= E in CountryE, N = E.name;")
        out = snf_clause(c)
        assert any(isinstance(a, EqAtom)
                   and isinstance(a.right, SkolemTerm)
                   for a in out.head)

    def test_test_on_body_var_stays_in_head(self):
        # N is a body variable: the head atom is an assertion, not a
        # definition, so it must not move.
        c = clause('N = "x" <= E in CityE, N = E.name;')
        out = snf_clause(c)
        assert len(out.head) == 1

    def test_variant_construction_from_body_moves(self):
        c = clause("Y in CityT, Y.place = ins_euro_city(X)"
                   " <= E in CityE, X in CountryT;")
        out = snf_clause(c)
        constructions = [a for a in out.body
                         if isinstance(a, EqAtom)
                         and not isinstance(a.right, (Var, Proj))]
        assert len(constructions) == 1

    def test_name_and_kind_preserved(self):
        c = parse_clause("transformation T1: X in CountryT"
                         " <= E in CountryE;", classes=CLASSES)
        out = snf_clause(c)
        assert out.name == "T1"
        assert out.kind == "transformation"


class TestSnfAtomPredicate:
    def test_flat_atoms(self):
        assert is_snf_atom(parse_clause("X = Y <= X in CityA;",
                                        classes=CLASSES).head[0])

    def test_deep_atom_rejected(self):
        c = clause("T = T <= X in CityE, X.country.name = N;")
        deep = c.body[1]
        assert not is_snf_atom(deep)
