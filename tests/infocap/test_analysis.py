"""Unit tests for information-capacity analysis (paper Section 4.3)."""

import pytest

from repro.infocap import (check_injectivity, check_preservation,
                           filter_by_constraints)
from repro.lang import parse_program
from repro.morphase import Morphase
from repro.workloads import persons


@pytest.fixture(scope="module")
def morphase():
    return Morphase([persons.person_schema()], persons.evolved_schema(),
                    persons.PROGRAM_TEXT)


@pytest.fixture(scope="module")
def transform(morphase):
    def run(instance):
        return morphase.transform(instance).target
    return run


def constraint_clauses(morphase):
    return morphase.compile().source_constraints


class TestInjectivity:
    def test_injective_on_wellformed_couples(self, transform):
        family = [persons.generate_instance(n) for n in range(1, 5)]
        report = check_injectivity(transform, family)
        assert report.injective
        assert report.total

    def test_paper_counterexample(self, transform):
        """Sources violating (C11) collide (Example 4.2's point)."""
        family = [persons.asymmetric_instance(),
                  persons.symmetric_variant_of_asymmetric()]
        report = check_injectivity(transform, family)
        assert not report.injective
        (witness,) = report.failures
        assert witness.image.class_sizes()["Marriage"] == 1

    def test_stop_at_first(self, transform):
        family = [persons.asymmetric_instance(),
                  persons.symmetric_variant_of_asymmetric(),
                  persons.asymmetric_instance()]
        report = check_injectivity(transform, family, stop_at_first=True)
        assert len(report.failures) == 1

    def test_errors_recorded_not_raised(self):
        def broken(instance):
            raise RuntimeError("boom")
        report = check_injectivity(
            broken, [persons.sample_instance()])
        assert not report.total
        assert report.errors[0][1] == "boom"

    def test_isomorphic_sources_not_counterexamples(self, transform):
        family = [persons.couples_instance([("A", "B")]),
                  persons.couples_instance([("A", "B")])]
        report = check_injectivity(transform, family)
        assert report.injective


class TestConstraintFiltering:
    def test_filter_keeps_constrained(self, morphase):
        constraints = constraint_clauses(morphase)
        family = [persons.sample_instance(),
                  persons.asymmetric_instance()]
        kept = filter_by_constraints(family, constraints)
        assert len(kept) == 1

    def test_preservation_report(self, morphase, transform):
        constraints = constraint_clauses(morphase)
        family = [
            persons.generate_instance(1),
            persons.generate_instance(2),
            persons.asymmetric_instance(),
            persons.symmetric_variant_of_asymmetric(),
        ]
        report = check_preservation(transform, family, constraints)
        assert not report.unconstrained.injective
        assert report.constrained.injective
        assert report.constrained_count == 2
        assert "NOT injective" in report.summary()
