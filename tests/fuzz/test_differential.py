"""Cross-engine differential fuzzing (the parallel PR's safety net).

Six semantically-equivalent execution paths now coexist: the naive
dynamic matcher, the planned path (scalar and columnar), the CPL
translation, the incremental delta engine and the parallel sharded
engine.  This suite generates random schemas (attribute width varies),
instances and deltas with Hypothesis and holds every pair of engines to
*byte-equal* serialised targets and *equal* violation sets — the
strongest oracle the JSON interchange format supports.

All generated source objects are Skolem-keyed, so serialisations are
stable across runs and processes (anonymous oids would embed unstable
serials).  The parallel engine runs its shard pipeline in-process here
(``use_processes=False``): shard compilation, restricted enumeration
and merging are identical to the process-pool path, which is pinned
separately by ``tests/engine/test_parallel.py`` and a low-volume
process test below.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.engine import execute_parallel, audit_parallel
from repro.constraints.library import schema_constraints
from repro.io.json_io import instance_to_json
from repro.evolution.delta import Delta
from repro.model import InstanceBuilder, Record
from repro.model.schema import parse_schema
from repro.model.values import Oid, WolSet
from repro.morphase import Morphase
from repro.semantics.satisfaction import program_violations


def serialized(instance) -> str:
    return json.dumps(instance_to_json(instance), sort_keys=True)


# ----------------------------------------------------------------------
# Generated universe: a two-class source, a keyed target with a
# set-accumulating link class, and the program between them.
# ----------------------------------------------------------------------

def source_schema_text(width: int) -> str:
    vals = ", ".join(f"v{i}: int" for i in range(width))
    return f"""
    schema Src {{
      class A = (name: str, {vals});
      class B = (name: str, ref: A, w: int);
    }}
    """


def target_schema_text(width: int) -> str:
    vals = ", ".join(f"v{i}: int" for i in range(width))
    return f"""
    schema Tgt {{
      class AT = (name: str, {vals}) key name;
      class BT = (name: str, ref: AT, w: int) key name;
      class LT = (a: AT, ws: {{int}}) key a.name;
    }}
    """


def program_text(width: int) -> str:
    heads = ", ".join(f"X.v{i} = V{i}" for i in range(width))
    bodies = ", ".join(f"V{i} = A.v{i}" for i in range(width))
    return f"""
    transformation TA:
      X in AT, X.name = N, {heads}
      <= A in A, N = A.name, {bodies};

    transformation TB:
      Y in BT, Y.name = M, Y.ref = X, Y.w = W
      <= B in B, M = B.name, W = B.w, A = B.ref,
         X in AT, X.name = A.name;

    transformation TL:
      L in LT, L.a = X, W in L.ws
      <= B in B, W = B.w, A = B.ref, X in AT, X.name = A.name;
    """


@st.composite
def universes(draw):
    """A generated (schema width, source instance, delta) triple.

    Object names are index-unique (Hypothesis varies counts and
    payloads, not key collisions — conflicting keyed inserts are a
    *program* property tested separately), and every generated object
    is keyed so serialisations are byte-stable.  The delta inserts new
    A/B objects, rewrites existing Bs (payload or reference) and
    deletes Bs — reference targets are always drawn from A objects that
    survive, keeping the updated instance well-formed.
    """
    width = draw(st.integers(min_value=1, max_value=3))
    a_count = draw(st.integers(min_value=0, max_value=6))
    a_payloads = draw(st.lists(
        st.tuples(*([st.integers(-5, 5)] * width)),
        min_size=a_count, max_size=a_count))
    b_count = draw(st.integers(min_value=0, max_value=8))
    b_specs = draw(st.lists(
        st.tuples(st.integers(0, max(a_count - 1, 0)),
                  st.integers(-9, 9)),
        min_size=b_count, max_size=b_count)) if a_count else []

    schema = parse_schema(source_schema_text(width))
    builder = InstanceBuilder(schema)
    a_oids = []
    for index, payload in enumerate(a_payloads):
        fields = {"name": f"a{index}"}
        fields.update({f"v{i}": payload[i] for i in range(width)})
        a_oids.append(builder.make("A", f"a{index}",
                                   Record.of(**fields)))
    b_oids = []
    for index, (ref, w) in enumerate(b_specs):
        b_oids.append(builder.make("B", f"b{index}", Record.of(
            name=f"b{index}", ref=a_oids[ref], w=w)))
    source = builder.freeze()

    # Delta: mutate only B (plus fresh A inserts), so deletions never
    # dangle and inserts never collide with existing keys.
    new_a = draw(st.integers(min_value=0, max_value=2))
    inserts_a = {}
    for index in range(new_a):
        name = f"na{index}"
        fields = {"name": name}
        fields.update({f"v{i}": draw(st.integers(-5, 5))
                       for i in range(width)})
        inserts_a[Oid.keyed("A", name)] = Record.of(**fields)
    all_a = a_oids + list(inserts_a)

    deletable = list(b_oids)
    delete_count = draw(st.integers(0, len(deletable))) if deletable else 0
    deletes_b = tuple(deletable[:delete_count])
    survivors = deletable[delete_count:]
    updates_b = {}
    for oid in survivors:
        if not draw(st.booleans()):
            continue
        ref = all_a[draw(st.integers(0, len(all_a) - 1))] if all_a \
            else None
        if ref is None:
            continue
        updates_b[oid] = Record.of(
            name=source.value_of(oid).get("name"), ref=ref,
            w=draw(st.integers(-9, 9)))
    inserts_b = {}
    if all_a:
        for index in range(draw(st.integers(0, 2))):
            name = f"nb{index}"
            inserts_b[Oid.keyed("B", name)] = Record.of(
                name=name,
                ref=all_a[draw(st.integers(0, len(all_a) - 1))],
                w=draw(st.integers(-9, 9)))

    delta = Delta(
        inserts={cname: group for cname, group in
                 (("A", inserts_a), ("B", inserts_b)) if group},
        deletes={"B": deletes_b} if deletes_b else {},
        updates={"B": updates_b} if updates_b else {})
    return width, source, delta


def build_morphase(width: int) -> Morphase:
    return Morphase([parse_schema(source_schema_text(width))],
                    parse_schema(target_schema_text(width)),
                    program_text(width))


# ----------------------------------------------------------------------
# Transform engines agree
# ----------------------------------------------------------------------

class TestTransformEngines:
    @settings(max_examples=40, deadline=None)
    @given(universes())
    def test_naive_planned_parallel_cpl_byte_equal(self, universe):
        width, source, _ = universe
        morphase = build_morphase(width)
        columnar = morphase.transform(source).target
        scalar = morphase.transform(source, columnar=False).target
        naive = morphase.transform(source, use_planner=False).target
        cpl = morphase.transform(source, backend="cpl").target
        baseline = serialized(columnar)
        assert serialized(scalar) == baseline
        assert serialized(naive) == baseline
        assert serialized(cpl) == baseline
        for workers, columnar_flag in ((2, True), (5, False)):
            parallel, stats = execute_parallel(
                morphase.compile().program(),
                morphase._merge_sources(source),
                morphase.target_plain, workers, use_processes=False,
                columnar=columnar_flag)
            assert serialized(parallel) == baseline
            assert stats.shards_run == workers

    @settings(max_examples=40, deadline=None)
    @given(universes())
    def test_incremental_matches_recompute_and_parallel(self, universe):
        width, source, delta = universe
        morphase = build_morphase(width)
        state = morphase.begin_incremental(source)
        result = morphase.apply_delta(state, delta)
        scalar_state = morphase.begin_incremental(source, columnar=False)
        scalar_result = morphase.apply_delta(scalar_state, delta)
        updated_source = delta.apply_to(
            morphase._merge_sources(source))
        recomputed = morphase.transform(updated_source).target
        assert serialized(result.target) == serialized(recomputed)
        assert serialized(scalar_result.target) == serialized(recomputed)
        parallel, _ = execute_parallel(
            morphase.compile().program(), updated_source,
            morphase.target_plain, 3, use_processes=False)
        assert serialized(parallel) == serialized(recomputed)

    @settings(max_examples=5, deadline=None)
    @given(universes())
    def test_process_pool_byte_equal(self, universe):
        """Low-volume pin of the real cross-process path."""
        width, source, _ = universe
        morphase = build_morphase(width)
        sequential = morphase.transform(source).target
        parallel = morphase.transform(source, parallel=2).target
        assert serialized(parallel) == serialized(sequential)


# ----------------------------------------------------------------------
# Columnar vs scalar on a mixed vectorizable/fallback program
# ----------------------------------------------------------------------

MIXED_SRC_TEXT = """
schema MSrc {
  class C = (name: str, pt: (x: int, y: int));
}
"""

MIXED_TGT_TEXT = """
schema MTgt {
  class CT = (name: str, x: int, y: int) key name;
}
"""

#: The record-pattern equation ``(x = X, y = Y) = C.pt`` needs
#: per-candidate unification, so its plan step is a scalar fallback
#: sandwiched between vectorizable stages — the batch must survive the
#: round-trip through row-at-a-time enumeration.
MIXED_PROGRAM_TEXT = """
transformation TC:
  Z in CT, Z.name = M, Z.x = X, Z.y = Y
  <= C in C, M = C.name, (x = X, y = Y) = C.pt;
"""


class TestMixedVectorizability:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(-9, 9), st.integers(-9, 9)),
                    min_size=1, max_size=8))
    def test_fallback_steps_preserve_byte_equality(self, points):
        schema = parse_schema(MIXED_SRC_TEXT)
        builder = InstanceBuilder(schema)
        for index, (x, y) in enumerate(points):
            builder.make("C", f"c{index}", Record.of(
                name=f"c{index}", pt=Record.of(x=x, y=y)))
        source = builder.freeze()
        morphase = Morphase([schema], parse_schema(MIXED_TGT_TEXT),
                            MIXED_PROGRAM_TEXT)
        columnar = morphase.transform(source)
        scalar = morphase.transform(source, columnar=False)
        assert serialized(columnar.target) == serialized(scalar.target)
        # The clause genuinely mixes modes: batches formed AND the
        # pattern equation fell back to the row-at-a-time path.
        assert columnar.stats.vectorized_steps > 0
        assert columnar.stats.fallback_steps > 0
        assert scalar.stats.vectorized_steps == 0
        # Effect counts agree — fallback re-entry neither duplicates
        # nor drops work.
        assert (columnar.stats.objects_created
                == scalar.stats.objects_created)
        assert (columnar.stats.attributes_set
                == scalar.stats.attributes_set)


# ----------------------------------------------------------------------
# Audit engines agree
# ----------------------------------------------------------------------

class TestAuditEngines:
    @settings(max_examples=40, deadline=None)
    @given(universes(), st.booleans())
    def test_violation_sets_equal(self, universe, corrupt):
        width, source, _ = universe
        morphase = build_morphase(width)
        target = morphase.transform(source).target
        if corrupt and len(target.objects_of("AT")) >= 2:
            # Duplicate one AT's key attribute onto another: the
            # schema-derived key-uniqueness constraints must fire, and
            # every audit engine must report the same counterexamples.
            builder = target.builder()
            ats = sorted(target.objects_of("AT"), key=str)
            builder.put(ats[0], target.value_of(ats[0]).with_field(
                "name", target.value_of(ats[1]).get("name")))
            target = builder.freeze(validate=False)
        constraints = schema_constraints(
            parse_schema(target_schema_text(width)))
        planned = sorted(str(v) for v in program_violations(
            target, constraints, limit_per_clause=None))
        naive = sorted(str(v) for v in program_violations(
            target, constraints, limit_per_clause=None,
            use_planner=False))
        assert naive == planned
        scalar = sorted(str(v) for v in program_violations(
            target, constraints, limit_per_clause=None,
            columnar=False))
        assert scalar == planned
        result = audit_parallel(constraints, target, 3,
                                use_processes=False)
        parallel = sorted(str(v)
                          for v in result.violations(constraints))
        assert parallel == planned

    @settings(max_examples=40, deadline=None)
    @given(universes())
    def test_link_class_set_union_across_engines(self, universe):
        """LT.ws accumulates one element per B firing; shard merging
        must union them exactly (a lost element would change bytes)."""
        width, source, _ = universe
        morphase = build_morphase(width)
        planned = morphase.transform(source).target
        parallel, _ = execute_parallel(
            morphase.compile().program(),
            morphase._merge_sources(source),
            morphase.target_plain, 4, use_processes=False)
        for oid in planned.objects_of("LT"):
            expected = planned.value_of(oid).get("ws")
            actual = parallel.value_of(oid).get("ws")
            assert isinstance(expected, WolSet)
            assert actual == expected
