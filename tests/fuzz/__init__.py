"""Cross-engine differential fuzzing."""
