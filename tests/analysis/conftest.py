"""Shared fixtures for the static-analyzer suite."""

import pytest

from repro.analysis import analyze_text
from repro.model.schema import parse_schema

from .universe import SRC_TEXT, TGT_TEXT


@pytest.fixture(scope="session")
def src_schema():
    return parse_schema(SRC_TEXT)


@pytest.fixture(scope="session")
def tgt_schema():
    return parse_schema(TGT_TEXT)


@pytest.fixture(scope="session")
def lint(src_schema, tgt_schema):
    """``lint(text) -> DiagnosticReport`` over the Item/Out universe."""
    def run(text, sources=None, target=tgt_schema):
        return analyze_text(text, sources or [src_schema], target)
    return run
