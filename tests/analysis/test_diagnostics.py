"""Mechanics of the diagnostics framework itself.

The code registry, severity ordering, report rendering and the inline
suppression directives — everything downstream (CLI, preflight,
service) builds on these invariants.
"""

import json
import re

from repro.analysis import (CODES, Diagnostic, DiagnosticReport,
                            SEVERITY_RANK, merge_reports,
                            parse_suppressions)
from repro.analysis.diagnostics import (SEVERITY_ERROR, SEVERITY_INFO,
                                        SEVERITY_WARNING)
from repro.analysis.suppress import is_suppressed


class TestRegistry:
    def test_every_code_is_wol_numbered_and_complete(self):
        for code, info in CODES.items():
            assert re.fullmatch(r"WOL\d{3}", code)
            assert info.code == code
            assert info.severity in SEVERITY_RANK
            assert info.title and info.meaning

    def test_families_cover_all_passes(self):
        families = {code[:4] + "0" for code in CODES} - {"WOL10"}
        assert families == {"WOL20", "WOL30", "WOL40", "WOL50"}
        assert "WOL100" in CODES  # the analyzer's own entry gate
        assert "WOL500" in CODES  # the program validator's entry gate

    def test_severity_order(self):
        assert (SEVERITY_RANK[SEVERITY_ERROR]
                > SEVERITY_RANK[SEVERITY_WARNING]
                > SEVERITY_RANK[SEVERITY_INFO])


def _sample_report():
    return DiagnosticReport(diagnostics=[
        Diagnostic("WOL204", "unused variable A", clause="C2",
                   clause_index=2),
        Diagnostic("WOL101", "unbound variable N", clause="C1",
                   clause_index=1, suggestion="bind N in the body"),
        Diagnostic("WOL301", "conflicting writes", clause="C1",
                   clause_index=1),
    ], passes_run=("safety", "interference"))


class TestReport:
    def test_deterministic_order_and_counts(self):
        report = _sample_report()
        assert [d.code for d in report.diagnostics] == [
            "WOL101", "WOL301", "WOL204"]
        assert report.counts() == {"error": 1, "warning": 1, "info": 1}
        assert report.max_severity() == "error"
        assert not report.ok

    def test_at_or_above_threshold(self):
        report = _sample_report()
        assert [d.code for d in report.at_or_above("error")] == ["WOL101"]
        assert [d.code for d in report.at_or_above("warning")] == [
            "WOL101", "WOL301"]
        assert len(report.at_or_above("info")) == 3

    def test_render_text_shape(self):
        text = _sample_report().render_text("prog.wol")
        first, *rest = text.splitlines()
        assert first == ("prog.wol: 3 diagnostic(s) "
                         "(1 error, 1 warning, 1 info), 0 suppressed")
        assert any("fix: bind N in the body" in line for line in rest)

    def test_render_clean(self):
        text = DiagnosticReport().render_text()
        assert text.splitlines()[-1] == "  clean"

    def test_to_json_round_trips(self):
        document = _sample_report().to_json()
        json.dumps(document)  # must be serialisable as-is
        assert document["ok"] is False
        assert document["counts"]["error"] == 1
        assert document["passes"] == ["safety", "interference"]
        first = document["diagnostics"][0]
        assert first["code"] == "WOL101"
        assert first["severity"] == "error"
        assert first["title"] == CODES["WOL101"].title

    def test_merge_reports(self):
        merged = merge_reports([_sample_report(), _sample_report()])
        assert len(merged.diagnostics) == 6
        assert merged.passes_run == ("safety", "interference")


class TestSuppressions:
    def test_file_and_clause_scoped(self):
        text = ("-- lint: disable=WOL301\n"
                "# lint: disable=WOL204,WOL303 clause=C6\n"
                "T: X in Out <= I in Item;\n")
        sup = parse_suppressions(text)
        assert sup == frozenset({("WOL301", None), ("WOL204", "C6"),
                                 ("WOL303", "C6")})
        assert is_suppressed(sup, "WOL301", None)
        assert is_suppressed(sup, "WOL301", "anything")
        assert is_suppressed(sup, "WOL204", "C6")
        assert not is_suppressed(sup, "WOL204", "C7")
        assert not is_suppressed(sup, "WOL204", None)

    def test_non_directive_comments_ignored(self):
        assert parse_suppressions("-- a comment\n# another\n") == frozenset()
