"""The tiny Item/Out universe every analyzer trigger test works in."""

SRC_TEXT = ("schema S { class Item = (name: str, a: str, b: str) "
            "key name; }")
TGT_TEXT = "schema T { class Out = (name: str, v: str) key name; }"

#: Key constraint + producer for Out — the clean skeleton.
PREAMBLE = """
constraint KOut: X = Mk_Out(N) <= X in Out, N = X.name;
transformation P0: X in Out, X.name = N, X.v = N
  <= I in Item, N = I.name;
"""


def codes_of(report):
    return sorted({d.code for d in report.diagnostics})
