"""Property tests tying the analyzer's verdicts to runtime behaviour.

Two claims the static passes make are checkable end-to-end:

1. **Soundness of the error gate** — a program the analyzer calls
   error-free compiles and transforms without binding or type errors
   (and a program containing a known-bad clause is always flagged).
2. **Order independence of conflict-free programs** — when the
   interference pass reports no WOL301, permuting the clause order
   yields a byte-identical serialized target.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_text
from repro.io.json_io import instance_to_json
from repro.model import InstanceBuilder, Record
from repro.model.schema import parse_schema
from repro.morphase import Morphase
from repro.workloads import synthetic

from .universe import SRC_TEXT, TGT_TEXT

KOUT = "constraint KOut: X = Mk_Out(N) <= X in Out, N = X.name;"

#: (clause text, analyzer must flag it as an error)
CLAUSE_POOL = [
    ("transformation P0: X in Out, X.name = N, X.v = N\n"
     "  <= I in Item, N = I.name;", False),
    ("transformation WA: Y in Out, Y.name = M, Y.v = M\n"
     "  <= I in Item, M = I.a;", False),
    ("transformation BU: Y in Out, Y.name = M, Y.v = M\n"
     "  <= I in Item, J < M;", True),             # WOL101
    ("transformation BT: Y in Out, Y.name = M, Y.v = M\n"
     "  <= I in Item, M = I.missing;", True),     # WOL102
    ("transformation BK: Y in Out, Y.v = V\n"
     "  <= I in Item, V = I.a;", True),           # WOL401
]


def _items_instance(schema, names):
    builder = InstanceBuilder(schema.schema)
    for name in names:
        builder.new("Item", Record.of(name=name, a=name + "-a",
                                      b=name + "-b"))
    return builder.freeze()


@settings(max_examples=30, deadline=None)
@given(picked=st.lists(st.sampled_from(range(len(CLAUSE_POOL))),
                       min_size=1, max_size=4, unique=True),
       names=st.lists(st.text(alphabet="abc", min_size=1, max_size=3),
                      min_size=1, max_size=3, unique=True))
def test_error_free_verdict_means_executable(picked, names):
    source = parse_schema(SRC_TEXT)
    target = parse_schema(TGT_TEXT)
    clauses = [CLAUSE_POOL[i] for i in sorted(picked)]
    text = "\n".join([KOUT] + [clause for clause, _ in clauses])
    report = analyze_text(text, [source], target)
    any_bad = any(bad for _, bad in clauses)
    # Completeness of the pool's labels: a bad clause is always flagged.
    assert (not report.ok) == any_bad
    if report.ok:
        # Soundness: the clean program compiles and transforms without
        # binding/type errors (preflight on — it agrees with the lint).
        morphase = Morphase([source], target, text)
        morphase.transform([_items_instance(source, names)])


@settings(max_examples=15, deadline=None)
@given(data=st.data(),
       names=st.lists(st.text(alphabet="xyz", min_size=1, max_size=3),
                      min_size=1, max_size=4, unique=True))
def test_conflict_free_programs_are_clause_order_independent(data, names):
    width = 3
    source, target = synthetic.wide_schemas(width)
    clause_list = synthetic.wide_program_text(width).splitlines()
    report = analyze_text("\n".join(clause_list), [source], target)
    assert all(d.code != "WOL301" for d in report.diagnostics)

    builder = InstanceBuilder(source.schema)
    for name in names:
        builder.new("Item", Record.of(
            name=name, **{f"a{i}": f"{name}-{i}" for i in range(width)}))
    instance = builder.freeze()

    def run(text):
        result = Morphase([source], target, text).transform([instance])
        return json.dumps(instance_to_json(result.target),
                          sort_keys=True)

    baseline = run("\n".join(clause_list))
    shuffled = data.draw(st.permutations(clause_list))
    assert run("\n".join(shuffled)) == baseline
