"""The analyzer dogfoods: every bundled program must lint clean.

Mirrors the ``workload-lint`` CI job (``python -m repro.analysis``) so
a workload edit that introduces findings fails the test suite locally,
not just in CI.
"""

from repro.analysis import SEVERITY_WARNING
from repro.analysis.__main__ import WORKLOADS, lint_workloads, main


def test_all_bundled_workloads_lint_clean():
    results = lint_workloads()
    assert [name for name, _ in results] == [name for name, _ in WORKLOADS]
    noisy = {name: [str(d) for d in report.at_or_above(SEVERITY_WARNING)]
             for name, report in results
             if report.at_or_above(SEVERITY_WARNING)}
    assert not noisy, f"bundled workloads must lint clean: {noisy}"


def test_example_suppressions_are_recorded_not_silenced():
    """The constraint-determination example carries two intentional
    WOL301 suppressions (C6/C7 both write PlaceT scalars by design)."""
    results = dict(lint_workloads(["example-constraint-determination"]))
    report = results["example-constraint-determination"]
    assert report.diagnostics == []
    assert {d.code for d in report.suppressed} == {"WOL301"}


def test_runner_exit_status(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
