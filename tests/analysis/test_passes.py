"""One firing test per diagnostic code — the analyzer's vocabulary.

Each test presents the smallest program that trips exactly the code
under test (plus whatever co-findings its defect implies) and asserts
the diagnostic anchors to the right clause.  Together they pin every
entry of the :data:`repro.analysis.CODES` registry.
"""

from repro.analysis import CODES, analyze_text
from repro.model.schema import parse_schema

from .universe import PREAMBLE, codes_of


def has(report, code, clause=None):
    for diagnostic in report.diagnostics:
        if diagnostic.code == code and (clause is None
                                        or diagnostic.clause == clause):
            return diagnostic
    raise AssertionError(
        f"expected {code} ({clause or 'any clause'}); got "
        f"{[str(d) for d in report.diagnostics]}")


class TestSafetyPass:
    def test_wol100_parse_error(self, lint):
        report = lint("this is ; not wol {{{")
        assert codes_of(report) == ["WOL100"]
        assert not report.ok

    def test_wol101_not_range_restricted(self, lint):
        report = lint(PREAMBLE + """
transformation B: Y in Out, Y.name = M, Y.v = M
  <= I in Item, J < M;
""")
        assert has(report, "WOL101", clause="B")
        assert not report.ok

    def test_wol102_type_error(self, lint):
        report = lint(PREAMBLE + """
transformation T: Y in Out, Y.name = M, Y.v = M
  <= I in Item, M = I.missing;
""")
        assert has(report, "WOL102", clause="T")
        assert not report.ok

    def test_wol103_unresolved_obligations(self, lint, tgt_schema):
        pair = parse_schema(
            "schema P { class Pair = (name: str) key name; }")
        report = analyze_text("""
constraint KOut: X = Mk_Out(N) <= X in Out, N = X.name;
transformation T: Y in Out, Y.name = N, Y.v = N
  <= M in Pair, M = Mk_Pair(X), N = X.name;
""", [pair], tgt_schema)
        found = has(report, "WOL103", clause="T")
        assert found.severity == "warning"

    def test_wol104_statically_unorderable(self, lint):
        report = lint(PREAMBLE + """
transformation O: Z in Out, Z.name = N, Z.v = W
  <= I in Item, N = I.name, (name = W, a = A, b = I.b) in Item;
""")
        found = has(report, "WOL104", clause="O")
        assert found.severity == "warning"
        assert "waits on" in found.message


class TestDeadCodePass:
    def test_wol201_unsatisfiable_body(self, lint):
        report = lint(PREAMBLE + """
transformation U: Y in Out, Y.name = M, Y.v = M
  <= I in Item, M = I.name, I.a = "x", I.a = "y";
""")
        assert has(report, "WOL201", clause="U")
        assert not report.ok

    def test_wol202_dead_selector(self, lint):
        report = lint("""
constraint KOut: X = Mk_Out(N) <= X in Out, N = X.name;
transformation W: X.v = N <= X in Out, I in Item, N = I.name;
""")
        found = has(report, "WOL202", clause="W")
        assert found.severity == "warning"

    def test_wol203_duplicate_clause(self, lint):
        report = lint(PREAMBLE + """
transformation P1: Y in Out, Y.name = M, Y.v = M
  <= J in Item, M = J.name;
""")
        assert has(report, "WOL203")

    def test_wol204_unused_body_variable(self, lint):
        report = lint("""
constraint KOut: X = Mk_Out(N) <= X in Out, N = X.name;
transformation P0: X in Out, X.name = N, X.v = N
  <= I in Item, N = I.name, A = I.a;
""")
        found = has(report, "WOL204", clause="P0")
        assert found.severity == "info"
        assert report.ok


class TestInterferencePass:
    def test_wol301_conflicting_writes(self, lint):
        report = lint(PREAMBLE.replace(", X.v = N", "") + """
transformation W1: X.v = V <= X in Out, I in Item,
  X.name = I.name, V = I.a;
transformation W2: X.v = V <= X in Out, I in Item,
  X.name = I.name, V = I.b;
""")
        found = has(report, "WOL301")
        assert "(Out, v)" in found.message

    def test_wol301_disjoint_guards_do_not_fire(self, lint):
        """Bodies made exclusive by key congruence stay silent — the
        variant-guard pattern of ``workloads/synthetic.py``."""
        from repro.workloads import synthetic
        source, target = synthetic.variant_schemas(3, 2)
        report = analyze_text(synthetic.variant_split_program_text(3, 2),
                              [source], target)
        assert all(d.code != "WOL301" for d in report.diagnostics)

    def test_wol302_produce_consume_cycle(self, lint):
        report = lint(PREAMBLE + """
transformation R: X in Out, X.name = M, X.v = M
  <= Y in Out, M = Y.v;
""")
        assert has(report, "WOL302", clause="R")

    def test_wol303_not_shardable(self, lint):
        report = lint(PREAMBLE + """
transformation F: X in Out, X.name = N, X.v = N <= N = "fixed";
""")
        found = has(report, "WOL303", clause="F")
        assert found.severity == "info"

    def test_wol304_imprecise_read_set(self, lint, tgt_schema):
        pair = parse_schema(
            "schema P { class Pair = (name: str) key name; }")
        report = analyze_text("""
constraint KOut: X = Mk_Out(N) <= X in Out, N = X.name;
transformation T: Y in Out, Y.name = N, Y.v = N
  <= M in Pair, M = Mk_Pair(X), N = X.name;
""", [pair], tgt_schema)
        assert has(report, "WOL304", clause="T")

    def test_wol305_not_vectorizable(self, lint):
        """A record-pattern generator needs per-candidate unification,
        so the single-step plan has nothing the columnar executor can
        batch."""
        report = lint(PREAMBLE + """
transformation V: X in Out, X.name = N, X.v = N
  <= (name = N, a = A, b = B) in Item;
""")
        found = has(report, "WOL305", clause="V")
        assert found.severity == "info"
        assert "vectorizable" in found.message


class TestSchemaLintPass:
    def test_wol401_key_incomplete_creation(self, lint):
        report = lint("""
constraint KOut: X = Mk_Out(N) <= X in Out, N = X.name;
transformation K: Y in Out, Y.v = V <= I in Item, V = I.a;
""")
        assert has(report, "WOL401", clause="K")
        assert not report.ok

    def test_wol402_unreachable_class(self, lint, tgt_schema):
        ghost = parse_schema("""
schema S2 {
  class Item = (name: str, a: str, b: str) key name;
  class Ghost = (name: str) key name;
}
""")
        report = analyze_text(PREAMBLE, [ghost], tgt_schema)
        found = has(report, "WOL402")
        assert "Ghost" in found.message
        assert found.severity == "info"

    def test_wol403_dangling_skolem_label(self, lint):
        report = lint("""
constraint KOut: X = Mk_Out(nick = N) <= X in Out, N = X.name;
transformation P0: X in Out, X.name = N, X.v = N
  <= I in Item, N = I.name;
""")
        found = has(report, "WOL403", clause="KOut")
        assert "nick" in found.message


class TestSuppressionsEndToEnd:
    CONFLICT = PREAMBLE.replace(", X.v = N", "") + """
transformation W1: X.v = V <= X in Out, I in Item,
  X.name = I.name, V = I.a;
transformation W2: X.v = V <= X in Out, I in Item,
  X.name = I.name, V = I.b;
"""

    def test_directive_moves_finding_to_suppressed(self, lint):
        noisy = lint(self.CONFLICT)
        quiet = lint("-- lint: disable=WOL301\n" + self.CONFLICT)
        assert any(d.code == "WOL301" for d in noisy.diagnostics)
        assert all(d.code != "WOL301" for d in quiet.diagnostics)
        assert any(d.code == "WOL301" for d in quiet.suppressed)


def test_clean_program_is_clean(lint):
    report = lint(PREAMBLE)
    assert report.diagnostics == []
    assert report.ok
    assert set(report.passes_run) == {
        "safety", "deadcode", "interference", "schema"}


def test_every_code_has_a_firing_test():
    """The registry and the firing tests must not drift apart.

    The WOL5xx family belongs to the query-program validator
    (:mod:`repro.program.validate`); its firing tests live in
    ``tests/program/test_validate.py``.  Every other code fires here.
    """
    import pathlib
    here = pathlib.Path(__file__)
    text = here.read_text()
    program_text = (here.parent.parent / "program"
                    / "test_validate.py").read_text()
    for code in CODES:
        source = program_text if code.startswith("WOL5") else text
        assert f'"{code}"' in source, f"no firing test mentions {code}"
