"""Unit tests for the workload modules (paper figures as data)."""

import pytest

from repro.model import isomorphic, satisfies_keys
from repro.morphase import Morphase
from repro.semantics import satisfies_program
from repro.workloads import cities, genome, persons


class TestCitiesWorkload:
    def test_sample_instances_valid(self):
        cities.sample_us_instance().validate()
        cities.sample_euro_instance().validate()

    def test_sample_satisfies_keys(self):
        assert satisfies_keys(cities.sample_euro_instance(),
                              cities.euro_schema().keys)
        assert satisfies_keys(cities.sample_us_instance(),
                              cities.us_schema().keys)

    def test_sample_satisfies_source_constraints(self):
        euro = cities.sample_euro_instance()
        program = cities.integration_program()
        constraints = [program.clause("C4"), program.clause("C5")]
        assert satisfies_program(euro, constraints)

    def test_generator_scales(self):
        inst = cities.generate_euro_instance(10, 5, seed=2)
        inst.validate()
        assert inst.class_sizes() == {"CityE": 50, "CountryE": 10}

    def test_generator_satisfies_constraints(self):
        inst = cities.generate_euro_instance(6, 3, seed=5)
        program = cities.integration_program()
        assert satisfies_program(
            inst, [program.clause("C4"), program.clause("C5")])

    def test_generator_requires_capital(self):
        with pytest.raises(ValueError):
            cities.generate_euro_instance(3, 0)
        with pytest.raises(ValueError):
            cities.generate_us_instance(3, 0)

    def test_us_generator(self):
        inst = cities.generate_us_instance(4, 3, seed=1)
        inst.validate()
        assert inst.class_sizes() == {"CityA": 12, "StateA": 4}


class TestPersonsWorkload:
    def test_sample_valid_and_constrained(self):
        inst = persons.sample_instance()
        inst.validate()
        program = persons.evolution_program()
        constraints = [program.clause("C9"), program.clause("C10"),
                       program.clause("C11")]
        assert satisfies_program(inst, constraints)

    def test_asymmetric_violates_c11(self):
        inst = persons.asymmetric_instance()
        program = persons.evolution_program()
        assert not satisfies_program(inst, [program.clause("C11")])

    def test_generator_scales(self):
        inst = persons.generate_instance(25)
        inst.validate()
        assert inst.class_sizes() == {"Person": 50}


class TestGenomeWorkload:
    def test_sample_source_valid(self):
        genome.source_instance().validate()

    def test_transformation_shape(self):
        from repro.adapters.acedb import schema_of_acedb
        source_schema = schema_of_acedb(genome.sample_acedb())
        morphase = Morphase([source_schema], genome.warehouse_schema(),
                            genome.PROGRAM_TEXT)
        result = morphase.transform(genome.source_instance())
        assert result.target.class_sizes() == {
            "CloneT": 2, "GeneT": 2, "SeqGene": 2, "SequenceT": 3}

    def test_sparser_sources_yield_smaller_warehouses(self):
        from repro.adapters.acedb import schema_of_acedb
        source_schema = schema_of_acedb(genome.sample_acedb())
        morphase = Morphase([source_schema], genome.warehouse_schema(),
                            genome.PROGRAM_TEXT)
        dense = morphase.transform(genome.source_instance(
            genome.generate_acedb(10, 20, 30, sparsity=1.0, seed=4)))
        sparse = morphase.transform(genome.source_instance(
            genome.generate_acedb(10, 20, 30, sparsity=0.4, seed=4)))
        assert (sparse.target.size() < dense.target.size())

    def test_full_sparsity_keeps_everything(self):
        from repro.adapters.acedb import schema_of_acedb
        source_schema = schema_of_acedb(genome.sample_acedb())
        morphase = Morphase([source_schema], genome.warehouse_schema(),
                            genome.PROGRAM_TEXT)
        result = morphase.transform(genome.source_instance(
            genome.generate_acedb(5, 10, 15, sparsity=1.0, seed=9)))
        sizes = result.target.class_sizes()
        assert sizes["GeneT"] == 5
        assert sizes["SequenceT"] == 10
        assert sizes["CloneT"] == 15

    def test_warehouse_exports_to_relational(self):
        from repro.adapters.acedb import schema_of_acedb
        from repro.adapters.relational import export_instance
        source_schema = schema_of_acedb(genome.sample_acedb())
        morphase = Morphase([source_schema], genome.warehouse_schema(),
                            genome.PROGRAM_TEXT)
        result = morphase.transform(genome.source_instance(
            genome.generate_acedb(6, 12, 18, sparsity=0.9, seed=2)))
        database = export_instance(result.target,
                                   genome.WAREHOUSE_TABLES)
        assert database.check_foreign_keys() == []
        assert len(database.table("GeneT")) == \
            result.target.class_sizes()["GeneT"]

    def test_cpl_backend_matches_direct(self):
        from repro.adapters.acedb import schema_of_acedb
        source_schema = schema_of_acedb(genome.sample_acedb())
        morphase = Morphase([source_schema], genome.warehouse_schema(),
                            genome.PROGRAM_TEXT)
        source = genome.source_instance()
        direct = morphase.transform(source, backend="direct")
        via_cpl = morphase.transform(source, backend="cpl")
        assert direct.target.valuations == via_cpl.target.valuations
