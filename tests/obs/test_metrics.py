"""The metrics registry: bucket math, rendering, isolation.

The Prometheus text rendering is wire format for ``GET /metrics`` —
one golden test pins it byte for byte.
"""

import threading

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry, enabled,
                               publish_engine_stats, set_enabled)


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_concurrent_increments_never_lose_updates(self):
        counter = Counter()

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000

    def test_disabled_mutations_are_noops(self):
        counter = Counter()
        gauge = Gauge()
        histogram = Histogram((1.0,))
        set_enabled(False)
        try:
            assert not enabled()
            counter.inc()
            gauge.set(5)
            histogram.observe(0.5)
        finally:
            set_enabled(True)
        assert counter.value == 0
        assert gauge.value == 0
        assert histogram.count == 0


class TestHistogramBuckets:
    def test_observation_lands_in_first_bucket_at_or_above(self):
        histogram = Histogram((0.1, 0.5, 1.0))
        histogram.observe(0.05)   # < 0.1        -> le=0.1
        histogram.observe(0.1)    # == bound     -> le=0.1 (le means <=)
        histogram.observe(0.3)    #              -> le=0.5
        histogram.observe(2.0)    # above all    -> +Inf
        counts, total_sum, count = histogram.snapshot()
        assert counts == (2, 1, 0, 1)
        assert count == 4
        assert total_sum == pytest.approx(2.45)

    def test_cumulative_is_monotonic_and_ends_at_count(self):
        histogram = Histogram((1, 2, 4))
        for value in (0.5, 1.5, 3, 8, 9):
            histogram.observe(value)
        pairs = histogram.cumulative()
        assert pairs == [(1.0, 1), (2.0, 2), (4.0, 3),
                         (float("inf"), 5)]

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram(())


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "help")
        b = registry.counter("x_total", "ignored on re-register")
        assert a is b

    def test_conflicting_reregistration_fails(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "help")
        registry.counter("y_total", "help", ("role",))
        with pytest.raises(ValueError):
            registry.counter("y_total", "help", ("other",))

    def test_labelled_children_are_interned(self):
        registry = MetricsRegistry()
        family = registry.counter("req_total", "h", ("method", "code"))
        family.labels("GET", "200").inc()
        family.labels(method="GET", code="200").inc()
        assert registry.value("req_total",
                              {"method": "GET", "code": "200"}) == 2
        with pytest.raises(ValueError):
            family.labels("GET")  # wrong arity

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", "h", ("k",))
        family.labels("a").inc(7)
        registry.reset()
        assert registry.value("x_total", {"k": "a"}) == 0
        assert registry.get("x_total") is family

    def test_render_golden(self):
        """The exposition format, pinned: HELP/TYPE lines, cumulative
        ``_bucket`` samples with ``le``, ``_sum``/``_count``, label
        escaping, integer formatting."""
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "Requests served.",
                         ("endpoint",)).labels('/que"ry').inc(3)
        registry.gauge("repro_in_flight", "In-flight requests.").set(2)
        histogram = registry.histogram(
            "repro_latency_seconds", "Request latency.",
            buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        assert registry.render() == (
            '# HELP repro_in_flight In-flight requests.\n'
            '# TYPE repro_in_flight gauge\n'
            'repro_in_flight 2\n'
            '# HELP repro_latency_seconds Request latency.\n'
            '# TYPE repro_latency_seconds histogram\n'
            'repro_latency_seconds_bucket{le="0.1"} 1\n'
            'repro_latency_seconds_bucket{le="1"} 2\n'
            'repro_latency_seconds_bucket{le="+Inf"} 3\n'
            'repro_latency_seconds_sum 5.55\n'
            'repro_latency_seconds_count 3\n'
            '# HELP repro_requests_total Requests served.\n'
            '# TYPE repro_requests_total counter\n'
            'repro_requests_total{endpoint="/que\\"ry"} 3\n')


class _FakeStats:
    clauses_run = 4
    bindings_found = 10
    vectorized_steps = 7
    fallback_steps = 0  # zero fields are skipped entirely


class TestEngineStatsBridge:
    def test_publishes_nonzero_fields_per_engine(self):
        registry = MetricsRegistry()
        publish_engine_stats("columnar", _FakeStats(), registry)
        publish_engine_stats("columnar", _FakeStats(), registry)
        label = {"engine": "columnar"}
        assert registry.value("repro_engine_runs_total", label) == 2
        assert registry.value("repro_engine_clauses_total", label) == 8
        assert registry.value("repro_engine_bindings_total",
                              label) == 20
        assert registry.get("repro_engine_fallback_steps_total") is None
