"""Span trees: nesting, the null fast path, rendering."""

from repro.obs.trace import (NULL_SPAN, current_span, current_trace,
                             current_trace_id, render_trace_json, span,
                             start_trace)


class TestNesting:
    def test_spans_nest_under_the_active_trace(self):
        with start_trace("request", endpoint="/query") as trace:
            with span("parse"):
                pass
            with span("execute") as execute:
                execute.set(rows=3)
                with span("step 1"):
                    pass
        root = trace.root
        assert [child.name for child in root.children] \
            == ["parse", "execute"]
        execute_span = root.children[1]
        assert execute_span.attrs == {"rows": 3}
        assert [c.name for c in execute_span.children] == ["step 1"]
        assert root.duration_ms >= execute_span.duration_ms

    def test_untraced_spans_are_null_and_free(self):
        assert current_span() is None
        with span("ignored") as node:
            assert node is NULL_SPAN
            assert not node
            node.set(rows=1)  # no-op, no error
        assert current_trace() is None

    def test_context_restored_after_trace(self):
        with start_trace("outer"):
            assert current_span() is not None
            assert current_trace_id() is not None
        assert current_span() is None
        assert current_trace_id() is None

    def test_adopted_trace_id_propagates(self):
        with start_trace("follower hop", trace_id="abcd1234") as trace:
            assert current_trace_id() == "abcd1234"
        assert trace.to_json()["trace_id"] == "abcd1234"


class TestSerialisation:
    def test_to_json_shape(self):
        with start_trace("t") as trace:
            with span("child", mode="vec"):
                pass
        doc = trace.to_json()
        assert set(doc) == {"trace_id", "root"}
        root = doc["root"]
        assert root["name"] == "t"
        assert isinstance(root["ms"], float)
        child = root["spans"][0]
        assert child["name"] == "child"
        assert child["attrs"] == {"mode": "vec"}

    def test_render_tree_from_json(self):
        doc = {"trace_id": "deadbeef",
               "root": {"name": "GET /query", "ms": 12.5,
                        "spans": [
                            {"name": "parse", "ms": 1.0},
                            {"name": "execute", "ms": 10.0,
                             "attrs": {"rows": 3},
                             "spans": [{"name": "step", "ms": 9.0}]},
                        ]}}
        rendered = render_trace_json(doc)
        lines = rendered.splitlines()
        assert lines[0] == "trace deadbeef · GET /query — 12.50 ms"
        assert lines[1] == "├─ parse — 1.00 ms"
        assert lines[2] == "└─ execute — 10.00 ms  {rows=3}"
        assert lines[3] == "   └─ step — 9.00 ms"

    def test_render_accepts_bare_root(self):
        rendered = render_trace_json({"name": "x", "ms": 1.0})
        assert rendered == "x — 1.00 ms"
