"""The structured event log: JSON lines, trace correlation."""

import io
import json
import logging

from repro.obs.events import (configure_event_log, emit_slow_query,
                              log_event, logger)
from repro.obs.trace import start_trace


def capture_events(stream, level=logging.INFO):
    """Attach a JSON handler to ``stream``; caller must detach."""
    return configure_event_log(stream, level=level)


def parse_lines(stream):
    return [json.loads(line)
            for line in stream.getvalue().splitlines() if line]


class TestEventLog:
    def test_events_render_as_json_lines(self):
        stream = io.StringIO()
        handler = capture_events(stream)
        try:
            log_event("wal_reset", path="/tmp/store",
                      dropped_bytes=123)
        finally:
            logger.removeHandler(handler)
        (event,) = parse_lines(stream)
        assert event["event"] == "wal_reset"
        assert event["level"] == "info"
        assert event["path"] == "/tmp/store"
        assert event["dropped_bytes"] == 123
        assert isinstance(event["ts"], float)
        assert "trace_id" not in event  # nothing was tracing

    def test_active_trace_id_is_attached(self):
        stream = io.StringIO()
        handler = capture_events(stream)
        try:
            with start_trace("request", trace_id="feed1234"):
                emit_slow_query("/query", elapsed_ms=750.1234,
                                threshold_ms=500.0)
        finally:
            logger.removeHandler(handler)
        (event,) = parse_lines(stream)
        assert event["event"] == "slow_query"
        assert event["level"] == "warning"
        assert event["trace_id"] == "feed1234"
        assert event["ms"] == 750.123
        assert event["threshold_ms"] == 500.0
        assert event["endpoint"] == "/query"

    def test_configure_is_idempotent_per_stream(self):
        stream = io.StringIO()
        first = capture_events(stream)
        second = capture_events(stream)
        try:
            assert first is second
            log_event("compaction", snapshot="s-1")
        finally:
            logger.removeHandler(first)
        assert len(parse_lines(stream)) == 1

    def test_below_level_events_are_dropped(self):
        stream = io.StringIO()
        handler = capture_events(stream, level=logging.WARNING)
        try:
            log_event("http_request", level=logging.DEBUG, status=200)
            log_event("http_5xx", level=logging.ERROR, status=500)
        finally:
            logger.removeHandler(handler)
        (event,) = parse_lines(stream)
        assert event["event"] == "http_5xx"
        assert event["level"] == "error"
