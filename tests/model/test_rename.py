"""Unit tests for class renaming across schemas and instances."""

import pytest

from repro.model import (STR, ClassType, InstanceBuilder, Oid, Record,
                         Schema, Variant, WolSet, isomorphic, record,
                         set_of, variant)
from repro.model.rename import (rename_instance_classes,
                                rename_keyed_schema, rename_schema,
                                rename_type)
from repro.workloads import cities


class TestRenameType:
    def test_class_reference(self):
        assert rename_type(ClassType("A"), {"A": "B"}) == ClassType("B")

    def test_nested_references(self):
        ty = record(x=set_of(ClassType("A")),
                    y=variant(l=ClassType("A"), r=STR))
        renamed = rename_type(ty, {"A": "B"})
        assert renamed == record(x=set_of(ClassType("B")),
                                 y=variant(l=ClassType("B"), r=STR))

    def test_unmapped_untouched(self):
        assert rename_type(ClassType("A"), {"X": "Y"}) == ClassType("A")


class TestRenameSchema:
    def test_classes_and_references(self):
        schema = Schema.of(
            "S",
            City=record(name=STR, state=ClassType("State")),
            State=record(name=STR))
        renamed = rename_schema(schema, {"State": "Region"})
        assert renamed.class_names() == ("City", "Region")
        assert renamed.attribute_type("City", "state") == ClassType(
            "Region")

    def test_keyed_schema(self):
        renamed = rename_keyed_schema(cities.euro_schema(),
                                      {"CountryE": "Nation"})
        assert renamed.keys.has_key("Nation")
        assert not renamed.keys.has_key("CountryE")


class TestRenameInstance:
    def test_plain_rename(self):
        schema = Schema.of("S", A=record(name=STR))
        builder = InstanceBuilder(schema)
        builder.new("A", Record.of(name="x"))
        renamed = rename_instance_classes(builder.freeze(), {"A": "B"})
        renamed.validate()
        assert renamed.class_sizes() == {"B": 1}

    def test_references_follow(self):
        schema = Schema.of(
            "S",
            City=record(name=STR, state=ClassType("State")),
            State=record(name=STR))
        builder = InstanceBuilder(schema)
        state = builder.new("State", Record.of(name="PA"))
        builder.new("City", Record.of(name="Phila", state=state))
        renamed = rename_instance_classes(builder.freeze(),
                                          {"State": "Region"})
        renamed.validate()
        (city,) = renamed.objects_of("City")
        assert renamed.attribute(city, "state").class_name == "Region"

    def test_keyed_identities_rekeyed_recursively(self):
        # A keyed oid whose key embeds another keyed oid of a renamed
        # class: both must be rewritten consistently.
        schema = Schema.of(
            "S",
            Country=record(name=STR),
            City=record(name=STR, country=ClassType("Country")))
        builder = InstanceBuilder(schema)
        country = Oid.keyed("Country", "France")
        builder.put(country, Record.of(name="France"))
        city = Oid.keyed("City", Record.of(name="Paris", country=country))
        builder.put(city, Record.of(name="Paris", country=country))
        renamed = rename_instance_classes(builder.freeze(),
                                          {"Country": "Nation"})
        renamed.validate()
        (new_city,) = renamed.objects_of("City")
        assert new_city.key.get("country") == Oid.keyed("Nation", "France")

    def test_values_inside_collections(self):
        schema = Schema.of(
            "S",
            Team=record(members=set_of(ClassType("Player"))),
            Player=record(name=STR))
        builder = InstanceBuilder(schema)
        player = builder.new("Player", Record.of(name="p"))
        builder.new("Team", Record.of(members=WolSet.of(player)))
        renamed = rename_instance_classes(builder.freeze(),
                                          {"Player": "Athlete"})
        renamed.validate()
        (team,) = renamed.objects_of("Team")
        (member,) = renamed.attribute(team, "members")
        assert member.class_name == "Athlete"

    def test_identity_rename_preserves_structure(self):
        instance = cities.sample_euro_instance()
        renamed = rename_instance_classes(instance, {})
        assert renamed.valuations == instance.valuations
