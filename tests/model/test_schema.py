"""Unit tests for schemas and the textual schema language."""

import pytest

from repro.model import (INT, STR, ClassType, KeyedSchema, Schema,
                         SchemaError, TypeError_, merge_schemas,
                         parse_schema, record, set_of, variant, UNIT)


def us_schema() -> Schema:
    return Schema.of(
        "US",
        CityA=record(name=STR, state=ClassType("StateA")),
        StateA=record(name=STR, capital=ClassType("CityA")))


class TestSchema:
    def test_class_names_sorted(self):
        assert us_schema().class_names() == ("CityA", "StateA")

    def test_class_type_lookup(self):
        schema = us_schema()
        assert schema.class_type("CityA") == record(
            name=STR, state=ClassType("StateA"))
        with pytest.raises(SchemaError):
            schema.class_type("CityB")

    def test_attribute_type(self):
        schema = us_schema()
        assert schema.attribute_type("CityA", "name") == STR
        assert schema.attribute_type("CityA", "state") == ClassType("StateA")
        with pytest.raises(SchemaError):
            schema.attribute_type("CityA", "mayor")

    def test_attributes_listing(self):
        assert us_schema().attributes("CityA") == ("name", "state")

    def test_references(self):
        schema = us_schema()
        assert schema.references("CityA") == ("StateA",)
        assert schema.references("StateA") == ("CityA",)

    def test_dangling_reference_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("Bad", CityA=record(state=ClassType("StateB")))

    def test_class_type_may_not_be_class(self):
        with pytest.raises(SchemaError):
            Schema.of("Bad", A=ClassType("A"))

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema("Bad", (("A", record(x=INT)), ("A", record(y=INT))))

    def test_non_record_class_types_allowed(self):
        schema = Schema.of("S", Tags=set_of(STR))
        assert schema.attributes("Tags") == ()

    def test_str_rendering_parses_back(self):
        schema = us_schema()
        reparsed = parse_schema(str(schema))
        assert isinstance(reparsed, Schema)
        assert reparsed.classes == schema.classes


class TestMergeSchemas:
    def test_merge_disjoint(self):
        euro = Schema.of(
            "Euro",
            CityE=record(name=STR, is_capital=ClassType("CountryE")),
            CountryE=record(name=STR))
        merged = merge_schemas("Both", [us_schema(), euro])
        assert merged.class_names() == (
            "CityA", "CityE", "CountryE", "StateA")

    def test_merge_collision_rejected(self):
        with pytest.raises(SchemaError):
            merge_schemas("Both", [us_schema(), us_schema()])


class TestParseSchema:
    def test_plain_schema(self):
        schema = parse_schema("""
            schema US {
              class CityA  = (name: str, state: StateA);
              class StateA = (name: str, capital: CityA);
            }
        """)
        assert isinstance(schema, Schema)
        assert schema.name == "US"
        assert schema.class_type("CityA") == record(
            name=STR, state=ClassType("StateA"))

    def test_keyed_schema(self):
        keyed = parse_schema("""
            schema Euro {
              class CityE = (name: str, is_capital: bool,
                             country: CountryE) key name, country.name;
              class CountryE = (name: str, language: str,
                                currency: str) key name;
            }
        """)
        assert isinstance(keyed, KeyedSchema)
        assert keyed.keys.has_key("CityE")
        assert keyed.keys.has_key("CountryE")

    def test_variant_attribute(self):
        schema = parse_schema("""
            schema Target {
              class CityT = (name: str,
                             place: <<euro_city: CountryT, us_city: StateT>>);
              class CountryT = (name: str, language: str, currency: str,
                                capital: CityT);
              class StateT = (name: str, capital: CityT);
            }
        """)
        place = schema.attribute_type("CityT", "place")
        assert place == variant(euro_city=ClassType("CountryT"),
                                us_city=ClassType("StateT"))

    def test_comments_stripped(self):
        schema = parse_schema("""
            schema S {            -- a schema
              class A = (x: int); # trailing comment
            }
        """)
        assert schema.class_names() == ("A",)

    def test_unit_variants(self):
        schema = parse_schema("""
            schema People {
              class Person = (name: str,
                              sex: <<male: unit, female: unit>>,
                              spouse: Person);
            }
        """)
        assert schema.attribute_type("Person", "sex") == variant(
            male=UNIT, female=UNIT)

    @pytest.mark.parametrize("bad", [
        "not a schema",
        "schema S { class A = ; }",
        "schema S { class A (x: int); }",
        "schema S { class A = (x: int)",
        "schema S { class A = (x: int) key ; }",
    ])
    def test_parse_errors(self, bad):
        # the type sublanguage raises its own error class for a
        # malformed type expression; everything else is a SchemaError
        with pytest.raises((SchemaError, TypeError_)):
            parse_schema(bad)
