"""Unit tests for the WOL type system (paper Section 2.1)."""

import pytest

from repro.model import (BOOL, FLOAT, INT, STR, UNIT, BaseType, ClassType,
                         ListType, RecordType, SetType, TypeError_,
                         VariantType, list_of, parse_type, record, set_of,
                         variant)


class TestBaseTypes:
    def test_singletons_have_expected_names(self):
        assert INT.name == "int"
        assert STR.name == "str"
        assert BOOL.name == "bool"
        assert FLOAT.name == "float"
        assert UNIT.name == "unit"

    def test_equality_is_by_name(self):
        assert BaseType("int") == INT
        assert BaseType("int") != STR

    def test_unknown_base_type_rejected(self):
        with pytest.raises(TypeError_):
            BaseType("complex")

    def test_base_types_are_ground_and_class_free(self):
        assert INT.is_ground()
        assert not INT.involves_class()


class TestClassTypes:
    def test_class_type_str(self):
        assert str(ClassType("CityA")) == "CityA"

    def test_invalid_class_name_rejected(self):
        with pytest.raises(TypeError_):
            ClassType("")
        with pytest.raises(TypeError_):
            ClassType("1City")

    def test_involves_class(self):
        assert ClassType("C").involves_class()
        assert set_of(ClassType("C")).involves_class()
        assert not set_of(INT).involves_class()


class TestRecordTypes:
    def test_field_order_is_irrelevant_for_equality(self):
        first = RecordType((("name", STR), ("age", INT)))
        second = RecordType((("age", INT), ("name", STR)))
        assert first == second
        assert hash(first) == hash(second)

    def test_field_access(self):
        ty = record(name=STR, age=INT)
        assert ty.field_type("name") == STR
        assert ty.has_field("age")
        assert not ty.has_field("height")

    def test_missing_field_raises(self):
        with pytest.raises(TypeError_):
            record(name=STR).field_type("age")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(TypeError_):
            RecordType((("a", INT), ("a", STR)))

    def test_empty_record_is_unit_like(self):
        ty = RecordType(())
        assert ty.labels() == ()
        assert str(ty) == "()"

    def test_str_rendering(self):
        ty = record(name=STR, state=ClassType("StateA"))
        assert str(ty) == "(name: str, state: StateA)"


class TestVariantTypes:
    def test_choice_order_is_irrelevant_for_equality(self):
        first = VariantType((("male", UNIT), ("female", UNIT)))
        second = VariantType((("female", UNIT), ("male", UNIT)))
        assert first == second

    def test_choice_access(self):
        ty = variant(euro_city=ClassType("CountryT"),
                     us_city=ClassType("StateT"))
        assert ty.choice_type("euro_city") == ClassType("CountryT")
        assert ty.has_choice("us_city")
        assert not ty.has_choice("moon_city")

    def test_missing_choice_raises(self):
        with pytest.raises(TypeError_):
            variant(male=UNIT).choice_type("female")

    def test_empty_variant_rejected(self):
        with pytest.raises(TypeError_):
            VariantType(())

    def test_duplicate_choice_labels_rejected(self):
        with pytest.raises(TypeError_):
            VariantType((("a", INT), ("a", STR)))


class TestCompositeTypes:
    def test_set_and_list_children(self):
        assert set_of(INT).children() == (INT,)
        assert list_of(STR).children() == (STR,)

    def test_deep_nesting_walk(self):
        ty = set_of(record(cities=list_of(ClassType("CityA")),
                           tag=variant(a=INT, b=STR)))
        names = ty.class_names()
        assert names == ("CityA",)
        kinds = {type(node).__name__ for node in ty.walk()}
        assert {"SetType", "RecordType", "ListType", "ClassType",
                "VariantType", "BaseType"} <= kinds

    def test_class_names_deduplicated_in_order(self):
        ty = record(a=ClassType("X"), b=ClassType("Y"), c=ClassType("X"))
        assert ty.class_names() == ("X", "Y")


class TestParseType:
    @pytest.mark.parametrize("text,expected", [
        ("int", INT),
        ("str", STR),
        ("bool", BOOL),
        ("float", FLOAT),
        ("unit", UNIT),
        ("CityA", ClassType("CityA")),
        ("{int}", set_of(INT)),
        ("[str]", list_of(STR)),
        ("{CityA}", set_of(ClassType("CityA"))),
        ("()", RecordType(())),
        ("(name: str)", record(name=STR)),
        ("(name: str, state: StateA)",
         record(name=STR, state=ClassType("StateA"))),
        ("<<male: unit, female: unit>>", variant(male=UNIT, female=UNIT)),
    ])
    def test_parse_simple(self, text, expected):
        assert parse_type(text) == expected

    def test_parse_nested(self):
        ty = parse_type(
            "(name: str, place: <<euro_city: CountryT, us_city: StateT>>,"
            " tags: {str}, ranks: [int])")
        assert ty == record(
            name=STR,
            place=variant(euro_city=ClassType("CountryT"),
                          us_city=ClassType("StateT")),
            tags=set_of(STR),
            ranks=list_of(INT))

    def test_parse_roundtrips_via_str(self):
        samples = [
            "(name: str, state: StateA)",
            "<<euro_city: CountryT, us_city: StateT>>",
            "{(a: int, b: {str})}",
            "[<<l: unit, r: (x: float)>>]",
        ]
        for text in samples:
            ty = parse_type(text)
            assert parse_type(str(ty)) == ty

    @pytest.mark.parametrize("bad", [
        "", "(name str)", "(name:)", "{int", "<<>>", "(a: int) extra",
        "[", "123abc",
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(TypeError_):
            parse_type(bad)

    def test_whitespace_insensitive(self):
        assert parse_type(" ( name : str ) ") == record(name=STR)
