"""Unit tests for instances, builders and well-formedness (Section 2.1)."""

import pytest

from repro.model import (STR, BOOL, ClassType, Instance, InstanceBuilder,
                         InstanceError, Oid, Record, Schema, empty_instance,
                         record)


def euro_schema() -> Schema:
    return Schema.of(
        "Euro",
        CityE=record(name=STR, is_capital=BOOL,
                     country=ClassType("CountryE")),
        CountryE=record(name=STR, language=STR, currency=STR))


def example_instance() -> Instance:
    """The instance of paper Example 2.2 (trimmed)."""
    builder = InstanceBuilder(euro_schema())
    uk = builder.new("CountryE", Record.of(
        name="United Kingdom", language="English", currency="sterling"))
    fr = builder.new("CountryE", Record.of(
        name="France", language="French", currency="franc"))
    builder.new("CityE", Record.of(
        name="London", country=uk, is_capital=True))
    builder.new("CityE", Record.of(
        name="Manchester", country=uk, is_capital=False))
    builder.new("CityE", Record.of(
        name="Paris", country=fr, is_capital=True))
    return builder.freeze()


class TestInstanceAccess:
    def test_sizes(self):
        inst = example_instance()
        assert inst.size() == 5
        assert inst.class_sizes() == {"CityE": 3, "CountryE": 2}

    def test_value_and_attribute(self):
        inst = example_instance()
        london = next(o for o in inst.objects_of("CityE")
                      if inst.attribute(o, "name") == "London")
        assert inst.attribute(london, "is_capital") is True
        country = inst.attribute(london, "country")
        assert inst.attribute(country, "name") == "United Kingdom"

    def test_missing_object_raises(self):
        inst = example_instance()
        with pytest.raises(InstanceError):
            inst.value_of(Oid.fresh("CityE"))

    def test_missing_class_raises(self):
        inst = example_instance()
        with pytest.raises(InstanceError):
            inst.objects_of("CityX")

    def test_empty_instance(self):
        inst = empty_instance(euro_schema())
        assert inst.size() == 0
        assert inst.objects_of("CityE") == ()
        inst.validate()


class TestWellFormedness:
    def test_dangling_reference_rejected(self):
        builder = InstanceBuilder(euro_schema())
        ghost = Oid.fresh("CountryE")  # never inserted
        builder.new("CityE", Record.of(
            name="Atlantis", country=ghost, is_capital=False))
        with pytest.raises(InstanceError):
            builder.freeze()

    def test_type_mismatch_rejected(self):
        builder = InstanceBuilder(euro_schema())
        builder.new("CountryE", Record.of(name=42, language="x", currency="y"))
        with pytest.raises(InstanceError):
            builder.freeze()

    def test_missing_attribute_rejected(self):
        builder = InstanceBuilder(euro_schema())
        builder.new("CountryE", Record.of(name="France"))
        with pytest.raises(InstanceError):
            builder.freeze()

    def test_unknown_class_rejected_eagerly(self):
        builder = InstanceBuilder(euro_schema())
        with pytest.raises(InstanceError):
            builder.new("Planet", Record.of(name="Mars"))

    def test_oid_filed_under_wrong_class(self):
        schema = euro_schema()
        oid = Oid.fresh("CityE")
        inst = Instance(schema, {"CountryE": {
            oid: Record.of(name="x", language="y", currency="z")}})
        with pytest.raises(InstanceError):
            inst.validate()

    def test_instance_with_unknown_class_rejected(self):
        with pytest.raises(InstanceError):
            Instance(euro_schema(), {"Nope": {}})

    def test_freeze_without_validation_allows_dangling(self):
        builder = InstanceBuilder(euro_schema())
        ghost = Oid.fresh("CountryE")
        builder.new("CityE", Record.of(
            name="Atlantis", country=ghost, is_capital=False))
        inst = builder.freeze(validate=False)
        assert not inst.is_valid()


class TestBuilder:
    def test_make_is_idempotent(self):
        builder = InstanceBuilder(euro_schema())
        first = builder.make("CountryE", "France")
        second = builder.make("CountryE", "France")
        assert first == second
        assert len(builder.objects_of("CountryE")) == 1

    def test_make_conflicting_values_rejected(self):
        builder = InstanceBuilder(euro_schema())
        builder.make("CountryE", "France",
                     Record.of(name="France", language="French",
                               currency="franc"))
        with pytest.raises(InstanceError):
            builder.make("CountryE", "France",
                         Record.of(name="France", language="French",
                                   currency="euro"))

    def test_set_attribute_accumulates(self):
        builder = InstanceBuilder(euro_schema())
        oid = builder.make("CountryE", "France")
        builder.set_attribute(oid, "name", "France")
        builder.set_attribute(oid, "language", "French")
        builder.set_attribute(oid, "currency", "franc")
        inst = builder.freeze()
        assert inst.attribute(oid, "language") == "French"

    def test_set_attribute_conflict_rejected(self):
        builder = InstanceBuilder(euro_schema())
        oid = builder.make("CountryE", "France")
        builder.set_attribute(oid, "language", "French")
        with pytest.raises(InstanceError):
            builder.set_attribute(oid, "language", "Breton")

    def test_set_attribute_same_value_ok(self):
        builder = InstanceBuilder(euro_schema())
        oid = builder.make("CountryE", "France")
        builder.set_attribute(oid, "language", "French")
        builder.set_attribute(oid, "language", "French")

    def test_builder_roundtrip(self):
        inst = example_instance()
        again = inst.builder().freeze()
        assert again.valuations == inst.valuations


class TestRestrict:
    def test_restrict_keeps_selected_classes(self):
        inst = example_instance()
        countries = inst.restrict(["CountryE"])
        assert countries.class_sizes() == {"CityE": 0, "CountryE": 2}
        countries.validate()

    def test_restrict_unknown_class_rejected(self):
        with pytest.raises(InstanceError):
            example_instance().restrict(["Nope"])

    def test_restrict_can_dangle(self):
        inst = example_instance()
        cities = inst.restrict(["CityE"])
        assert not cities.is_valid()
