"""Unit tests for instance isomorphism (equality up to oid renaming)."""

import pytest

from repro.model import (STR, BOOL, ClassType, InstanceBuilder, Oid, Record,
                         Schema, WolSet, find_isomorphism, isomorphic,
                         record, rename_oids, set_of)


def pair_schema() -> Schema:
    return Schema.of(
        "Pairs",
        Node=record(name=STR, next=ClassType("Node")))


def ring(schema: Schema, names):
    """Build a cyclic linked list of Node objects with the given names."""
    builder = InstanceBuilder(schema)
    oids = [Oid.fresh("Node") for _ in names]
    for i, name in enumerate(names):
        builder.put(oids[i], Record.of(
            name=name, next=oids[(i + 1) % len(names)]))
    return builder.freeze()


class TestIsomorphic:
    def test_identical_instances(self):
        inst = ring(pair_schema(), ["a", "b", "c"])
        assert isomorphic(inst, inst)

    def test_renamed_instances(self):
        schema = pair_schema()
        first = ring(schema, ["a", "b", "c"])
        mapping = {oid: Oid.fresh("Node") for oid in first.all_oids()}
        second = rename_oids(first, mapping)
        assert isomorphic(first, second)
        found = find_isomorphism(first, second)
        assert found == mapping

    def test_different_data_not_isomorphic(self):
        schema = pair_schema()
        assert not isomorphic(ring(schema, ["a", "b", "c"]),
                              ring(schema, ["a", "b", "d"]))

    def test_different_sizes_not_isomorphic(self):
        schema = pair_schema()
        assert not isomorphic(ring(schema, ["a", "b"]),
                              ring(schema, ["a", "b", "c"]))

    def test_structure_matters_not_just_multiset(self):
        # Two rings a->b->a, c->d->c  vs  a->d->a, c->b->c: same value
        # multiset per colour only if names pair up consistently.
        schema = pair_schema()
        builder = InstanceBuilder(schema)
        a, b, c, d = (Oid.fresh("Node") for _ in range(4))
        builder.put(a, Record.of(name="a", next=b))
        builder.put(b, Record.of(name="b", next=a))
        builder.put(c, Record.of(name="c", next=d))
        builder.put(d, Record.of(name="d", next=c))
        first = builder.freeze()

        builder = InstanceBuilder(schema)
        a2, b2, c2, d2 = (Oid.fresh("Node") for _ in range(4))
        builder.put(a2, Record.of(name="a", next=d2))
        builder.put(d2, Record.of(name="d", next=a2))
        builder.put(c2, Record.of(name="c", next=b2))
        builder.put(b2, Record.of(name="b", next=c2))
        second = builder.freeze()

        assert not isomorphic(first, second)

    def test_symmetric_ring_isomorphic_under_rotation(self):
        # All nodes share one name: any rotation is an isomorphism.
        schema = pair_schema()
        first = ring(schema, ["x", "x", "x"])
        second = ring(schema, ["x", "x", "x"])
        assert isomorphic(first, second)

    def test_sets_of_oids_matched(self):
        schema = Schema.of(
            "G",
            Person=record(name=STR, friends=set_of(ClassType("Person"))))
        def build(names, edges):
            builder = InstanceBuilder(schema)
            oids = {n: Oid.fresh("Person") for n in names}
            for n in names:
                builder.put(oids[n], Record.of(
                    name=n,
                    friends=WolSet.of(*(oids[m] for m in edges.get(n, ())))))
            return builder.freeze()
        first = build(["a", "b"], {"a": ["b"], "b": ["a"]})
        second = build(["a", "b"], {"a": ["b"], "b": ["a"]})
        assert isomorphic(first, second)
        third = build(["a", "b"], {"a": ["b"]})
        assert not isomorphic(first, third)

    def test_different_schemas_not_isomorphic(self):
        first = ring(pair_schema(), ["a"])
        other_schema = Schema.of("Other",
                                 Node=record(name=STR, nxt=ClassType("Node")))
        builder = InstanceBuilder(other_schema)
        o = Oid.fresh("Node")
        builder.put(o, Record.of(name="a", nxt=o))
        second = builder.freeze()
        assert not isomorphic(first, second)


class TestRenameOids:
    def test_rename_preserves_structure(self):
        schema = pair_schema()
        inst = ring(schema, ["a", "b"])
        mapping = {oid: Oid.fresh("Node") for oid in inst.all_oids()}
        renamed = rename_oids(inst, mapping)
        renamed.validate()
        assert isomorphic(inst, renamed)

    def test_rename_across_classes_rejected(self):
        schema = Schema.of("Two", A=record(name=STR), B=record(name=STR))
        builder = InstanceBuilder(schema)
        a = builder.new("A", Record.of(name="x"))
        inst = builder.freeze()
        with pytest.raises(ValueError):
            rename_oids(inst, {a: Oid.fresh("B")})

    def test_non_injective_rename_rejected(self):
        schema = Schema.of("One", A=record(name=STR))
        builder = InstanceBuilder(schema)
        a = builder.new("A", Record.of(name="x"))
        b = builder.new("A", Record.of(name="y"))
        target = Oid.fresh("A")
        inst = builder.freeze()
        with pytest.raises(ValueError):
            rename_oids(inst, {a: target, b: target})
