"""Unit tests for WOL values (paper Section 2.1)."""

import pytest

from repro.model import (BOOL, INT, STR, UNIT, UNIT_VALUE, ClassType, Oid,
                         Record, ValueError_, Variant, WolList, WolSet,
                         check_value, format_value, map_oids, oids_in,
                         record, set_of, variant)


class TestOid:
    def test_fresh_oids_are_distinct(self):
        first = Oid.fresh("CityA")
        second = Oid.fresh("CityA")
        assert first != second

    def test_keyed_oids_with_equal_keys_are_equal(self):
        assert Oid.keyed("CityT", "Paris") == Oid.keyed("CityT", "Paris")
        assert Oid.keyed("CityT", "Paris") != Oid.keyed("CityT", "Berlin")
        assert Oid.keyed("CityT", "Paris") != Oid.keyed("CountryT", "Paris")

    def test_keyed_oid_with_record_key(self):
        key = Record.of(name="Paris", country_name="France")
        assert Oid.keyed("CityT", key) == Oid.keyed("CityT", key)

    def test_oid_needs_exactly_one_of_key_or_serial(self):
        with pytest.raises(ValueError_):
            Oid("CityA")
        with pytest.raises(ValueError_):
            Oid("CityA", key="k", serial=1)

    def test_str_rendering(self):
        assert str(Oid.keyed("CityT", "Paris")) == '&CityT["Paris"]'
        anon = Oid.fresh("CityA")
        assert str(anon).startswith("&CityA#")


class TestRecordValue:
    def test_field_order_irrelevant(self):
        first = Record((("a", 1), ("b", 2)))
        second = Record((("b", 2), ("a", 1)))
        assert first == second
        assert hash(first) == hash(second)

    def test_get_and_has(self):
        rec = Record.of(name="London", population=9_000_000)
        assert rec.get("name") == "London"
        assert rec.has("population")
        assert not rec.has("area")

    def test_missing_field_raises(self):
        with pytest.raises(ValueError_):
            Record.of(a=1).get("b")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError_):
            Record((("a", 1), ("a", 2)))

    def test_with_field_adds_and_replaces(self):
        rec = Record.of(a=1)
        assert rec.with_field("b", 2) == Record.of(a=1, b=2)
        assert rec.with_field("a", 3) == Record.of(a=3)
        # Original untouched (immutability).
        assert rec == Record.of(a=1)


class TestVariantValue:
    def test_unit_variant_default(self):
        male = Variant("male")
        assert male.value == UNIT_VALUE
        assert str(male) == "ins_male()"

    def test_carried_value(self):
        v = Variant("euro_city", Oid.keyed("CountryT", "France"))
        assert v.label == "euro_city"
        assert str(v) == 'ins_euro_city(&CountryT["France"])'

    def test_equality(self):
        assert Variant("a", 1) == Variant("a", 1)
        assert Variant("a", 1) != Variant("b", 1)
        assert Variant("a", 1) != Variant("a", 2)


class TestCollections:
    def test_set_semantics(self):
        s = WolSet.of(1, 2, 2, 3)
        assert len(s) == 3
        assert 2 in s
        assert WolSet.of(3, 2, 1) == s

    def test_list_semantics(self):
        l = WolList.of(1, 2, 2)
        assert len(l) == 3
        assert list(l) == [1, 2, 2]
        assert WolList.of(1, 2, 2) == l
        assert WolList.of(2, 1, 2) != l

    def test_sets_of_records_hashable(self):
        s = WolSet.of(Record.of(a=1), Record.of(a=2))
        assert Record.of(a=1) in s


class TestCheckValue:
    def test_base_values(self):
        check_value(3, INT)
        check_value("x", STR)
        check_value(True, BOOL)
        check_value(UNIT_VALUE, UNIT)

    def test_bool_is_not_int(self):
        with pytest.raises(ValueError_):
            check_value(True, INT)
        with pytest.raises(ValueError_):
            check_value(1, BOOL)

    def test_oid_class_checked(self):
        check_value(Oid.fresh("CityA"), ClassType("CityA"))
        with pytest.raises(ValueError_):
            check_value(Oid.fresh("CityA"), ClassType("StateA"))

    def test_record_fields_checked(self):
        ty = record(name=STR, state=ClassType("StateA"))
        check_value(Record.of(name="P", state=Oid.fresh("StateA")), ty)
        with pytest.raises(ValueError_):
            check_value(Record.of(name="P"), ty)  # missing field
        with pytest.raises(ValueError_):
            check_value(Record.of(name="P", state=Oid.fresh("StateA"),
                                  extra=1), ty)  # extra field
        with pytest.raises(ValueError_):
            check_value(Record.of(name=1, state=Oid.fresh("StateA")), ty)

    def test_variant_checked(self):
        ty = variant(male=UNIT, female=UNIT)
        check_value(Variant("male"), ty)
        with pytest.raises(ValueError_):
            check_value(Variant("other"), ty)
        with pytest.raises(ValueError_):
            check_value(Variant("male", 3), ty)

    def test_set_elements_checked(self):
        check_value(WolSet.of(1, 2), set_of(INT))
        with pytest.raises(ValueError_):
            check_value(WolSet.of(1, "x"), set_of(INT))
        with pytest.raises(ValueError_):
            check_value(WolList.of(1), set_of(INT))


class TestOidTraversal:
    def test_oids_in_finds_nested_identities(self):
        a = Oid.fresh("A")
        b = Oid.fresh("B")
        value = Record.of(
            x=a, y=Variant("v", WolSet.of(b)), z=WolList.of(1, a))
        found = list(oids_in(value))
        assert found.count(a) == 2
        assert found.count(b) == 1

    def test_map_oids_rewrites_everywhere(self):
        a, b = Oid.fresh("A"), Oid.fresh("A")
        value = Record.of(x=a, y=WolSet.of(a), z=Variant("v", a))
        mapped = map_oids(value, {a: b})
        assert list(oids_in(mapped)) == [b, b, b]

    def test_map_oids_leaves_unmapped_alone(self):
        a = Oid.fresh("A")
        assert map_oids(a, {}) == a
        assert map_oids(5, {a: a}) == 5


class TestFormatValue:
    def test_strings_quoted(self):
        assert format_value("x") == '"x"'

    def test_bools_lowercase(self):
        assert format_value(True) == "true"
        assert format_value(False) == "false"

    def test_record_rendering(self):
        assert format_value(Record.of(b=2, a=1)) == "(a = 1, b = 2)"
