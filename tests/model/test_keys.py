"""Unit tests for surrogate keys (paper Section 2.2, Example 2.3)."""

import pytest

from repro.model import (BOOL, STR, ClassType, InstanceBuilder, KeyError_,
                         KeyFunction, KeySpec, KeyedSchema, Record, Schema,
                         attribute_key, attributes_key, key_violations,
                         record, satisfies_keys)


def euro_schema() -> Schema:
    return Schema.of(
        "Euro",
        CityE=record(name=STR, is_capital=BOOL,
                     country=ClassType("CountryE")),
        CountryE=record(name=STR, language=STR, currency=STR))


def euro_keys(schema: Schema) -> KeySpec:
    """Example 2.3: countries keyed by name, cities by (name, country name)."""
    return KeySpec({
        "CountryE": attribute_key(schema, "CountryE", "name"),
        "CityE": attributes_key(schema, "CityE", ("name", "country.name")),
    })


def build(schema, cities, countries):
    builder = InstanceBuilder(schema)
    oids = {}
    for name, lang, cur in countries:
        oids[name] = builder.new("CountryE", Record.of(
            name=name, language=lang, currency=cur))
    for name, country, capital in cities:
        builder.new("CityE", Record.of(
            name=name, country=oids[country], is_capital=capital))
    return builder.freeze()


class TestKeyFunctions:
    def test_single_attribute_key_value(self):
        schema = euro_schema()
        inst = build(schema, [], [("France", "French", "franc")])
        fn = attribute_key(schema, "CountryE", "name")
        (oid,) = inst.objects_of("CountryE")
        assert fn.apply(inst, oid) == "France"

    def test_multi_attribute_key_follows_references(self):
        """K^CityE(c) = (name = c.name, country_name = c.country.name)."""
        schema = euro_schema()
        inst = build(schema, [("Paris", "France", True)],
                     [("France", "French", "franc")])
        fn = attributes_key(schema, "CityE", ("name", "country.name"))
        (oid,) = inst.objects_of("CityE")
        assert fn.apply(inst, oid) == Record.of(
            name="Paris", country_name="France")

    def test_key_type_computed(self):
        schema = euro_schema()
        fn = attributes_key(schema, "CityE", ("name", "country.name"))
        ty = fn.key_type(schema)
        assert ty == record(name=STR, country_name=STR)

    def test_key_type_must_be_class_free(self):
        schema = euro_schema()
        with pytest.raises(KeyError_):
            attribute_key(schema, "CityE", "country")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(KeyError_):
            attribute_key(euro_schema(), "CityE", "mayor")

    def test_empty_components_rejected(self):
        with pytest.raises(KeyError_):
            KeyFunction("CityE", ())

    def test_multi_component_needs_labels(self):
        with pytest.raises(KeyError_):
            KeyFunction("CityE", ((None, ("name",)), (None, ("x",))))

    def test_str_rendering(self):
        schema = euro_schema()
        fn = attribute_key(schema, "CountryE", "name")
        assert "K^CountryE" in str(fn)


class TestKeySatisfaction:
    def test_satisfied(self):
        schema = euro_schema()
        inst = build(
            schema,
            [("Paris", "France", True), ("London", "UK", True),
             ("Paris", "UK", False)],  # a second Paris, different country
            [("France", "French", "franc"), ("UK", "English", "sterling")])
        assert satisfies_keys(inst, euro_keys(schema))

    def test_violated_by_duplicate_country_names(self):
        schema = euro_schema()
        builder = InstanceBuilder(schema)
        builder.new("CountryE", Record.of(
            name="France", language="French", currency="franc"))
        builder.new("CountryE", Record.of(
            name="France", language="French", currency="euro"))
        inst = builder.freeze()
        violations = key_violations(inst, euro_keys(schema))
        assert len(violations) == 1
        assert violations[0].class_name == "CountryE"
        assert violations[0].key_value == "France"
        assert not satisfies_keys(inst, euro_keys(schema))

    def test_same_city_name_in_different_countries_ok(self):
        schema = euro_schema()
        inst = build(
            schema,
            [("Paris", "France", True), ("Paris", "UK", False)],
            [("France", "French", "franc"), ("UK", "English", "sterling")])
        assert satisfies_keys(inst, euro_keys(schema))

    def test_same_city_name_same_country_violates(self):
        schema = euro_schema()
        inst = build(
            schema,
            [("Paris", "France", True), ("Paris", "France", False)],
            [("France", "French", "franc")])
        assert not satisfies_keys(inst, euro_keys(schema))

    def test_keys_for_absent_classes_ignored(self):
        schema = euro_schema()
        other = Schema.of("Other", Thing=record(name=STR))
        spec = KeySpec({"Thing": attribute_key(other, "Thing", "name")})
        inst = build(schema, [], [])
        assert satisfies_keys(inst, spec)


class TestKeyedSchema:
    def test_valid_keyed_schema(self):
        schema = euro_schema()
        keyed = KeyedSchema(schema, euro_keys(schema))
        assert keyed.name == "Euro"
        assert "K^CountryE" in str(keyed)

    def test_unknown_class_in_spec_rejected(self):
        schema = euro_schema()
        other = Schema.of("Other", Thing=record(name=STR))
        spec = KeySpec({"Thing": attribute_key(other, "Thing", "name")})
        with pytest.raises(KeyError_):
            KeyedSchema(schema, spec)

    def test_misregistered_function_rejected(self):
        schema = euro_schema()
        fn = attribute_key(schema, "CountryE", "name")
        with pytest.raises(KeyError_):
            KeySpec({"CityE": fn})
