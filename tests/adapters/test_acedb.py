"""Unit tests for the ACeDB-style substrate and adapter."""

import pytest

from repro.adapters import (AceClass, AceDatabase, AceError, TagSpec,
                            import_acedb, schema_of_acedb)
from repro.model import Oid, SetType, STR, WolSet
from repro.workloads import genome


def tiny_classes():
    return [
        AceClass("Gene", (TagSpec("symbol", "str"),)),
        AceClass("Sequence", (
            TagSpec("dna_length", "int"),
            TagSpec("gene", "ref", "Gene"),
        )),
    ]


class TestDeclarations:
    def test_ref_tag_needs_target(self):
        with pytest.raises(AceError):
            TagSpec("gene", "ref")

    def test_scalar_tag_cannot_reference(self):
        with pytest.raises(AceError):
            TagSpec("x", "int", "Gene")

    def test_unknown_tag_type(self):
        with pytest.raises(AceError):
            TagSpec("x", "blob")

    def test_name_tag_reserved(self):
        with pytest.raises(AceError):
            AceClass("C", (TagSpec("name", "str"),))

    def test_duplicate_tags_rejected(self):
        with pytest.raises(AceError):
            AceClass("C", (TagSpec("a", "str"), TagSpec("a", "int")))


class TestStore:
    def test_duplicate_object_rejected(self):
        db = AceDatabase("D", tiny_classes())
        db.new_object("Gene", "COMT")
        with pytest.raises(AceError):
            db.new_object("Gene", "COMT")

    def test_unknown_class_rejected(self):
        db = AceDatabase("D", tiny_classes())
        with pytest.raises(AceError):
            db.new_object("Planet", "Mars")

    def test_validation_catches_bad_scalar(self):
        db = AceDatabase("D", tiny_classes())
        db.new_object("Sequence", "S1").add("dna_length", "long")
        assert db.validate()

    def test_validation_catches_dangling_ref(self):
        db = AceDatabase("D", tiny_classes())
        db.new_object("Sequence", "S1").add_ref("gene", "Gene", "GHOST")
        assert db.validate()

    def test_validation_catches_wrong_ref_class(self):
        db = AceDatabase("D", tiny_classes())
        db.new_object("Gene", "G")
        db.new_object("Sequence", "S1").add_ref("gene", "Sequence", "S1")
        assert db.validate()

    def test_valid_database(self):
        db = genome.sample_acedb()
        assert db.validate() == []


class TestImport:
    def test_schema_is_set_valued(self):
        db = AceDatabase("D", tiny_classes())
        keyed = schema_of_acedb(db)
        assert keyed.schema.attribute_type("Gene", "symbol") == SetType(STR)
        assert keyed.schema.attribute_type("Gene", "name") == STR
        assert keyed.keys.has_key("Gene")

    def test_sparse_tags_become_empty_sets(self):
        db = AceDatabase("D", tiny_classes())
        db.new_object("Gene", "COMT")  # no tags at all
        instance = import_acedb(db)
        oid = Oid.keyed("Gene", "COMT")
        assert instance.attribute(oid, "symbol") == WolSet.of()

    def test_multivalued_tags_preserved(self):
        db = AceDatabase("D", tiny_classes())
        obj = db.new_object("Gene", "COMT")
        obj.add("symbol", "comt")
        obj.add("symbol", "COMT1")
        instance = import_acedb(db)
        oid = Oid.keyed("Gene", "COMT")
        assert instance.attribute(oid, "symbol") == WolSet.of(
            "comt", "COMT1")

    def test_references_become_keyed_oids(self):
        db = AceDatabase("D", tiny_classes())
        db.new_object("Gene", "COMT")
        db.new_object("Sequence", "S1").add_ref("gene", "Gene", "COMT")
        instance = import_acedb(db)
        seq = Oid.keyed("Sequence", "S1")
        assert instance.attribute(seq, "gene") == WolSet.of(
            Oid.keyed("Gene", "COMT"))

    def test_import_validates(self):
        db = AceDatabase("D", tiny_classes())
        db.new_object("Sequence", "S1").add_ref("gene", "Gene", "GHOST")
        with pytest.raises(AceError):
            import_acedb(db)

    def test_sample_imports_cleanly(self):
        instance = genome.source_instance()
        instance.validate()
        assert instance.class_sizes() == {
            "Clone": 3, "Gene": 2, "Sequence": 3}


class TestGenerator:
    def test_generated_database_valid(self):
        db = genome.generate_acedb(5, 10, 15, sparsity=0.7, seed=3)
        assert db.validate() == []
        assert len(db.objects_of("Gene")) == 5
        assert len(db.objects_of("Sequence")) == 10
        assert len(db.objects_of("Clone")) == 15

    def test_sparsity_zero_populates_nothing_optional(self):
        db = genome.generate_acedb(2, 2, 2, sparsity=0.0, seed=0)
        for obj in db.objects_of("Sequence"):
            assert not obj.tags and not obj.refs

    def test_sparsity_one_populates_everything(self):
        db = genome.generate_acedb(2, 2, 2, sparsity=1.0, seed=0)
        for obj in db.objects_of("Sequence"):
            assert set(obj.tags) == {"dna_length", "method"}
            assert set(obj.refs) == {"gene"}

    def test_deterministic_by_seed(self):
        first = genome.generate_acedb(3, 3, 3, seed=7)
        second = genome.generate_acedb(3, 3, 3, seed=7)
        assert ({k: (o.tags, o.refs) for k, o in first.objects.items()}
                == {k: (o.tags, o.refs) for k, o in second.objects.items()})
