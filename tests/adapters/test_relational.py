"""Unit tests for the relational substrate and adapter."""

import pytest

from repro.adapters import (Column, RelationalDatabase, RelationalError,
                            TableSchema, export_instance, import_database,
                            schema_of_database)
from repro.model import ClassType, Oid, Record, STR, INT


def city_tables():
    return [
        TableSchema("Country", (
            Column("name", "str"),
            Column("language", "str"),
        ), ("name",)),
        TableSchema("City", (
            Column("name", "str"),
            Column("country", "str", references="Country"),
            Column("population", "int"),
        ), ("name",)),
    ]


def populated():
    db = RelationalDatabase("Cities", city_tables())
    db.insert("Country", name="France", language="French")
    db.insert("Country", name="Spain", language="Spanish")
    db.insert("City", name="Paris", country="France", population=2_000_000)
    db.insert("City", name="Lyon", country="France", population=500_000)
    db.insert("City", name="Madrid", country="Spain", population=3_000_000)
    return db


class TestSubstrate:
    def test_insert_and_lookup(self):
        db = populated()
        row = db.table("Country").lookup("France")
        assert row["language"] == "French"

    def test_duplicate_primary_key_rejected(self):
        db = populated()
        with pytest.raises(RelationalError):
            db.insert("Country", name="France", language="Occitan")

    def test_wrong_columns_rejected(self):
        db = populated()
        with pytest.raises(RelationalError):
            db.insert("Country", name="Italy")

    def test_type_mismatch_rejected(self):
        db = populated()
        with pytest.raises(RelationalError):
            db.insert("Country", name="Italy", language=42)

    def test_bool_is_not_int(self):
        tables = [TableSchema("T", (Column("k", "str"),
                                    Column("n", "int")), ("k",))]
        db = RelationalDatabase("D", tables)
        with pytest.raises(RelationalError):
            db.insert("T", k="a", n=True)

    def test_foreign_key_checking(self):
        db = populated()
        assert db.check_foreign_keys() == []
        db.insert("City", name="Ghost", country="Atlantis", population=0)
        assert len(db.check_foreign_keys()) == 1

    def test_fk_to_unknown_table_rejected(self):
        with pytest.raises(RelationalError):
            RelationalDatabase("Bad", [
                TableSchema("City", (
                    Column("name", "str"),
                    Column("country", "str", references="Nowhere"),
                ), ("name",))])

    def test_composite_pk_not_referencable(self):
        with pytest.raises(RelationalError):
            RelationalDatabase("Bad", [
                TableSchema("Pair", (Column("a", "str"),
                                     Column("b", "str")), ("a", "b")),
                TableSchema("Ref", (
                    Column("k", "str"),
                    Column("p", "str", references="Pair"),
                ), ("k",))])


class TestImport:
    def test_schema_induction(self):
        keyed = schema_of_database(populated())
        schema = keyed.schema
        assert schema.attribute_type("City", "country") == ClassType(
            "Country")
        assert schema.attribute_type("City", "population") == INT
        assert keyed.keys.has_key("City")

    def test_import_produces_valid_instance(self):
        instance = import_database(populated())
        instance.validate()
        assert instance.class_sizes() == {"City": 3, "Country": 2}

    def test_references_resolved_to_oids(self):
        instance = import_database(populated())
        paris = Oid.keyed("City", "Paris")
        country = instance.attribute(paris, "country")
        assert country == Oid.keyed("Country", "France")
        assert instance.attribute(country, "language") == "French"

    def test_import_rejects_dangling_fk(self):
        db = populated()
        db.insert("City", name="Ghost", country="Atlantis", population=0)
        with pytest.raises(RelationalError):
            import_database(db)

    def test_composite_key_import(self):
        tables = [TableSchema("Edge", (
            Column("src", "str"), Column("dst", "str"),
            Column("weight", "int")), ("src", "dst"))]
        db = RelationalDatabase("G", tables)
        db.insert("Edge", src="a", dst="b", weight=1)
        instance = import_database(db)
        (oid,) = instance.objects_of("Edge")
        assert oid.key == Record.of(src="a", dst="b")


class TestExport:
    def test_roundtrip(self):
        original = populated()
        instance = import_database(original)
        exported = export_instance(instance, city_tables())
        assert exported.check_foreign_keys() == []
        assert {n: len(t) for n, t in exported.tables.items()} == {
            "City": 3, "Country": 2}
        assert exported.table("City").lookup("Paris")["country"] == "France"

    def test_export_rejects_missing_column(self):
        instance = import_database(populated())
        tables = city_tables()
        tables[0] = TableSchema("Country", (
            Column("name", "str"),
            Column("language", "str"),
            Column("continent", "str"),
        ), ("name",))
        with pytest.raises(RelationalError):
            export_instance(instance, tables)

    def test_export_rejects_anonymous_references(self):
        from repro.model import InstanceBuilder, Schema, record
        schema = Schema.of(
            "D",
            Country=record(name=STR, language=STR),
            City=record(name=STR, country=ClassType("Country"),
                        population=INT))
        builder = InstanceBuilder(schema)
        anon = builder.new("Country", Record.of(
            name="France", language="French"))
        builder.new("City", Record.of(
            name="Paris", country=anon, population=1))
        with pytest.raises(RelationalError):
            export_instance(builder.freeze(), city_tables())
