"""Shared test configuration: Hypothesis profiles.

The ``ci`` profile runs the property suite *derandomized*: Hypothesis
replays the same deterministic example sequence on every run, so an
order-dependence bug (the class that hid in
``TestCongruenceProperties.test_order_independence`` until PR 2) fails
on every CI run instead of only when the random shuffle happens to hit
it.  Locally the default randomized search keeps exploring new examples;
select the CI behaviour with ``HYPOTHESIS_PROFILE=ci``.
"""

import os

import pytest
from hypothesis import settings

settings.register_profile("ci", derandomize=True, print_blob=True)
settings.register_profile("dev", settings.get_profile("default"))
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(autouse=True)
def _reset_metrics_registry():
    """Zero the process-wide metrics registry around every test.

    Registrations survive (families are module-level singletons); only
    the samples reset, so no test observes counters another test
    bumped.
    """
    from repro.obs.metrics import REGISTRY
    REGISTRY.reset()
    yield
    REGISTRY.reset()
