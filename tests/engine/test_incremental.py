"""Differential tests for the incremental (delta-driven) engine.

The acceptance bar: ``IncrementalTransform.apply_delta`` and
``IncrementalAudit.apply_delta`` must produce results *identical* to a
full recompute over the updated instance — on the genome and ReLiBase
workloads and on synthetic ones, for inserts, updates (including
updates read only through stored-reference chains), deletes, mixed
batches and chains of deltas.  The full-recompute path is the oracle.
"""

import json

import pytest

from repro.adapters.acedb import AceDatabase, schema_of_acedb
from repro.constraints.audit import audit_constraints
from repro.engine import (ExecutionError, IncrementalAudit,
                          IncrementalTransform, ReverseIndex)
from repro.evolution.delta import Delta, delta_between
from repro.io.json_io import instance_to_json
from repro.model import Record, WolSet, parse_schema
from repro.model.instance import InstanceBuilder
from repro.model.values import Oid
from repro.morphase import Morphase
from repro.semantics.match import IndexPool
from repro.workloads import genome, relibase, synthetic


# ----------------------------------------------------------------------
# Shared fixtures
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def genome_morphase():
    source_schema = schema_of_acedb(
        AceDatabase("ACe22", genome.ACE_CLASSES))
    m = Morphase([source_schema], genome.warehouse_schema(),
                 genome.PROGRAM_TEXT)
    m.compile()
    return m


@pytest.fixture(scope="module")
def genome_source(genome_morphase):
    database = genome.generate_acedb(genes=40, sequences=80, clones=80,
                                     sparsity=0.9, seed=5)
    return genome_morphase._merge_sources(genome.source_instance(database))


# ----------------------------------------------------------------------
# ReverseIndex
# ----------------------------------------------------------------------

class TestReverseIndex:
    SCHEMA = parse_schema("""
    schema Chain {
      class A = (name: str, next: B) key name;
      class B = (name: str, next: C) key name;
      class C = (name: str) key name;
    }
    """).schema

    def chain_instance(self):
        builder = InstanceBuilder(self.SCHEMA)
        c = Oid.keyed("C", Record.of(name="c"))
        b = Oid.keyed("B", Record.of(name="b"))
        a = Oid.keyed("A", Record.of(name="a"))
        builder.put(c, Record.of(name="c"))
        builder.put(b, Record.of(name="b", next=c))
        builder.put(a, Record.of(name="a", next=b))
        return builder.freeze(), a, b, c

    def test_referrers_and_closure(self):
        instance, a, b, c = self.chain_instance()
        rev = ReverseIndex(instance)
        assert rev.referrers(c) == frozenset({b})
        assert rev.referrers(b) == frozenset({a})
        # The closure of the leaf includes every transitive referrer.
        assert rev.closure([c]) == {a, b, c}
        assert rev.closure([a]) == {a}

    def test_apply_delta_maintains_relation(self):
        instance, a, b, c = self.chain_instance()
        rev = ReverseIndex(instance)
        delta = Delta(deletes={"A": (a,)})
        rev.apply_delta(instance, delta)
        assert rev.referrers(b) == frozenset()
        assert rev.closure([c]) == {b, c}

    def test_update_rewires_references(self):
        instance, a, b, c = self.chain_instance()
        c2 = Oid.keyed("C", Record.of(name="c2"))
        rev = ReverseIndex(instance)
        delta = Delta(inserts={"C": {c2: Record.of(name="c2")}},
                      updates={"B": {b: Record.of(name="b", next=c2)}})
        rev.apply_delta(instance, delta)
        assert rev.referrers(c) == frozenset()
        assert rev.referrers(c2) == frozenset({b})


# ----------------------------------------------------------------------
# IndexPool delta maintenance
# ----------------------------------------------------------------------

class TestIndexPoolRebase:
    def test_local_path_maintained_in_place(self, genome_source):
        pool = IndexPool(genome_source)
        index = pool.index_for("Gene", ("name",))
        gene = sorted(genome_source.objects_of("Gene"), key=str)[0]
        name = genome_source.value_of(gene).get("name")
        assert gene in index[name]
        delta = Delta(deletes={"Gene": (gene,)})
        new_instance = delta.apply_to(genome_source,
                                      validate_changed=False)
        builds_before = pool.builds
        maintained, rebuilt = pool.rebase(
            new_instance, delta.removed_by_class(),
            delta.added_by_class())
        assert (maintained, rebuilt) == (1, 0)
        assert name not in pool.index_for("Gene", ("name",))
        assert pool.builds == builds_before  # patched, not rebuilt

    def test_deref_path_patched_via_closure(self, genome_source):
        pool = IndexPool(genome_source)
        # gene.[].name dereferences Gene objects from Sequence: renaming
        # a gene moves the entries of the *sequences* referencing it, so
        # the caller passes the referrer closure on both sides.
        pool.index_for("Sequence", ("gene", "[]", "name"))
        rev = ReverseIndex(genome_source)
        gene = next(oid for oid in sorted(
            genome_source.objects_of("Gene"), key=str)
            if rev.referrers(oid))
        value = genome_source.value_of(gene)
        delta = Delta(updates={"Gene": {
            gene: value.with_field("name", "RENAMED")}})
        new_instance = delta.apply_to(genome_source)
        closure = rev.closure([gene])
        affected = {}
        for oid in closure:
            affected.setdefault(oid.class_name, []).append(oid)
        maintained, rebuilt = pool.rebase(new_instance, affected,
                                          affected)
        assert maintained == 1
        assert rebuilt == 0
        patched = pool.index_for("Sequence", ("gene", "[]", "name"))
        fresh = IndexPool(new_instance).index_for(
            "Sequence", ("gene", "[]", "name"))
        assert {k: set(v) for k, v in patched.items()} \
            == {k: set(v) for k, v in fresh.items()}
        referencing = [oid for oid in new_instance.objects_of("Sequence")
                       if gene in new_instance.value_of(oid).get("gene")]
        assert set(patched.get("RENAMED", ())) == set(referencing)

    def test_unboundable_path_dropped(self, genome_source):
        pool = IndexPool(genome_source)
        pool.index_for("Gene", ("no_such_attr",))
        gene = sorted(genome_source.objects_of("Gene"), key=str)[0]
        delta = Delta(deletes={"Gene": (gene,)})
        new_instance = delta.apply_to(genome_source,
                                      validate_changed=False)
        maintained, rebuilt = pool.rebase(
            new_instance, delta.removed_by_class(),
            delta.added_by_class())
        assert rebuilt == 1
        assert ("Gene", ("no_such_attr",)) not in pool.indexed_keys()

    def test_rebased_index_equals_fresh_build(self, genome_source):
        pool = IndexPool(genome_source)
        pool.index_for("Sequence", ("name",))
        seq = sorted(genome_source.objects_of("Sequence"), key=str)[3]
        new_value = genome_source.value_of(seq).with_field(
            "name", "FRESH-NAME")
        gene = Oid.keyed("Gene", "GNEW")
        delta = Delta(
            updates={"Sequence": {seq: new_value}},
            inserts={"Gene": {gene: Record.of(
                name="GNEW", symbol=WolSet.of("gnew"),
                description=WolSet.of())}})
        new_instance = delta.apply_to(genome_source)
        pool.rebase(new_instance, delta.removed_by_class(),
                    delta.added_by_class())
        fresh = IndexPool(new_instance)
        patched = pool.index_for("Sequence", ("name",))
        rebuilt = fresh.index_for("Sequence", ("name",))
        assert {k: set(v) for k, v in patched.items()} \
            == {k: set(v) for k, v in rebuilt.items()}

    def test_path_dependencies(self, genome_source):
        pool = IndexPool(genome_source)
        assert pool.path_dependencies("Gene", ("name",)) \
            == frozenset({"Gene"})
        assert pool.path_dependencies("Sequence", ("gene", "[]", "name")) \
            == frozenset({"Sequence", "Gene"})
        assert pool.path_dependencies("Gene", ("no_such_attr",)) is None


# ----------------------------------------------------------------------
# IncrementalTransform differential tests (genome)
# ----------------------------------------------------------------------

class TestIncrementalTransformGenome:
    def fresh_state(self, morphase, source):
        return morphase.begin_incremental(source)

    def oracle(self, morphase, instance):
        return morphase.transform(instance).target

    def check(self, morphase, state, delta):
        result = state.apply_delta(delta)
        oracle = self.oracle(morphase, state.source)
        assert result.target.valuations == oracle.valuations
        assert (json.dumps(instance_to_json(result.target),
                           sort_keys=True)
                == json.dumps(instance_to_json(oracle), sort_keys=True))
        return result

    def test_initial_state_matches_batch(self, genome_morphase,
                                         genome_source):
        state = self.fresh_state(genome_morphase, genome_source)
        assert state.target.valuations \
            == self.oracle(genome_morphase, genome_source).valuations

    def test_insert_objects(self, genome_morphase, genome_source):
        state = self.fresh_state(genome_morphase, genome_source)
        gene = Oid.keyed("Gene", "GNEW")
        seq = Oid.keyed("Sequence", "SNEW")
        delta = Delta(inserts={
            "Gene": {gene: Record.of(
                name="GNEW", symbol=WolSet.of("gnew"),
                description=WolSet.of("a new gene"))},
            "Sequence": {seq: Record.of(
                name="SNEW", dna_length=WolSet.of(123),
                method=WolSet.of("pcr"), gene=WolSet.of(gene))},
        })
        result = self.check(genome_morphase, state, delta)
        assert result.stats.bindings_added >= 2
        assert result.stats.clauses_recomputed == 0

    def test_delete_each_class(self, genome_morphase, genome_source):
        for cname in ("Gene", "Sequence", "Clone"):
            state = self.fresh_state(genome_morphase, genome_source)
            victim = sorted(genome_source.objects_of(cname), key=str)[1]
            self.check(genome_morphase, state,
                       Delta(deletes={cname: (victim,)}))

    def test_update_each_class(self, genome_morphase, genome_source):
        for cname, attr, value in (
                ("Gene", "description", WolSet.of("rewritten")),
                ("Sequence", "method", WolSet.of("nanopore")),
                ("Clone", "length", WolSet.of(42))):
            state = self.fresh_state(genome_morphase, genome_source)
            victim = sorted(genome_source.objects_of(cname), key=str)[2]
            new_value = genome_source.value_of(victim).with_field(
                attr, value)
            self.check(genome_morphase, state,
                       Delta(updates={cname: {victim: new_value}}))

    def test_update_read_through_reference_chain(self, genome_morphase,
                                                 genome_source):
        # Clone clauses read Sequence.name through C.seq: the changed
        # sequence is never bound by a Clone member atom, so this
        # exercises the reverse-referrer seeding.
        state = self.fresh_state(genome_morphase, genome_source)
        seq = sorted(genome_source.objects_of("Sequence"), key=str)[4]
        new_value = genome_source.value_of(seq).with_field(
            "name", "RENAMED-SEQ")
        result = self.check(genome_morphase, state,
                            Delta(updates={"Sequence": {seq: new_value}}))
        assert result.stats.clauses_recomputed == 0

    def test_delete_referenced_sequence(self, genome_morphase,
                                        genome_source):
        # Clones referencing the deleted sequence lose their bindings.
        state = self.fresh_state(genome_morphase, genome_source)
        rev = ReverseIndex(genome_source)
        seq = next(
            oid for oid in sorted(genome_source.objects_of("Sequence"),
                                  key=str)
            if rev.referrers(oid))
        self.check(genome_morphase, state,
                   Delta(deletes={"Sequence": (seq,)}))

    def test_mixed_batch_and_chained_deltas(self, genome_morphase,
                                            genome_source):
        state = self.fresh_state(genome_morphase, genome_source)
        gene = Oid.keyed("Gene", "GMIX")
        clone = sorted(genome_source.objects_of("Clone"), key=str)[0]
        seq = sorted(genome_source.objects_of("Sequence"), key=str)[0]
        first = Delta(
            inserts={"Gene": {gene: Record.of(
                name="GMIX", symbol=WolSet.of("gmix"),
                description=WolSet.of("mixed"))}},
            updates={"Sequence": {seq: genome_source.value_of(
                seq).with_field("method", WolSet.of("hybrid"))}},
            deletes={"Clone": (clone,)})
        self.check(genome_morphase, state, first)
        second = Delta(deletes={"Gene": (gene,)})
        self.check(genome_morphase, state, second)
        third = Delta(updates={"Sequence": {
            seq: state.source.value_of(seq).with_field(
                "name", "S-FINAL")}})
        self.check(genome_morphase, state, third)

    def test_empty_delta_is_noop(self, genome_morphase, genome_source):
        state = self.fresh_state(genome_morphase, genome_source)
        before = state.target
        result = state.apply_delta(Delta())
        assert result.target.valuations == before.valuations
        assert result.stats.bindings_added == 0
        assert result.stats.bindings_removed == 0

    def test_random_delta_sweep(self, genome_morphase, genome_source):
        # Evolve the instance through randomised batches, comparing
        # against the oracle after each step.
        import random
        rng = random.Random(17)
        state = self.fresh_state(genome_morphase, genome_source)
        for step in range(4):
            source = state.source
            updates = {}
            deletes = {}
            for cname in ("Gene", "Sequence", "Clone"):
                extent = sorted(source.objects_of(cname), key=str)
                victims = rng.sample(extent, k=min(2, len(extent)))
                if not victims:
                    continue
                updated = victims[0]
                value = source.value_of(updated)
                updates[cname] = {updated: value.with_field(
                    "name", f"{cname}-renamed-{step}")}
                if len(victims) > 1:
                    deletes[cname] = (victims[1],)
            gene = Oid.keyed("Gene", f"G-step{step}")
            delta = Delta(
                inserts={"Gene": {gene: Record.of(
                    name=f"G-step{step}",
                    symbol=WolSet.of(f"sym{step}"),
                    description=WolSet.of(f"step {step}"))}},
                updates=updates, deletes=deletes)
            self.check(genome_morphase, state, delta)

    def test_delta_between_round_trip(self, genome_morphase,
                                      genome_source):
        # Build the delta from two instance versions with the oracle
        # differ, then propagate it.
        database = genome.generate_acedb(genes=40, sequences=80,
                                         clones=80, sparsity=0.7, seed=5)
        other = genome_morphase._merge_sources(
            genome.source_instance(database))
        state = self.fresh_state(genome_morphase, genome_source)
        delta = delta_between(genome_source, other)
        assert not delta.is_empty()
        self.check(genome_morphase, state, delta)

    def test_conflict_raises_like_batch(self, genome_morphase,
                                        genome_source):
        # Two descriptions on one gene make TG non-functional: both the
        # batch path and the incremental path must raise.
        state = self.fresh_state(genome_morphase, genome_source)
        gene = next(
            oid for oid in sorted(genome_source.objects_of("Gene"),
                                  key=str)
            if len(genome_source.value_of(oid).get("description")) == 1)
        value = genome_source.value_of(gene)
        conflicted = value.with_field(
            "description", WolSet.of("one", "two"))
        delta = Delta(updates={"Gene": {gene: conflicted}})
        with pytest.raises(ExecutionError):
            genome_morphase.transform(
                delta.apply_to(genome_source, validate_changed=False))
        with pytest.raises(ExecutionError):
            state.apply_delta(delta)
        # A failed propagation spends the session.
        with pytest.raises(ExecutionError):
            state.apply_delta(Delta())


# ----------------------------------------------------------------------
# IncrementalTransform differential tests (ReLiBase, synthetic)
# ----------------------------------------------------------------------

class TestIncrementalTransformOtherWorkloads:
    def test_relibase_differential(self):
        m = Morphase([relibase.swissprot_schema(), relibase.pdb_schema()],
                     relibase.relibase_schema(),
                     relibase.PROGRAM_TEXT)
        swissprot, pdb = relibase.generate_sources(
            proteins=25, structures_per_protein=2, ligands=10,
            bindings=30, seed=9)
        merged = m._merge_sources([swissprot, pdb])
        state = m.begin_incremental(merged)
        assert state.target.valuations \
            == m.transform(merged).target.valuations

        entry = sorted(merged.objects_of("SpEntry"), key=str)[0]
        structure = sorted(merged.objects_of("PdbStructure"), key=str)[0]
        new_structure_value = merged.value_of(structure).with_field(
            "resolution", 9.9)
        delta = Delta(updates={"PdbStructure": {
            structure: new_structure_value}},
            deletes={"SpEntry": (entry,)})
        result = state.apply_delta(delta)
        oracle = m.transform(state.source).target
        assert result.target.valuations == oracle.valuations

    def test_synthetic_wide_differential(self):
        width, items = 6, 40
        source_schema, target_schema = synthetic.wide_schemas(width)
        m = Morphase([source_schema], target_schema,
                     synthetic.wide_program(width))
        source = synthetic.wide_instance(width, items)
        merged = m._merge_sources(source)
        state = m.begin_incremental(merged)
        item = sorted(merged.objects_of("Item"), key=str)[0]
        new_item = Oid.fresh("Item")
        fields = {"name": "brand-new"}
        fields.update({f"a{i}": f"nv{i}" for i in range(width)})
        delta = Delta(
            inserts={"Item": {new_item: Record.of(**fields)}},
            updates={"Item": {item: merged.value_of(item).with_field(
                "a0", "patched")}})
        result = state.apply_delta(delta)
        oracle = m.transform(state.source).target
        assert result.target.valuations == oracle.valuations
        assert result.stats.clauses_recomputed == 0


# ----------------------------------------------------------------------
# IncrementalAudit differential tests
# ----------------------------------------------------------------------

def audit_oracle(instance, constraints):
    report = audit_constraints(instance, constraints,
                               limit_per_clause=None)
    return sorted(str(v) for name in report.violations
                  for v in report.violations[name])


class TestIncrementalAudit:
    @pytest.fixture(scope="class")
    def warehouse(self, genome_morphase, genome_source):
        return genome_morphase.transform(genome_source).target

    def test_initial_matches_batch_audit(self, warehouse):
        constraints = genome.warehouse_constraints()
        audit = IncrementalAudit(warehouse, constraints)
        assert sorted(str(v) for v in audit.violations()) \
            == audit_oracle(warehouse, constraints)

    def test_delete_raises_inclusion_violation(self, warehouse):
        constraints = genome.warehouse_constraints()
        audit = IncrementalAudit(warehouse, constraints)
        rev = ReverseIndex(warehouse)
        seq = next(oid for oid in sorted(
            warehouse.objects_of("SequenceT"), key=str)
            if rev.referrers(oid))
        delta = Delta(deletes={"SequenceT": (seq,)})
        result = audit.apply_delta(delta)
        assert result.added
        assert sorted(str(v) for v in result.violations) \
            == audit_oracle(audit.instance, constraints)

    def test_reinsert_retracts_violation(self, warehouse):
        constraints = genome.warehouse_constraints()
        audit = IncrementalAudit(warehouse, constraints)
        rev = ReverseIndex(warehouse)
        seq = next(oid for oid in sorted(
            warehouse.objects_of("SequenceT"), key=str)
            if rev.referrers(oid))
        value = warehouse.value_of(seq)
        first = audit.apply_delta(Delta(deletes={"SequenceT": (seq,)}))
        assert first.added
        second = audit.apply_delta(
            Delta(inserts={"SequenceT": {seq: value}}))
        assert second.removed
        assert sorted(str(v) for v in second.violations) \
            == audit_oracle(audit.instance, constraints)

    def test_update_rechecks_violations(self, warehouse):
        constraints = genome.warehouse_constraints()
        audit = IncrementalAudit(warehouse, constraints)
        clone = sorted(warehouse.objects_of("CloneT"), key=str)[0]
        value = warehouse.value_of(clone)
        delta = Delta(updates={"CloneT": {
            clone: value.with_field("length", -1)}})
        result = audit.apply_delta(delta)
        assert sorted(str(v) for v in result.violations) \
            == audit_oracle(audit.instance, constraints)

    def test_insert_supplies_missing_head_witness(self):
        # cities: C4 requires every country to have a capital city.
        # Inserting a country raises a violation; inserting its capital
        # afterwards must retract it — the head-witness recheck path.
        from repro.workloads import cities
        m = Morphase([cities.us_schema(), cities.euro_schema()],
                     cities.target_schema(), cities.PROGRAM_TEXT)
        merged = m._merge_sources([cities.sample_us_instance(),
                                   cities.sample_euro_instance()])
        audit = m.begin_incremental_audit(merged)
        constraints = list(m.compile().source_constraints)
        assert audit.violations() == []

        country = Oid.fresh("CountryE")
        first = m.audit_delta(audit, Delta(inserts={"CountryE": {
            country: Record.of(name="Utopia", language="utopian",
                               currency="UTO")}}))
        assert len(first.added) == 1
        assert sorted(str(v) for v in first.violations) \
            == audit_oracle(audit.instance, constraints)

        capital = Oid.fresh("CityE")
        second = m.audit_delta(audit, Delta(inserts={"CityE": {
            capital: Record.of(name="Nowhere", country=country,
                               is_capital=True)}}))
        assert len(second.removed) == 1
        assert second.violations == []
        assert audit_oracle(audit.instance, constraints) == []

    def test_relibase_inverse_constraint_under_updates(self):
        m = Morphase([relibase.swissprot_schema(), relibase.pdb_schema()],
                     relibase.relibase_schema(), relibase.PROGRAM_TEXT)
        swissprot, pdb = relibase.generate_sources(
            proteins=20, structures_per_protein=2, ligands=8,
            bindings=20, seed=4)
        target = m.transform([swissprot, pdb]).target
        constraints = relibase.relibase_constraints()
        audit = IncrementalAudit(target, constraints)
        assert sorted(str(v) for v in audit.violations()) \
            == audit_oracle(target, constraints)
        # Corrupt a protein's structures set: drop one element.
        protein = next(
            oid for oid in sorted(target.objects_of("Protein"), key=str)
            if len(target.value_of(oid).get("structures")) > 0)
        structures = list(target.value_of(protein).get("structures"))
        corrupted = target.value_of(protein).with_field(
            "structures", WolSet(frozenset(structures[1:])))
        result = audit.apply_delta(
            Delta(updates={"Protein": {protein: corrupted}}))
        assert sorted(str(v) for v in result.violations) \
            == audit_oracle(audit.instance, constraints)
        assert result.violations  # the inverse constraint now fails

    def test_random_audit_sweep(self, warehouse):
        import random
        rng = random.Random(23)
        constraints = genome.warehouse_constraints()
        audit = IncrementalAudit(warehouse, constraints)
        for step in range(3):
            instance = audit.instance
            deletes = {}
            updates = {}
            for cname in ("GeneT", "SequenceT", "CloneT"):
                extent = sorted(instance.objects_of(cname), key=str)
                if len(extent) < 2:
                    continue
                victims = rng.sample(extent, k=2)
                deletes[cname] = (victims[0],)
                value = instance.value_of(victims[1])
                if value.has("map_position"):
                    updates[cname] = {victims[1]: value.with_field(
                        "map_position", f"22q{step}")}
            delta = Delta(deletes=deletes, updates=updates)
            result = audit.apply_delta(delta)
            assert sorted(str(v) for v in result.violations) \
                == audit_oracle(audit.instance, constraints)
