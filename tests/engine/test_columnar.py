"""Unit tests for the vectorized plan executor (``engine.columnar``).

The differential fuzz harness pins whole-engine byte equality; these
tests pin the module-level contracts — the static vectorizability
rule, positional (not just set-wise) equivalence of the batch and
scalar paths, fallback re-entry mid-plan, stats counters, and the
fused-head duplicate/conflict semantics.
"""

import types

import pytest

from repro.engine.columnar import (seeded_batch_columnar, step_vectorizable,
                                   stream_plan_columnar)
from repro.engine.executor import ExecutionError
from repro.engine.planner import plan_clause
from repro.lang import parse_clause
from repro.model import InstanceBuilder, Record, WolSet
from repro.model.schema import parse_schema
from repro.morphase import Morphase
from repro.semantics import Matcher
from repro.workloads.cities import sample_euro_instance


def counters():
    return types.SimpleNamespace(vectorized_steps=0, fallback_steps=0,
                                 vectorized_rows=0, max_batch_rows=0)


def body_plan(text, classes, initial_bound=()):
    clause = parse_clause(f"T = T <= {text};", classes=classes)
    return plan_clause(clause, initial_bound=initial_bound)


EURO_CLASSES = ["CityE", "CountryE"]


class TestVectorizabilityRule:
    def test_scans_binds_and_tests_vectorize(self):
        plan = body_plan(
            "E in CountryE, N = E.name, C in CityE, E = C.country",
            EURO_CLASSES)
        assert all(step_vectorizable(step) for step in plan.steps)

    def test_pattern_equation_falls_back(self):
        plan = body_plan("E in CountryE, (x = X, y = Y) = E.name",
                         EURO_CLASSES)
        flags = [step_vectorizable(step) for step in plan.steps]
        assert flags == [True, False]

    def test_pattern_generator_falls_back(self):
        clause = parse_clause(
            "T = T <= (name = N, a = A, b = B) in Item;",
            classes=["Item"])
        plan = plan_clause(clause)
        assert not any(step_vectorizable(step) for step in plan.steps)

    def test_explain_tags_match_the_rule(self):
        plan = body_plan("E in CountryE, N = E.name", EURO_CLASSES)
        lines = plan.explain().splitlines()
        assert any("[vec]" in line for line in lines)
        assert not any("[fallback]" in line for line in lines)


class TestPositionalEquivalence:
    def test_stream_matches_scalar_order(self):
        euro = sample_euro_instance()
        plan = body_plan(
            "E in CountryE, N = E.name, C in CityE, E = C.country, "
            "M = C.name", EURO_CLASSES)
        matcher = Matcher(euro)
        scalar = list(matcher.run_plan(plan.steps))
        stats = counters()
        columnar = list(stream_plan_columnar(
            matcher, plan.steps, None, stats))
        assert columnar == scalar  # same rows, same order
        assert stats.vectorized_steps == len(plan.steps)
        assert stats.fallback_steps == 0
        assert stats.max_batch_rows >= len(euro.objects_of("CityE"))

    def test_initial_binding_respected(self):
        euro = sample_euro_instance()
        matcher = Matcher(euro)
        country = euro.objects_of("CountryE")[0]
        plan = body_plan("N = E.name, C in CityE, E = C.country",
                         EURO_CLASSES, initial_bound=("E",))
        scalar = list(matcher.run_plan_trusted(
            tuple(plan.steps), {"E": country}))
        columnar = list(stream_plan_columnar(
            matcher, plan.steps, {"E": country}))
        assert columnar == scalar

    def test_seeded_batch_groups_by_seed(self):
        euro = sample_euro_instance()
        matcher = Matcher(euro)
        seeds = list(euro.objects_of("CountryE"))
        plan = body_plan("N = E.name, C in CityE, E = C.country",
                         EURO_CLASSES, initial_bound=("E",))
        steps = tuple(plan.steps)
        scalar = [binding for oid in seeds
                  for binding in matcher.run_plan_trusted(
                      steps, {"E": oid})]
        stats = counters()
        columnar = list(seeded_batch_columnar(
            matcher, steps, "E", seeds, stats))
        assert columnar == scalar
        assert stats.vectorized_rows > 0


MIXED_SCHEMA = parse_schema("""
schema M {
  class C = (name: str, pt: (x: int, y: int), tags: {str});
}
""")


class TestFallbackReentry:
    def test_fallback_mid_plan_preserves_order_and_counts(self):
        builder = InstanceBuilder(MIXED_SCHEMA)
        for index in range(5):
            builder.make("C", f"c{index}", Record.of(
                name=f"c{index}",
                pt=Record.of(x=index, y=-index),
                tags=WolSet.of(f"t{index}", "shared")))
        instance = builder.freeze()
        matcher = Matcher(instance)
        plan = body_plan(
            "C in C, M = C.name, (x = X, y = Y) = C.pt, W in C.tags",
            ["C"])
        assert not all(step_vectorizable(step) for step in plan.steps)
        scalar = list(matcher.run_plan(plan.steps))
        stats = counters()
        columnar = list(stream_plan_columnar(
            matcher, plan.steps, None, stats))
        assert columnar == scalar
        assert stats.vectorized_steps > 0
        assert stats.fallback_steps > 0


DUP_SRC = parse_schema("""
schema DSrc {
  class Item = (name: str, grp: str, v: int);
}
""")

DUP_TGT = parse_schema("""
schema DTgt {
  class Out = (name: str, v: int) key name;
}
""")

DUP_PROGRAM = """
constraint KOut: X = Mk_Out(N) <= X in Out, N = X.name;
transformation T: X in Out, X.name = N, X.v = V
  <= I in Item, N = I.grp, V = I.v;
"""


def dup_instance(values):
    builder = InstanceBuilder(DUP_SRC)
    for index, value in enumerate(values):
        builder.make("Item", f"i{index}", Record.of(
            name=f"i{index}", grp="g", v=value))
    return builder.freeze()


class TestFusedHeadDuplicates:
    def test_agreeing_duplicates_collapse(self):
        """Several body rows minting the same object with equal values
        must publish once, with the same effect counters either way."""
        morphase = Morphase([DUP_SRC], DUP_TGT, DUP_PROGRAM)
        source = dup_instance([7, 7, 7])
        columnar = morphase.transform(source)
        scalar = morphase.transform(source, columnar=False)
        assert len(columnar.target.objects_of("Out")) == 1
        assert (columnar.stats.objects_created
                == scalar.stats.objects_created == 1)
        assert (columnar.stats.attributes_set
                == scalar.stats.attributes_set)

    def test_conflicting_duplicates_raise_identically(self):
        morphase = Morphase([DUP_SRC], DUP_TGT, DUP_PROGRAM)
        source = dup_instance([7, 8])
        with pytest.raises(ExecutionError) as scalar_error:
            morphase.transform(source, columnar=False)
        with pytest.raises(ExecutionError) as columnar_error:
            morphase.transform(source)
        assert str(columnar_error.value) == str(scalar_error.value)
