"""Edge-case and failure-injection tests for the execution layer."""

import pytest

from repro.engine import ExecutionError, Executor, execute
from repro.lang import parse_program
from repro.model import (INT, STR, ClassType, InstanceBuilder, Record,
                         Schema, WolList, WolSet, list_of, record, set_of)
from repro.semantics import Matcher


def source():
    schema = Schema.of("Src", Item=record(name=STR, rank=INT))
    builder = InstanceBuilder(schema)
    builder.new("Item", Record.of(name="a", rank=1))
    builder.new("Item", Record.of(name="b", rank=2))
    builder.new("Item", Record.of(name="c", rank=2))
    return builder.freeze()


TARGET = Schema.of("Tgt", Out=record(name=STR, rank=INT))


def program(text, classes=("Item", "Out")):
    return parse_program(text, classes=list(classes))


class TestDefaults:
    def test_default_fills_missing_attribute(self):
        prog = program(
            "T: X in Out, X = Mk_Out(N), X.name = N"
            " <= I in Item, N = I.name;")
        target, _ = execute(prog, source(), TARGET,
                            defaults={("Out", "rank"): 0})
        assert all(target.attribute(o, "rank") == 0
                   for o in target.objects_of("Out"))

    def test_default_does_not_override_derived(self):
        prog = program(
            "T: X in Out, X = Mk_Out(N), X.name = N, X.rank = R"
            " <= I in Item, N = I.name, R = I.rank;")
        target, _ = execute(prog, source(), TARGET,
                            defaults={("Out", "rank"): 99})
        ranks = sorted(target.attribute(o, "rank")
                       for o in target.objects_of("Out"))
        assert ranks == [1, 2, 2]

    def test_missing_without_default_still_errors(self):
        prog = program(
            "T: X in Out, X = Mk_Out(N), X.name = N"
            " <= I in Item, N = I.name;")
        with pytest.raises(ExecutionError):
            execute(prog, source(), TARGET,
                    defaults={("Out", "other"): 0})


class TestDuplicateFirings:
    def test_duplicate_rows_produce_one_object(self):
        # Ranks 2 appears twice: keyed by rank, both rows collapse.
        target_schema = Schema.of("Tgt", Out=record(rank=INT))
        prog = parse_program(
            "T: X in Out, X = Mk_Out(R), X.rank = R"
            " <= I in Item, R = I.rank;",
            classes=["Item", "Out"])
        target, stats = execute(prog, source(), target_schema)
        assert target.class_sizes() == {"Out": 2}
        assert stats.bindings_found == 3

    def test_rerun_on_same_executor_is_idempotent(self):
        prog = program(
            "T: X in Out, X = Mk_Out(N), X.name = N, X.rank = R"
            " <= I in Item, N = I.name, R = I.rank;")
        executor = Executor(source(), TARGET)
        executor.run_program(prog)
        executor.run_program(prog)  # same assertions, no conflicts
        target = executor.freeze()
        assert target.class_sizes() == {"Out": 3}


class TestListsAndSets:
    def test_list_attribute_membership(self):
        schema = Schema.of("Src", Doc=record(tags=list_of(STR)))
        builder = InstanceBuilder(schema)
        builder.new("Doc", Record.of(tags=WolList.of("x", "y", "x")))
        instance = builder.freeze()
        matcher = Matcher(instance)
        clause = parse_program(
            "T: A = A <= D in Doc, A in D.tags;",
            classes=["Doc"]).clauses[0]
        values = [s["A"] for s in matcher.solutions(clause.body)]
        # Lists allow duplicates: both x occurrences enumerate.
        assert sorted(values) == ["x", "x", "y"]

    def test_set_deduplicates(self):
        schema = Schema.of("Src", Doc=record(tags=set_of(STR)))
        builder = InstanceBuilder(schema)
        builder.new("Doc", Record.of(tags=WolSet.of("x", "y")))
        matcher = Matcher(builder.freeze())
        clause = parse_program(
            "T: A = A <= D in Doc, A in D.tags;",
            classes=["Doc"]).clauses[0]
        assert len(list(matcher.solutions(clause.body))) == 2


class TestIndexes:
    def test_index_and_scan_agree(self):
        matcher_indexed = Matcher(source(), use_indexes=True)
        matcher_scan = Matcher(source(), use_indexes=False)
        clause = program(
            "T: X = X <= I in Item, J in Item, N = I.name,"
            " M = J.name, N = M;").clauses[0]
        indexed = list(matcher_indexed.solutions(clause.body))
        scanned = list(matcher_scan.solutions(clause.body))
        assert len(indexed) == len(scanned) == 3

    def test_index_covers_deep_paths(self):
        schema = Schema.of(
            "Src",
            Country=record(name=STR),
            City=record(name=STR, country=ClassType("Country")))
        builder = InstanceBuilder(schema)
        fr = builder.new("Country", Record.of(name="FR"))
        de = builder.new("Country", Record.of(name="DE"))
        builder.new("City", Record.of(name="Paris", country=fr))
        builder.new("City", Record.of(name="Berlin", country=de))
        matcher = Matcher(builder.freeze())
        clause = parse_program(
            'T: X = X <= C in City, V = C.country, N = V.name,'
            ' N = "FR";',
            classes=["City", "Country"]).clauses[0]
        solutions = list(matcher.solutions(clause.body))
        assert len(solutions) == 1

    def test_prefilled_binding_uses_index(self):
        matcher = Matcher(source())
        clause = program(
            "T: X = X <= I in Item, N = I.name;").clauses[0]
        solutions = list(matcher.solutions(clause.body, {"N": "a"}))
        assert len(solutions) == 1


class TestFreezeEdgeCases:
    def test_empty_program_empty_target(self):
        executor = Executor(source(), TARGET)
        target = executor.freeze()
        assert target.size() == 0

    def test_extra_attribute_rejected(self):
        prog = program(
            "T: X in Out, X = Mk_Out(N), X.name = N, X.rank = R,"
            " X.bogus = N <= I in Item, N = I.name, R = I.rank;")
        with pytest.raises(ExecutionError):
            execute(prog, source(), TARGET)

    def test_identity_class_mismatch(self):
        prog = program(
            "T: X in Out, X = Mk_Item(N), X.name = N, X.rank = R"
            " <= I in Item, N = I.name, R = I.rank;")
        with pytest.raises(ExecutionError):
            execute(prog, source(), TARGET)


class TestProvenance:
    def test_provenance_names_clauses(self):
        prog = program(
            """
            T1: X in Out, X = Mk_Out(N), X.name = N
                <= I in Item, N = I.name;
            T2: X in Out, X = Mk_Out(N), X.rank = R
                <= I in Item, N = I.name, R = I.rank;
            """)
        executor = Executor(source(), TARGET)
        executor.run_program(prog)
        provenance = executor.provenance()
        assert provenance
        for attrs in provenance.values():
            assert attrs["name"] == "T1"
            assert attrs["rank"] == "T2"

    def test_explain_renders(self):
        prog = program(
            "T: X in Out, X = Mk_Out(N), X.name = N, X.rank = R"
            " <= I in Item, N = I.name, R = I.rank;")
        executor = Executor(source(), TARGET)
        executor.run_program(prog)
        oid = next(iter(executor.provenance()))
        text = executor.explain(oid)
        assert ".name from clause T" in text
        assert ".rank from clause T" in text

    def test_explain_unknown_object(self):
        from repro.model import Oid
        executor = Executor(source(), TARGET)
        assert "not derived" in executor.explain(Oid.fresh("Out"))
