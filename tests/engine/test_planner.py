"""Unit and differential tests for the execution planner."""

import pytest

from repro.engine import Executor, execute, plan_clause, plan_program
from repro.engine.planner import JoinPlan, PlanError, ProgramPlan
from repro.lang import parse_clause, parse_program
from repro.model import (INT, STR, InstanceBuilder, Record, Schema, WolSet,
                         record, set_of)
from repro.morphase import Morphase
from repro.normalization.optimize import (ELEMENT_STEP, constant_bindings,
                                          definition_chains)
from repro.semantics.match import (IndexPool, MatchError, Matcher,
                                   STEP_EQ_BIND, STEP_EQ_TEST,
                                   STEP_MEMBER_INDEX, STEP_MEMBER_SCAN)
from repro.workloads import cities, genome
from repro.workloads.cities import sample_euro_instance

CLASSES = ["CityE", "CountryE"]


def clause(text, classes=CLASSES):
    return parse_clause(text, classes=classes)


def body_clause(body_text, classes=CLASSES):
    return clause(f"T = T <= {body_text};", classes=classes)


class TestAtomOrdering:
    def test_tests_run_before_generators(self):
        # The comparison only becomes ready once N is bound, but the
        # second generator must wait until after it: tests prune first.
        c = body_clause(
            'E in CountryE, N = E.name, N != "Aland", C in CityE')
        plan = plan_clause(c)
        modes = [step.mode for step in plan.steps]
        assert modes.index("compare-test") < modes.index(
            "member-scan", modes.index("member-scan") + 1)

    def test_binds_run_before_generators(self):
        c = body_clause("E in CountryE, N = E.name, C in CityE")
        plan = plan_clause(c)
        modes = [step.mode for step in plan.steps]
        # bind of N sits between the two generators, not after them.
        assert modes == [STEP_MEMBER_SCAN, STEP_EQ_BIND, STEP_MEMBER_SCAN]

    def test_cheapest_generator_first(self):
        c = body_clause("C in CityE, E in CountryE")
        plan = plan_clause(c, cardinalities={"CityE": 1000, "CountryE": 3})
        assert plan.steps[0].atom.class_name == "CountryE"
        assert plan.steps[1].atom.class_name == "CityE"
        # And the other way around under inverted statistics.
        flipped = plan_clause(c, cardinalities={"CityE": 3,
                                                "CountryE": 1000})
        assert flipped.steps[0].atom.class_name == "CityE"

    def test_equality_join_becomes_indexed(self):
        c = body_clause(
            'E in CountryE, V = E.name, V = "France"')
        plan = plan_clause(c)
        indexed = [s for s in plan.steps if s.mode == STEP_MEMBER_INDEX]
        assert len(indexed) == 1
        assert indexed[0].selector_path == ("name",)

    def test_unplannable_clause_raises(self):
        # A lone comparison over unbound variables is never ready.
        c = body_clause("N < M")
        with pytest.raises(PlanError):
            plan_clause(c)

    def test_reordered_count(self):
        c = body_clause("E in CountryE, N = E.name")
        plan = plan_clause(c)
        assert plan.atoms_reordered == 0
        assert plan.order == (0, 1)


class TestDeterminismAndExplain:
    def test_plans_are_deterministic(self):
        c = body_clause(
            "C in CityE, E in CountryE, N = E.name, V = C.country")
        cards = {"CityE": 40, "CountryE": 8}
        first = plan_clause(c, cards)
        second = plan_clause(c, cards)
        assert first.steps == second.steps
        assert first.order == second.order
        assert first.explain() == second.explain()

    def test_explain_is_stable(self):
        c = body_clause("E in CountryE, N = E.name")
        plan = plan_clause(c, cardinalities={"CountryE": 8})
        assert plan.explain() == (
            "plan T = T <= E in CountryE, N = E.name;: "
            "2 steps, 0 reordered, est. cost 8\n"
            "  1. member-scan  E in CountryE [vec]  [scan CountryE]\n"
            "  2. eq-bind      N = E.name [vec]")

    def test_program_plan_explain_lists_shared_indexes(self):
        morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                            cities.target_schema(), cities.PROGRAM_TEXT)
        sources = [cities.generate_us_instance(3, 3, seed=1),
                   cities.generate_euro_instance(6, 4, seed=1)]
        plan = morphase.plan(sources)
        text = plan.explain()
        assert text == morphase.plan(sources).explain()  # stable
        assert "shared index(es)" in text
        assert "index (CityE, country.name)" in text


class TestChainAnalysis:
    def test_definition_chains_follow_projections(self):
        c = body_clause("E in CountryE, V = E.name")
        chains = definition_chains(c.body, "E")
        assert chains["E"] == ()
        assert chains["V"] == ("name",)

    def test_definition_chains_follow_memberships(self):
        schema_classes = ["Gene", "Sequence"]
        c = body_clause("Q in Sequence, S = Q.gene, G in S",
                        classes=schema_classes)
        chains = definition_chains(c.body, "Q")
        assert chains["G"] == ("gene", ELEMENT_STEP)

    def test_constant_bindings_both_orientations(self):
        c = body_clause('V = "France", "Paris" = W, E in CountryE')
        constants = constant_bindings(c.body)
        assert constants["V"].value == "France"
        assert constants["W"].value == "Paris"


def _containment_instance():
    schema = Schema.of("Src",
                       Tag=record(label=STR),
                       Doc=record(title=STR, tags=set_of(STR)))
    builder = InstanceBuilder(schema)
    builder.new("Tag", Record.of(label="a"))
    builder.new("Tag", Record.of(label="b"))
    builder.new("Doc", Record.of(title="d1", tags=WolSet.of("a", "x")))
    builder.new("Doc", Record.of(title="d2", tags=WolSet.of("b")))
    builder.new("Doc", Record.of(title="d3", tags=WolSet.of("a", "b")))
    return builder.freeze()


class TestIndexPool:
    def test_shared_pool_builds_each_index_once(self):
        instance = sample_euro_instance()
        pool = IndexPool(instance)
        pool.prebuild([("CityE", ("name",)), ("CityE", ("name",))])
        assert pool.builds == 1
        pool.lookup("CityE", ("name",), "Paris")
        assert pool.builds == 1
        assert pool.lookups == 1

    def test_hit_and_miss_counters(self):
        pool = IndexPool(sample_euro_instance())
        assert pool.lookup("CityE", ("name",), "Paris")
        assert not pool.lookup("CityE", ("name",), "Atlantis")
        assert pool.hits == 1 and pool.misses == 1

    def test_containment_path_fans_out(self):
        instance = _containment_instance()
        pool = IndexPool(instance)
        index = pool.index_for("Doc", ("tags", ELEMENT_STEP))
        titles = {value: sorted(instance.attribute(oid, "title")
                                for oid in oids)
                  for value, oids in index.items()}
        assert titles == {"a": ["d1", "d3"], "b": ["d2", "d3"],
                          "x": ["d1"]}

    def test_matcher_accepts_injected_pool(self):
        instance = sample_euro_instance()
        pool = IndexPool(instance)
        first = Matcher(instance, index_pool=pool)
        second = Matcher(instance, index_pool=pool)
        body = body_clause(
            'C in CityE, V = C.country, N = V.name, N = "France"').body
        assert list(first.solutions(body))
        builds = pool.builds
        assert list(second.solutions(body))
        assert pool.builds == builds  # reused, not rebuilt


class TestPlannedNaiveAgreement:
    """The planned path and the naive dynamic path are interchangeable."""

    def _solution_sets(self, instance, body, cards):
        def canonical(bindings):
            return sorted(
                tuple(sorted((name, str(value))
                             for name, value in b.items()))
                for b in bindings)

        c = parse_clause("T = T <= " + body + ";", classes=CLASSES)
        naive = Matcher(instance, use_indexes=False)
        plain = canonical(naive.solutions(c.body))
        pool = IndexPool(instance)
        planned_matcher = Matcher(instance, index_pool=pool)
        plan = plan_clause(c, cards)
        planned = canonical(planned_matcher.run_plan(plan.steps))
        return plain, planned

    @pytest.mark.parametrize("body", [
        "E in CountryE, N = E.name",
        'C in CityE, V = C.country, N = V.name, N = "France"',
        "C in CityE, E in CountryE, V = C.country, N = V.name, "
        "M = E.name, N = M",
        'E in CountryE, N = E.name, N != "France", C in CityE, '
        "V = C.country, W = V.name, W = N",
    ])
    def test_unindexed_and_planned_agree(self, body):
        instance = sample_euro_instance()
        cards = instance.class_sizes()
        plain, planned = self._solution_sets(instance, body, cards)
        assert plain == planned
        assert plain  # non-vacuous: every case has solutions

    def test_planned_execution_matches_naive_on_genome(self):
        """Regression: planned and naive runs build identical warehouses."""
        from repro.adapters.acedb import (AceDatabase, schema_of_acedb)
        source_schema = schema_of_acedb(
            AceDatabase("ACe22", genome.ACE_CLASSES))
        morphase = Morphase([source_schema], genome.warehouse_schema(),
                            genome.PROGRAM_TEXT)
        database = genome.generate_acedb(genes=40, sequences=80,
                                         clones=80, sparsity=0.85, seed=3)
        instance = genome.source_instance(database)
        planned = morphase.transform(instance, use_planner=True)
        naive = morphase.transform(instance, use_planner=False)
        assert planned.target.valuations == naive.target.valuations
        assert planned.stats.bindings_found == naive.stats.bindings_found
        assert planned.stats.clauses_planned == planned.stats.clauses_run
        assert naive.stats.clauses_planned == 0

    def test_execute_use_planner_flag(self):
        prog = parse_program(
            "T: X in Out, X = Mk_Out(N), X.name = N"
            " <= I in Item, N = I.name;",
            classes=["Item", "Out"])
        schema = Schema.of("Src", Item=record(name=STR))
        builder = InstanceBuilder(schema)
        builder.new("Item", Record.of(name="a"))
        builder.new("Item", Record.of(name="b"))
        source = builder.freeze()
        target_schema = Schema.of("Tgt", Out=record(name=STR))
        planned, planned_stats = execute(prog, source, target_schema,
                                         use_planner=True)
        naive, naive_stats = execute(prog, source, target_schema)
        assert planned.valuations == naive.valuations
        assert planned_stats.clauses_planned == 1
        assert naive_stats.clauses_planned == 0

    def test_plan_compiled_with_initial_bound(self):
        """Plans honouring a declared seed run only with that seed."""
        instance = sample_euro_instance()
        c = body_clause("V = C.country, N = V.name")
        plan = plan_clause(c, instance.class_sizes(),
                           initial_bound=["C"])
        matcher = Matcher(instance)
        city = instance.objects_of("CityE")[0]
        out = list(matcher.run_plan(plan.steps, initial={"C": city}))
        assert len(out) == 1
        assert out[0]["C"] == city and "N" in out[0]
        # Running without the declared seed must error, not return [].
        with pytest.raises(MatchError):
            list(matcher.run_plan(plan.steps))

    def test_initial_binding_falls_back_to_dynamic(self):
        """A plan compiled without initial bindings must not clobber them."""
        instance = sample_euro_instance()
        c = body_clause("C in CityE")
        plan = plan_clause(c, instance.class_sizes())
        matcher = Matcher(instance)
        city = instance.objects_of("CityE")[2]
        seeded = list(matcher.solutions(c.body, initial={"C": city},
                                        plan=plan.steps))
        assert seeded == [{"C": city}]  # fell back, honoured the seed
        with pytest.raises(MatchError):
            list(matcher.run_plan(plan.steps, initial={"C": city}))
        # Initial bindings disjoint from the plan's variables run planned.
        extra = list(matcher.solutions(c.body, initial={"Z": 1},
                                       plan=plan.steps))
        assert len(extra) == len(instance.objects_of("CityE"))
        assert all(b["Z"] == 1 for b in extra)

    def test_unplannable_clause_falls_back_to_dynamic(self):
        instance = sample_euro_instance()
        program = [clause("T = T <= E in CountryE, N = E.name;")]
        plan = plan_program(program, instance)
        assert not plan.unplanned
        assert isinstance(plan, ProgramPlan)
        assert isinstance(plan.plans[0], JoinPlan)


class TestProgramPlanning:
    def test_index_union_is_prebuilt_once(self):
        morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                            cities.target_schema(), cities.PROGRAM_TEXT)
        sources = [cities.generate_us_instance(4, 3, seed=1),
                   cities.generate_euro_instance(8, 4, seed=1)]
        result = morphase.transform(sources)
        stats = result.stats
        # T1+T3 and T2 share (CityE, country.name): prebuilt once on the
        # plan's shared pool, probed by both clauses; the run itself
        # builds nothing lazily (stats record per-run deltas only).
        assert result.plan.pool.builds == len(result.plan.index_paths())
        assert result.plan.prebuilt_indexes == len(result.plan.index_paths())
        assert stats.indexes_built == 0
        assert stats.clauses_planned == stats.clauses_run
        assert stats.scans_avoided == stats.index_hits + stats.index_misses
        assert stats.scans_avoided > 0

    def test_stats_are_per_run_with_shared_pool(self):
        """A pool shared across executors must not double-count stats."""
        from repro.lang import parse_program as _parse
        prog = _parse(
            "T: X in Out, X = Mk_Out(N), X.name = N"
            " <= I in Item, N = I.name, V in CollE, W = V.label, W = N;",
            classes=["Item", "Out", "CollE"])
        schema = Schema.of("Src", Item=record(name=STR),
                           CollE=record(label=STR))
        builder = InstanceBuilder(schema)
        builder.new("Item", Record.of(name="a"))
        builder.new("CollE", Record.of(label="a"))
        source = builder.freeze()
        target_schema = Schema.of("Tgt", Out=record(name=STR))
        plan = plan_program(list(prog), source)
        first = Executor(source, target_schema)
        first.run_program(prog, plan=plan)
        second = Executor(source, target_schema)
        second.run_program(prog, plan=plan)
        assert second.stats.scans_avoided == first.stats.scans_avoided
        assert second.stats.index_hits == first.stats.index_hits
        assert second.stats.indexes_built == 0  # prebuilt by the plan

    def test_eq_test_mode_for_residual_checks(self):
        c = body_clause("E in CountryE, N = E.name, M = E.name, N = M")
        plan = plan_clause(c)
        assert STEP_EQ_TEST in [s.mode for s in plan.steps]
