"""Unit tests for the one-pass executor."""

import pytest

from repro.engine import ExecutionError, Executor, execute
from repro.lang import parse_program
from repro.model import (INT, STR, ClassType, InstanceBuilder, Oid, Record,
                         Schema, Variant, WolSet, record, set_of, variant)
from repro.workloads import cities


def simple_source():
    schema = Schema.of("Src", Item=record(name=STR, rank=INT))
    builder = InstanceBuilder(schema)
    builder.new("Item", Record.of(name="a", rank=1))
    builder.new("Item", Record.of(name="b", rank=2))
    return builder.freeze()


TARGET = Schema.of("Tgt", Out=record(name=STR, rank=INT))
CLASSES = ["Item", "Out", "Coll"]


def program(text):
    return parse_program(text, classes=CLASSES)


class TestBasicExecution:
    def test_copy_transformation(self):
        prog = program(
            "T: X in Out, X = Mk_Out(N), X.name = N, X.rank = R"
            " <= I in Item, N = I.name, R = I.rank;")
        target, stats = execute(prog, simple_source(), TARGET)
        assert target.class_sizes() == {"Out": 2}
        assert stats.objects_created == 2
        assert stats.bindings_found == 2

    def test_keyed_creation_is_idempotent(self):
        # Two clauses deriving the same object merge.
        prog = program(
            """
            T1: X in Out, X = Mk_Out(N), X.name = N
                <= I in Item, N = I.name;
            T2: X in Out, X = Mk_Out(N), X.rank = R
                <= I in Item, N = I.name, R = I.rank;
            """)
        target, _ = execute(prog, simple_source(), TARGET)
        assert target.class_sizes() == {"Out": 2}
        for oid in target.objects_of("Out"):
            value = target.value_of(oid)
            assert value.has("name") and value.has("rank")

    def test_filtered_body(self):
        prog = program(
            "T: X in Out, X = Mk_Out(N), X.name = N, X.rank = R"
            " <= I in Item, N = I.name, R = I.rank, R < 2;")
        target, _ = execute(prog, simple_source(), TARGET)
        assert target.class_sizes() == {"Out": 1}

    def test_empty_source(self):
        schema = Schema.of("Src", Item=record(name=STR, rank=INT))
        from repro.model import empty_instance
        prog = program(
            "T: X in Out, X = Mk_Out(N), X.name = N, X.rank = R"
            " <= I in Item, N = I.name, R = I.rank;")
        target, stats = execute(prog, empty_instance(schema), TARGET)
        assert target.size() == 0
        assert stats.bindings_found == 0


class TestConflictsAndCompleteness:
    def test_conflicting_attribute_rejected(self):
        prog = program(
            """
            T1: X in Out, X = Mk_Out(N), X.name = N, X.rank = 0
                <= I in Item, N = I.name;
            T2: X in Out, X = Mk_Out(N), X.rank = R
                <= I in Item, N = I.name, R = I.rank;
            """)
        with pytest.raises(ExecutionError) as excinfo:
            execute(prog, simple_source(), TARGET)
        assert "conflict" in str(excinfo.value)

    def test_same_value_is_not_conflict(self):
        prog = program(
            """
            T1: X in Out, X = Mk_Out(N), X.name = N, X.rank = R
                <= I in Item, N = I.name, R = I.rank;
            T2: X in Out, X = Mk_Out(N), X.rank = R
                <= I in Item, N = I.name, R = I.rank;
            """)
        target, _ = execute(prog, simple_source(), TARGET)
        assert target.class_sizes() == {"Out": 2}

    def test_incomplete_object_rejected(self):
        prog = program(
            "T: X in Out, X = Mk_Out(N), X.name = N"
            " <= I in Item, N = I.name;")
        with pytest.raises(ExecutionError) as excinfo:
            execute(prog, simple_source(), TARGET)
        assert "incomplete" in str(excinfo.value)

    def test_incomplete_allowed_without_validation(self):
        prog = program(
            "T: X in Out, X = Mk_Out(N), X.name = N"
            " <= I in Item, N = I.name;")
        executor = Executor(simple_source(), TARGET)
        executor.run_program(prog)
        with pytest.raises(ExecutionError):
            executor.freeze(validate=True)

    def test_dangling_reference_rejected(self):
        target_schema = Schema.of(
            "Tgt", Out=record(name=STR, buddy=ClassType("Out")))
        prog = parse_program(
            "T: X in Out, X = Mk_Out(N), X.name = N,"
            ' X.buddy = Mk_Out("ghost")'
            " <= I in Item, N = I.name;",
            classes=["Item", "Out"])
        with pytest.raises(ExecutionError):
            execute(prog, simple_source(), target_schema)

    def test_non_source_body_class_rejected(self):
        prog = program(
            "T: X in Out, X = Mk_Out(N), X.name = N <= Y in Out,"
            " N = Y.name;")
        with pytest.raises(ExecutionError) as excinfo:
            execute(prog, simple_source(), TARGET)
        assert "normal form" in str(excinfo.value)


class TestSetAttributes:
    def test_set_insertion_accumulates(self):
        target_schema = Schema.of(
            "Tgt", Coll=record(name=STR, members=set_of(STR)))
        prog = parse_program(
            'T: X in Coll, X = Mk_Coll("all"), X.name = "all",'
            " N in X.members <= I in Item, N = I.name;",
            classes=["Item", "Coll"])
        target, _ = execute(prog, simple_source(), target_schema)
        (oid,) = target.objects_of("Coll")
        assert target.attribute(oid, "members") == WolSet.of("a", "b")

    def test_empty_set_attribute_defaults(self):
        target_schema = Schema.of(
            "Tgt", Coll=record(name=STR, members=set_of(STR)))
        prog = parse_program(
            'T: X in Coll, X = Mk_Coll(N), X.name = N'
            " <= I in Item, N = I.name;",
            classes=["Item", "Coll"])
        target, _ = execute(prog, simple_source(), target_schema)
        for oid in target.objects_of("Coll"):
            assert target.attribute(oid, "members") == WolSet.of()


class TestIdentityOrdering:
    def test_nested_identities(self):
        # A city identity embedding its country identity.
        target_schema = Schema.of(
            "Tgt",
            CountryT=record(name=STR),
            CityT=record(name=STR, country=ClassType("CountryT")))
        prog = parse_program(
            """
            T1: C in CountryT, C = Mk_CountryT(CN), C.name = CN
                <= E in Item, CN = E.name;
            T2: X in CityT, C in CountryT, C = Mk_CountryT(CN),
                C.name = CN, X = Mk_CityT(name = N, country = C),
                X.name = N, X.country = C
                <= E in Item, CN = E.name, N = E.name;
            """,
            classes=["Item", "CityT", "CountryT"])
        target, _ = execute(prog, simple_source(), target_schema)
        assert target.class_sizes() == {"CityT": 2, "CountryT": 2}

    def test_identity_mismatch_detected(self):
        prog = program(
            'T: X in Out, X = Mk_Out(N), X.name = N, X.rank = 1'
            ' <= I in Item, N = I.name, X = Mk_Out("fixed");')
        with pytest.raises(ExecutionError) as excinfo:
            execute(prog, simple_source(), TARGET)
        assert "identity mismatch" in str(excinfo.value)


class TestEndToEndCities:
    def test_normalized_program_executes(self):
        from repro.morphase import Morphase
        morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                            cities.target_schema(), cities.PROGRAM_TEXT)
        result = morphase.transform([cities.sample_us_instance(),
                                     cities.sample_euro_instance()])
        assert result.target.class_sizes() == {
            "CityT": 12, "CountryT": 3, "StateT": 2}

    def test_stats_populated(self):
        from repro.morphase import Morphase
        morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                            cities.target_schema(), cities.PROGRAM_TEXT)
        result = morphase.transform([cities.sample_us_instance(),
                                     cities.sample_euro_instance()])
        assert result.stats.clauses_run == 4
        assert result.stats.objects_created == 17
