"""Parallel sharded execution: parity, edge cases and shard plumbing.

The differential oracle discipline of PRs 1-3 continues here: every
test compares the parallel engine against the sequential planned path
(itself pinned against the naive matcher elsewhere) and insists on
*byte-identical* serialised targets and *equal* violation sets — not
just equal class counts.

Most tests run the shard pipeline in-process (``use_processes=False``):
shard compilation, restricted enumeration and pending-store merging are
identical either way, and the suite stays fast.  A small number of
tests cross real process boundaries to pin the pickle envelopes and the
cross-process stability of the shard hash.
"""

import json

import pytest

from repro.engine import (ExecutionError, execute, execute_parallel,
                          audit_parallel, plan_clause,
                          shard_constraint_plan, shard_join_plan,
                          shardable_step)
from repro.engine.planner import plan_constraint
from repro.evolution.delta import Delta
from repro.io.json_io import instance_to_json
from repro.lang import parse_clause
from repro.model import InstanceBuilder, Record
from repro.model.schema import parse_schema
from repro.morphase import Morphase, MorphaseError
from repro.semantics.match import shard_of
from repro.semantics.satisfaction import program_violations
from repro.adapters.acedb import AceDatabase, schema_of_acedb
from repro.workloads import genome, relibase


def serialized(instance) -> str:
    """Canonical byte-level rendering of an instance."""
    return json.dumps(instance_to_json(instance), sort_keys=True)


@pytest.fixture(scope="module")
def genome_morphase():
    source_schema = schema_of_acedb(
        AceDatabase("ACe22", genome.ACE_CLASSES))
    m = Morphase([source_schema], genome.warehouse_schema(),
                 genome.PROGRAM_TEXT)
    m.compile()
    return m


@pytest.fixture(scope="module")
def genome_source():
    return genome.source_instance(genome.generate_acedb(
        genes=40, sequences=80, clones=80, sparsity=0.85, seed=13))


@pytest.fixture(scope="module")
def relibase_morphase():
    m = Morphase([relibase.swissprot_schema(), relibase.pdb_schema()],
                 relibase.relibase_schema(), relibase.PROGRAM_TEXT)
    m.compile()
    return m


# ----------------------------------------------------------------------
# Shard plumbing
# ----------------------------------------------------------------------

class TestShardPlumbing:
    def test_shard_of_partitions_every_oid(self, genome_source):
        for count in (1, 2, 5):
            for oid in genome_source.all_oids():
                assert 0 <= shard_of(oid, count) < count
        # Several shards are actually populated (the hash spreads).
        shards = {shard_of(oid, 4) for oid in genome_source.all_oids()}
        assert len(shards) > 1

    def test_shard_join_plan_marks_only_driving_step(self):
        clause = parse_clause(
            "T = T <= Q in Sequence, N = Q.name, C in Clone;",
            classes=["Sequence", "Clone"])
        plan = plan_clause(clause)
        position = shardable_step(plan)
        sharded = shard_join_plan(plan, 1, 3)
        marked = [i for i, step in enumerate(sharded.steps)
                  if step.shard is not None]
        assert marked == [position]
        assert sharded.steps[position].shard == (1, 3)

    def test_plan_without_generator_is_unshardable(self):
        # Both member atoms test pre-bound variables; nothing generates
        # from an extent, so there is no driving step to shard.
        clause = parse_clause("T = T <= X = 1, Y = 2, X < Y;",
                              classes=["Sequence"])
        plan = plan_clause(clause)
        assert shardable_step(plan) is None
        assert shard_join_plan(plan, 0, 2) is None

    def test_single_shard_variant_is_the_plan_itself(self):
        clause = parse_clause("T = T <= Q in Sequence;",
                              classes=["Sequence"])
        plan = plan_clause(clause)
        assert shard_join_plan(plan, 0, 1) is plan

    def test_constraint_plan_shards_body_only(self):
        clause = parse_clause(
            "M in Clone <= Q in Sequence;", classes=["Sequence", "Clone"])
        plan = plan_constraint(clause)
        sharded = shard_constraint_plan(plan, 0, 2)
        assert any(step.shard for step in sharded.body.steps)
        assert sharded.head is plan.head

    def test_sharded_plans_partition_solutions(self, genome_morphase,
                                               genome_source):
        """Per-shard binding counts sum exactly to the sequential count."""
        merged = genome_morphase._merge_sources(genome_source)
        program = genome_morphase.compile().program()
        _, sequential = execute(program, merged,
                                genome_morphase.target_plain,
                                use_planner=True)
        _, parallel = execute_parallel(program, merged,
                                       genome_morphase.target_plain, 4,
                                       use_processes=False)
        assert parallel.bindings_found == sequential.bindings_found
        assert parallel.objects_created == sequential.objects_created
        assert parallel.shards_run == 4


# ----------------------------------------------------------------------
# Transform parity
# ----------------------------------------------------------------------

class TestTransformParity:
    @pytest.mark.parametrize("workers", [1, 2, 4, 7])
    def test_genome_byte_identical(self, genome_morphase, genome_source,
                                   workers):
        merged = genome_morphase._merge_sources(genome_source)
        program = genome_morphase.compile().program()
        sequential, _ = execute(program, merged,
                                genome_morphase.target_plain,
                                use_planner=True)
        parallel, _ = execute_parallel(program, merged,
                                       genome_morphase.target_plain,
                                       workers, use_processes=False)
        assert serialized(parallel) == serialized(sequential)

    def test_genome_across_processes(self, genome_morphase,
                                     genome_source):
        """The real ProcessPoolExecutor path: envelopes pickle, the
        shard hash agrees across interpreters, targets stay identical."""
        sequential = genome_morphase.transform(genome_source).target
        result = genome_morphase.transform(genome_source, parallel=2)
        assert serialized(result.target) == serialized(sequential)
        assert result.stats.shards_run == 2
        assert result.stats.parallel_workers == 2

    def test_relibase_set_valued_attributes(self, relibase_morphase):
        """Set accumulation across shards unions exactly (Protein.structures)."""
        sources = list(relibase.generate_sources(
            proteins=25, structures_per_protein=3, ligands=10,
            bindings=30, seed=5))
        sequential = relibase_morphase.transform(sources).target
        for workers in (2, 5):
            parallel, _ = execute_parallel(
                relibase_morphase.compile().program(),
                relibase_morphase._merge_sources(sources),
                relibase_morphase.target_plain, workers,
                use_processes=False)
            assert serialized(parallel) == serialized(sequential)

    def test_conflict_detected_in_parallel(self):
        """A non-functional program fails under parallel execution too
        (the conflict may surface in a worker or at merge time)."""
        source_schema = parse_schema(
            "schema Src { class A = (name: str, val: int); }")
        target_schema = parse_schema(
            "schema Tgt { class AT = (name: str, val: int) key name; }")
        builder = InstanceBuilder(source_schema)
        builder.new("A", Record.of(name="dup", val=1))
        builder.new("A", Record.of(name="dup", val=2))
        source = builder.freeze()
        m = Morphase([source_schema], target_schema, """
            transformation T:
              X in AT, X.name = N, X.val = V
              <= A in A, N = A.name, V = A.val;
        """)
        with pytest.raises((ExecutionError, MorphaseError)):
            m.transform(source)
        with pytest.raises((ExecutionError, MorphaseError)):
            m.transform(source, parallel=3)


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------

class TestEdgeCases:
    def test_empty_class_extents(self, genome_morphase):
        """A fully empty source fans out to empty shards and merges to
        the same (empty) target the sequential path builds."""
        empty = genome.source_instance(
            AceDatabase("ACe22", genome.ACE_CLASSES))
        sequential = genome_morphase.transform(empty).target
        parallel = genome_morphase.transform(empty, parallel=3).target
        assert serialized(parallel) == serialized(sequential)
        assert parallel.size() == 0

    def test_more_shards_than_objects(self, genome_morphase):
        """Zero-object shards contribute nothing and break nothing."""
        tiny = genome.source_instance()  # a handful of objects
        sequential = genome_morphase.transform(tiny).target
        parallel, stats = execute_parallel(
            genome_morphase.compile().program(),
            genome_morphase._merge_sources(tiny),
            genome_morphase.target_plain, 16, use_processes=False)
        assert serialized(parallel) == serialized(sequential)
        assert stats.shards_run == 16

    def test_parallel_one_equals_sequential(self, genome_morphase,
                                            genome_source):
        """The degenerate parallel=1 run is the sequential planned run."""
        sequential = genome_morphase.transform(genome_source)
        degenerate = genome_morphase.transform(genome_source, parallel=1)
        assert (serialized(degenerate.target)
                == serialized(sequential.target))
        assert (degenerate.stats.bindings_found
                == sequential.stats.bindings_found)
        # One shard, executed in-process: no worker pool was paid for.
        assert degenerate.stats.shards_run == 1
        assert degenerate.stats.parallel_workers == 0

    def test_noop_delta_through_incremental(self, genome_morphase,
                                            genome_source):
        """An empty delta and an identical-value update both leave the
        incrementally-maintained target byte-identical."""
        state = genome_morphase.begin_incremental(genome_source)
        before = serialized(state.target)
        result = genome_morphase.apply_delta(state, Delta())
        assert serialized(result.target) == before
        assert result.stats.delta_size == 0

        # An "update" that rewrites an object to its existing value.
        merged = genome_morphase._merge_sources(genome_source)
        cname = "Sequence"
        oid = merged.objects_of(cname)[0]
        same_value = merged.value_of(oid)
        result = genome_morphase.apply_delta(
            state, Delta(updates={cname: {oid: same_value}}))
        assert serialized(result.target) == before

    def test_parallel_rejects_bad_configuration(self, genome_morphase,
                                                genome_source):
        with pytest.raises(MorphaseError):
            genome_morphase.transform(genome_source, parallel=0)
        with pytest.raises(MorphaseError):
            genome_morphase.transform(genome_source, parallel=2,
                                      use_planner=False)
        with pytest.raises(MorphaseError):
            genome_morphase.transform(genome_source, parallel=2,
                                      backend="cpl")
        with pytest.raises(ValueError):
            program_violations(genome_source, [], use_planner=False,
                               parallel=2)


# ----------------------------------------------------------------------
# Audit parity
# ----------------------------------------------------------------------

def corrupted_warehouse(genome_morphase, genome_source):
    """A warehouse with seeded key-uniqueness violations.

    The schema-derived key constraints say "equal key attribute implies
    equal object", so the corruption *duplicates* key values: the first
    gene takes the second gene's symbol and the first clone the second
    clone's name.  The instance stays well-formed (only scalar fields
    move), but several key audits now fail.
    """
    target = genome_morphase.transform(genome_source).target
    builder = target.builder()
    genes = sorted(target.objects_of("GeneT"), key=str)
    builder.put(genes[0], target.value_of(genes[0]).with_field(
        "symbol", target.value_of(genes[1]).get("symbol")))
    clones = sorted(target.objects_of("CloneT"), key=str)
    builder.put(clones[0], target.value_of(clones[0]).with_field(
        "name", target.value_of(clones[1]).get("name")))
    return builder.freeze(validate=False)


class TestAuditParity:
    def test_clean_warehouse_has_no_violations(self, genome_morphase,
                                               genome_source):
        target = genome_morphase.transform(genome_source).target
        constraints = genome.warehouse_constraints()
        result = audit_parallel(constraints, target, 3,
                                use_processes=False)
        assert result.violations(constraints) == []
        assert result.shards_run == 3

    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_violation_sets_union_to_sequential(self, genome_morphase,
                                                genome_source, workers):
        corrupted = corrupted_warehouse(genome_morphase, genome_source)
        constraints = genome.warehouse_constraints()
        sequential = sorted(str(v) for v in program_violations(
            corrupted, constraints, limit_per_clause=None))
        assert sequential  # the corruption is visible
        result = audit_parallel(constraints, corrupted, workers,
                                use_processes=False)
        parallel = sorted(str(v) for v in result.violations(constraints))
        assert parallel == sequential

    def test_violations_across_processes(self, genome_morphase,
                                         genome_source):
        corrupted = corrupted_warehouse(genome_morphase, genome_source)
        constraints = genome.warehouse_constraints()
        sequential = sorted(str(v) for v in program_violations(
            corrupted, constraints, limit_per_clause=None))
        parallel = sorted(str(v) for v in program_violations(
            corrupted, constraints, limit_per_clause=None, parallel=2))
        assert parallel == sequential

    def test_limit_truncates_deterministically(self, genome_morphase,
                                               genome_source):
        """A capped parallel audit reports the same violation subset on
        every run *and at every worker count* (shards collect uncapped;
        the merged, textually-sorted list is what truncates)."""
        corrupted = corrupted_warehouse(genome_morphase, genome_source)
        constraints = genome.warehouse_constraints()
        reports = [audit_parallel(constraints, corrupted, workers,
                                  limit_per_clause=1,
                                  use_processes=False)
                   for workers in (3, 3, 2, 5)]
        rendered = [[str(v) for v in report.violations(constraints)]
                    for report in reports]
        assert all(entry == rendered[0] for entry in rendered[1:])
        for violations in reports[0].violations_by_clause.values():
            assert len(violations) <= 1
