"""Unit tests for the query layer."""

import pytest

from repro.query import Query, QueryError, query
from repro.workloads import cities, persons


@pytest.fixture(scope="module")
def euro():
    return cities.sample_euro_instance()


CLASSES = cities.euro_schema().schema.class_names()


class TestParse:
    def test_projection_and_body(self):
        q = Query.parse("N | X in CityE, N = X.name", classes=CLASSES)
        assert q.projection == ("N",)
        assert len(q.body) == 2

    def test_star_means_all(self):
        q = Query.parse("* | X in CityE, N = X.name", classes=CLASSES)
        assert q.projection == ()
        assert set(q.variables()) == {"X", "N"}

    def test_no_projection_defaults_to_all(self):
        q = Query.parse("X in CityE", classes=CLASSES)
        assert q.projection == ()

    def test_trailing_semicolon_tolerated(self):
        q = Query.parse("N | X in CityE, N = X.name;", classes=CLASSES)
        assert q.projection == ("N",)

    def test_unknown_projection_rejected(self):
        with pytest.raises(QueryError):
            Query.parse("Z | X in CityE", classes=CLASSES)

    def test_unsafe_body_rejected(self):
        with pytest.raises(QueryError):
            Query.parse("N | X in CityE, X.name < N", classes=CLASSES)

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            Query.parse("N | ", classes=CLASSES)

    def test_syntax_error_reported(self):
        with pytest.raises(QueryError):
            Query.parse("N | X in in CityE", classes=CLASSES)


class TestRun:
    def test_filter_and_project(self, euro):
        rows = query(euro,
                     "N | X in CityE, X.is_capital = true, N = X.name")
        assert sorted(r["N"] for r in rows) == [
            "Berlin", "London", "Paris"]

    def test_join_through_reference(self, euro):
        rows = query(
            euro,
            'N | X in CityE, X.country.name = "France", N = X.name')
        assert sorted(r["N"] for r in rows) == ["Lyon", "Paris"]

    def test_count_and_exists(self, euro):
        q = Query.parse("X in CityE", classes=CLASSES)
        assert q.count(euro) == 7
        assert q.exists(euro)
        empty = Query.parse('X in CityE, X.name = "Gotham"',
                            classes=CLASSES)
        assert not empty.exists(euro)
        assert empty.count(euro) == 0

    def test_distinct(self, euro):
        q = Query.parse("L | C in CountryE, L = C.language",
                        classes=CLASSES)
        assert len(q.rows(euro)) == 3
        assert len(q.distinct(euro)) == 3
        # Same language twice after adding a country.
        builder = euro.builder()
        from repro.model import Record
        builder.new("CountryE", Record.of(
            name="Austria", language="German", currency="schilling"))
        extended = builder.freeze()
        assert len(q.rows(extended)) == 4
        assert len(q.distinct(extended)) == 3

    def test_cross_class_join(self, euro):
        rows = query(
            euro,
            "CN | X in CityE, C in CountryE, X.country = C,"
            " X.is_capital = true, CN = C.name")
        assert len(rows) == 3

    def test_variant_patterns(self):
        source = persons.sample_instance()
        rows = query(source,
                     "N | P in Person, P.sex = ins_male(), N = P.name")
        assert sorted(r["N"] for r in rows) == ["Adam", "Carl", "Evan"]

    def test_table_rendering(self, euro):
        q = Query.parse("N, L | C in CountryE, N = C.name,"
                        " L = C.language", classes=CLASSES)
        text = q.table(euro)
        assert "France" in text
        assert text.splitlines()[0].startswith("N")

    def test_table_limit(self, euro):
        q = Query.parse("N | X in CityE, N = X.name", classes=CLASSES)
        text = q.table(euro, limit=2)
        assert "..." in text

    def test_rows_are_projected(self, euro):
        rows = query(euro, "N | X in CityE, N = X.name")
        assert all(set(row) == {"N"} for row in rows)
