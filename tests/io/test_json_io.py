"""Unit tests for JSON serialisation of schemas and instances."""

import json

import pytest

from repro.io import (JsonIoError, dump_instance, dump_schema,
                      instance_from_json, instance_to_json, load_instance,
                      load_schema, schema_from_json, schema_to_json,
                      value_from_json, value_to_json)
from repro.model import (KeyedSchema, Oid, Record, Schema, UNIT_VALUE,
                         Variant, WolList, WolSet, isomorphic)
from repro.workloads import cities, genome, persons


class TestValueRoundtrip:
    @pytest.mark.parametrize("value", [
        42, -1, 2.5, True, False, "text", "", UNIT_VALUE,
        Record.of(a=1, b="x"),
        Variant("male"),
        Variant("tag", Record.of(x=1)),
        WolSet.of(1, 2, 3),
        WolSet.of(),
        WolList.of("a", "b", "a"),
        Oid.keyed("CityT", "Paris"),
        Oid.keyed("CityT", Record.of(name="Paris", cn="France")),
        Record.of(nested=WolSet.of(Variant("v", WolList.of(1)))),
    ])
    def test_roundtrip(self, value):
        encoded = value_to_json(value)
        json.dumps(encoded)  # must be JSON-compatible
        assert value_from_json(encoded) == value

    def test_bool_int_distinction_preserved(self):
        assert value_from_json(value_to_json(True)) is True
        assert value_from_json(value_to_json(1)) == 1

    def test_anonymous_oid_roundtrip(self):
        oid = Oid.fresh("CityA")
        assert value_from_json(value_to_json(oid)) == oid

    def test_bad_data_rejected(self):
        with pytest.raises(JsonIoError):
            value_from_json({"$nope": 1})
        with pytest.raises(JsonIoError):
            value_from_json(None)


class TestSchemaRoundtrip:
    def test_plain_schema(self):
        schema = cities.target_schema().schema
        decoded = schema_from_json(schema_to_json(schema))
        assert isinstance(decoded, Schema)
        assert decoded.classes == schema.classes

    def test_keyed_schema(self):
        keyed = cities.euro_schema()
        decoded = schema_from_json(schema_to_json(keyed))
        assert isinstance(decoded, KeyedSchema)
        assert decoded.schema.classes == keyed.schema.classes
        assert (decoded.keys.key_for("CityE").components
                == keyed.keys.key_for("CityE").components)

    def test_missing_fields_rejected(self):
        with pytest.raises(JsonIoError):
            schema_from_json({"name": "X"})


class TestInstanceRoundtrip:
    @pytest.mark.parametrize("instance_factory", [
        cities.sample_euro_instance,
        cities.sample_us_instance,
        persons.sample_instance,
        genome.source_instance,
    ])
    def test_roundtrip_isomorphic(self, instance_factory):
        instance = instance_factory()
        data = instance_to_json(instance)
        json.dumps(data)
        back = instance_from_json(data)
        back.validate()
        assert isomorphic(instance, back)

    def test_keyed_oids_roundtrip_identically(self):
        # Transformation outputs use keyed oids: equality, not just
        # isomorphism.
        from repro.morphase import Morphase
        morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                            cities.target_schema(), cities.PROGRAM_TEXT)
        target = morphase.transform([cities.sample_us_instance(),
                                     cities.sample_euro_instance()]).target
        back = instance_from_json(instance_to_json(target))
        assert back.valuations == target.valuations

    def test_dump_is_deterministic(self):
        instance = cities.sample_euro_instance()
        first = json.dumps(instance_to_json(instance), sort_keys=True)
        second = json.dumps(instance_to_json(instance), sort_keys=True)
        assert first == second

    def test_anonymous_references_stay_consistent(self):
        instance = persons.sample_instance()  # anonymous oids, cyclic
        back = instance_from_json(instance_to_json(instance))
        for person in back.objects_of("Person"):
            spouse = back.attribute(person, "spouse")
            assert back.attribute(spouse, "spouse") == person

    def test_file_roundtrip(self, tmp_path):
        instance = cities.sample_euro_instance()
        path = tmp_path / "euro.json"
        dump_instance(instance, str(path))
        loaded = load_instance(str(path))
        assert isomorphic(instance, loaded)

    def test_schema_file_roundtrip(self, tmp_path):
        path = tmp_path / "schema.json"
        dump_schema(cities.euro_schema(), str(path))
        loaded = load_schema(str(path))
        assert isinstance(loaded, KeyedSchema)

    def test_explicit_schema_override(self):
        instance = cities.sample_euro_instance()
        data = instance_to_json(instance)
        back = instance_from_json(data,
                                  schema=cities.euro_schema().schema)
        assert isomorphic(instance, back)
