"""Unit tests for the Morphase façade (paper Section 5, Figure 6)."""

import pytest

from repro.lang import RangeRestrictionError, TypecheckError
from repro.model import InstanceBuilder, Record, isomorphic
from repro.normalization import NormalizationError
from repro.morphase import Morphase, MorphaseError
from repro.normalization import NormalizationOptions
from repro.workloads import cities, persons


@pytest.fixture(scope="module")
def city_morphase():
    return Morphase([cities.us_schema(), cities.euro_schema()],
                    cities.target_schema(), cities.PROGRAM_TEXT)


@pytest.fixture(scope="module")
def city_sources():
    return [cities.sample_us_instance(), cities.sample_euro_instance()]


class TestCompile:
    def test_compile_is_cached(self, city_morphase):
        first = city_morphase.compile()
        second = city_morphase.compile()
        assert first is second
        assert city_morphase.compile(force=True) is not first

    def test_typecheck_runs_at_construction(self):
        with pytest.raises(TypecheckError):
            Morphase([cities.us_schema()], cities.target_schema(),
                     "T: X in StateT, X.name = S.mayor <= S in StateA;")

    def test_range_restriction_runs_at_construction(self):
        with pytest.raises(RangeRestrictionError):
            Morphase([cities.us_schema()], cities.target_schema(),
                     "T: X.name < Y <= X in StateA;")

    def test_auto_keys_generated(self, city_morphase):
        normalized = city_morphase.compile()
        # StateT/CountryT keys came from the schema key spec via
        # metadata generation; CityT was hand-written in the program.
        assert set(normalized.key_clauses) == {"CityT", "CountryT",
                                               "StateT"}

    def test_auto_keys_disabled(self):
        # Male/Female keys only exist via metadata generation; without it
        # the persons program cannot identify the created objects.
        morphase = Morphase(
            [persons.person_schema()], persons.evolved_schema(),
            persons.PROGRAM_TEXT, auto_keys=False)
        with pytest.raises(NormalizationError):
            morphase.compile()


class TestTransform:
    def test_transform_produces_expected_sizes(self, city_morphase,
                                               city_sources):
        result = city_morphase.transform(city_sources)
        assert result.target.class_sizes() == {
            "CityT": 12, "CountryT": 3, "StateT": 2}

    def test_transform_accepts_single_instance(self):
        morphase = Morphase([persons.person_schema()],
                            persons.evolved_schema(),
                            persons.PROGRAM_TEXT)
        result = morphase.transform(persons.sample_instance())
        assert result.target.class_sizes() == {
            "Male": 3, "Female": 3, "Marriage": 3}

    def test_unknown_backend_rejected(self, city_morphase, city_sources):
        with pytest.raises(MorphaseError):
            city_morphase.transform(city_sources, backend="sybase")

    def test_audit_of_result_is_clean(self, city_morphase, city_sources):
        result = city_morphase.transform(city_sources)
        assert city_morphase.audit(city_sources, result.target) == []

    def test_audit_catches_missing_target_object(self, city_morphase,
                                                 city_sources):
        result = city_morphase.transform(city_sources)
        builder = result.target.builder()
        # Remove a CityT: T2 is then violated.
        victim = next(iter(result.target.objects_of("CityT")))
        damaged = {cname: {o: v for o, v in objs.items() if o != victim}
                   for cname, objs in result.target.valuations.items()}
        from repro.model import Instance
        broken = Instance(result.target.schema, damaged)
        assert city_morphase.audit(city_sources, broken)


class TestSourceChecking:
    def test_clean_source_passes(self, city_morphase, city_sources):
        result = city_morphase.transform(city_sources,
                                         check_source_constraints=True)
        assert result.source_violations == ()

    def test_violating_source_rejected(self, city_morphase):
        builder = cities.sample_euro_instance().builder()
        builder.new("CountryE", Record.of(
            name="Utopia", language="?", currency="?"))
        broken = builder.freeze()
        with pytest.raises(MorphaseError) as excinfo:
            city_morphase.transform(
                [cities.sample_us_instance(), broken],
                check_source_constraints=True)
        assert "source constraints" in str(excinfo.value)

    def test_key_violation_reported(self, city_morphase):
        builder = cities.sample_euro_instance().builder()
        uk = next(o for o in builder.objects_of("CountryE")
                  if builder.value_of(o).get("name") == "United Kingdom")
        builder.new("CountryE", Record.of(
            name="United Kingdom", language="Welsh", currency="pound"))
        broken = builder.freeze()
        violations = city_morphase.check_source(
            __import__("repro.semantics", fromlist=["merge_instances"])
            .merge_instances("__source__",
                             [cities.sample_us_instance(), broken]))
        assert any("key" in (v.clause.name or "") for v in violations)


class TestOptions:
    def test_options_flow_through(self, city_sources):
        morphase = Morphase(
            [cities.us_schema(), cities.euro_schema()],
            cities.target_schema(), cities.PROGRAM_TEXT,
            options=NormalizationOptions(use_constraints=False))
        normalized = morphase.compile()
        assert normalized.report.pruned_unsatisfiable == 0
        # The unoptimised program still computes the right instance.
        result = morphase.transform(city_sources)
        reference = Morphase(
            [cities.us_schema(), cities.euro_schema()],
            cities.target_schema(), cities.PROGRAM_TEXT).transform(
                city_sources)
        assert result.target.valuations == reference.target.valuations
