"""Unit tests for the command-line front end."""

import json

import pytest

from repro.cli import main
from repro.io import dump_instance, load_instance
from repro.model import Record
from repro.workloads import cities


@pytest.fixture()
def workspace(tmp_path):
    (tmp_path / "us.schema").write_text(cities.US_SCHEMA_TEXT)
    (tmp_path / "euro.schema").write_text(cities.EURO_SCHEMA_TEXT)
    (tmp_path / "target.schema").write_text(cities.TARGET_SCHEMA_TEXT)
    (tmp_path / "program.wol").write_text(cities.PROGRAM_TEXT)
    dump_instance(cities.sample_us_instance(), str(tmp_path / "us.json"))
    dump_instance(cities.sample_euro_instance(),
                  str(tmp_path / "euro.json"))
    return tmp_path


def run(workspace, *argv):
    return main([str(a).replace("$W", str(workspace)) for a in argv])


class TestCompile:
    def test_compile_succeeds(self, workspace, capsys):
        code = run(workspace, "compile",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/program.wol")
        out = capsys.readouterr().out
        assert code == 0
        assert "transformation T1+T3" in out
        assert "-- output: 4 clauses" in out

    def test_compile_reports_uncovered(self, workspace, capsys):
        (workspace / "partial.wol").write_text("""
            constraint C3: Y = Mk_CountryT(N) <= Y in CountryT,
                                                 N = Y.name;
            transformation T1:
              X in CountryT, X.name = E.name <= E in CountryE;
        """)
        code = run(workspace, "compile",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/partial.wol")
        assert code == 1
        assert "uncovered" in capsys.readouterr().out

    def test_bad_program_reports_error(self, workspace, capsys):
        (workspace / "bad.wol").write_text("this is not WOL;")
        code = run(workspace, "compile",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/bad.wol")
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestTransform:
    def test_transform_writes_target(self, workspace, capsys):
        code = run(workspace, "transform",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/program.wol",
                   "--data", "$W/us.json", "--data", "$W/euro.json",
                   "--out", "$W/out.json", "--audit")
        out = capsys.readouterr().out
        assert code == 0
        assert "CityT=12" in out
        assert "audit: all clauses satisfied" in out
        target = load_instance(str(workspace / "out.json"))
        assert target.class_sizes() == {
            "CityT": 12, "CountryT": 3, "StateT": 2}

    def test_cpl_backend(self, workspace, capsys):
        code = run(workspace, "transform",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/program.wol",
                   "--data", "$W/us.json", "--data", "$W/euro.json",
                   "--out", "$W/out_cpl.json", "--backend", "cpl")
        assert code == 0
        direct = load_instance(str(workspace / "out_cpl.json"))
        assert direct.class_sizes()["CityT"] == 12

    def test_check_source_rejects_bad_instance(self, workspace, capsys):
        builder = cities.sample_euro_instance().builder()
        builder.new("CountryE", Record.of(
            name="Utopia", language="?", currency="?"))
        dump_instance(builder.freeze(), str(workspace / "bad_euro.json"))
        code = run(workspace, "transform",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/program.wol",
                   "--data", "$W/us.json", "--data", "$W/bad_euro.json",
                   "--out", "$W/out.json", "--check-source")
        assert code == 2
        assert "source constraints" in capsys.readouterr().err


class TestCheck:
    def test_satisfied_constraints(self, workspace, capsys):
        (workspace / "constraints.wol").write_text(
            "C4: Y in CityE, Y.country = X, Y.is_capital = true"
            " <= X in CountryE;")
        code = run(workspace, "check",
                   "--source", "$W/euro.schema", "$W/constraints.wol",
                   "--data", "$W/euro.json")
        assert code == 0
        assert "satisfied" in capsys.readouterr().out

    def test_stats_and_no_planner(self, workspace, capsys):
        (workspace / "constraints.wol").write_text(
            "C4: Y in CityE, Y.country = X, Y.is_capital = true"
            " <= X in CountryE;")
        code = run(workspace, "check",
                   "--source", "$W/euro.schema", "$W/constraints.wol",
                   "--data", "$W/euro.json", "--stats")
        out = capsys.readouterr().out
        assert code == 0
        assert "stats:" in out and "planned bodies" in out
        code = run(workspace, "check",
                   "--source", "$W/euro.schema", "$W/constraints.wol",
                   "--data", "$W/euro.json", "--stats", "--no-planner")
        out = capsys.readouterr().out
        assert code == 0
        assert "0 planned bodies" in out
        assert "satisfied" in out

    def test_violations_reported(self, workspace, capsys):
        builder = cities.sample_euro_instance().builder()
        builder.new("CountryE", Record.of(
            name="Utopia", language="?", currency="?"))
        dump_instance(builder.freeze(), str(workspace / "bad.json"))
        (workspace / "constraints.wol").write_text(
            "C4: Y in CityE, Y.country = X, Y.is_capital = true"
            " <= X in CountryE;")
        code = run(workspace, "check",
                   "--source", "$W/euro.schema", "$W/constraints.wol",
                   "--data", "$W/bad.json")
        assert code == 1
        assert "violation" in capsys.readouterr().out
