"""Unit tests for the command-line front end."""

import json

import pytest

from repro.cli import main
from repro.io import dump_instance, load_instance
from repro.model import Record
from repro.workloads import cities


@pytest.fixture()
def workspace(tmp_path):
    (tmp_path / "us.schema").write_text(cities.US_SCHEMA_TEXT)
    (tmp_path / "euro.schema").write_text(cities.EURO_SCHEMA_TEXT)
    (tmp_path / "target.schema").write_text(cities.TARGET_SCHEMA_TEXT)
    (tmp_path / "program.wol").write_text(cities.PROGRAM_TEXT)
    dump_instance(cities.sample_us_instance(), str(tmp_path / "us.json"))
    dump_instance(cities.sample_euro_instance(),
                  str(tmp_path / "euro.json"))
    return tmp_path


def run(workspace, *argv):
    return main([str(a).replace("$W", str(workspace)) for a in argv])


class TestCompile:
    def test_compile_succeeds(self, workspace, capsys):
        code = run(workspace, "compile",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/program.wol")
        out = capsys.readouterr().out
        assert code == 0
        assert "transformation T1+T3" in out
        assert "-- output: 4 clauses" in out

    def test_compile_reports_uncovered(self, workspace, capsys):
        (workspace / "partial.wol").write_text("""
            constraint C3: Y = Mk_CountryT(N) <= Y in CountryT,
                                                 N = Y.name;
            transformation T1:
              X in CountryT, X.name = E.name <= E in CountryE;
        """)
        code = run(workspace, "compile",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/partial.wol")
        assert code == 1
        assert "uncovered" in capsys.readouterr().out

    def test_bad_program_reports_error(self, workspace, capsys):
        (workspace / "bad.wol").write_text("this is not WOL;")
        code = run(workspace, "compile",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/bad.wol")
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestTransform:
    def test_transform_writes_target(self, workspace, capsys):
        code = run(workspace, "transform",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/program.wol",
                   "--data", "$W/us.json", "--data", "$W/euro.json",
                   "--out", "$W/out.json", "--audit")
        out = capsys.readouterr().out
        assert code == 0
        assert "CityT=12" in out
        assert "audit: all clauses satisfied" in out
        target = load_instance(str(workspace / "out.json"))
        assert target.class_sizes() == {
            "CityT": 12, "CountryT": 3, "StateT": 2}

    def test_cpl_backend(self, workspace, capsys):
        code = run(workspace, "transform",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/program.wol",
                   "--data", "$W/us.json", "--data", "$W/euro.json",
                   "--out", "$W/out_cpl.json", "--backend", "cpl")
        assert code == 0
        direct = load_instance(str(workspace / "out_cpl.json"))
        assert direct.class_sizes()["CityT"] == 12

    def test_check_source_rejects_bad_instance(self, workspace, capsys):
        builder = cities.sample_euro_instance().builder()
        builder.new("CountryE", Record.of(
            name="Utopia", language="?", currency="?"))
        dump_instance(builder.freeze(), str(workspace / "bad_euro.json"))
        code = run(workspace, "transform",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/program.wol",
                   "--data", "$W/us.json", "--data", "$W/bad_euro.json",
                   "--out", "$W/out.json", "--check-source")
        assert code == 2
        assert "source constraints" in capsys.readouterr().err


class TestCheck:
    def test_satisfied_constraints(self, workspace, capsys):
        (workspace / "constraints.wol").write_text(
            "C4: Y in CityE, Y.country = X, Y.is_capital = true"
            " <= X in CountryE;")
        code = run(workspace, "check",
                   "--source", "$W/euro.schema", "$W/constraints.wol",
                   "--data", "$W/euro.json")
        assert code == 0
        assert "satisfied" in capsys.readouterr().out

    def test_stats_and_no_planner(self, workspace, capsys):
        (workspace / "constraints.wol").write_text(
            "C4: Y in CityE, Y.country = X, Y.is_capital = true"
            " <= X in CountryE;")
        code = run(workspace, "check",
                   "--source", "$W/euro.schema", "$W/constraints.wol",
                   "--data", "$W/euro.json", "--stats")
        out = capsys.readouterr().out
        assert code == 0
        assert "stats:" in out and "planned bodies" in out
        code = run(workspace, "check",
                   "--source", "$W/euro.schema", "$W/constraints.wol",
                   "--data", "$W/euro.json", "--stats", "--no-planner")
        out = capsys.readouterr().out
        assert code == 0
        assert "0 planned bodies" in out
        assert "satisfied" in out

    def test_violations_reported(self, workspace, capsys):
        builder = cities.sample_euro_instance().builder()
        builder.new("CountryE", Record.of(
            name="Utopia", language="?", currency="?"))
        dump_instance(builder.freeze(), str(workspace / "bad.json"))
        (workspace / "constraints.wol").write_text(
            "C4: Y in CityE, Y.country = X, Y.is_capital = true"
            " <= X in CountryE;")
        code = run(workspace, "check",
                   "--source", "$W/euro.schema", "$W/constraints.wol",
                   "--data", "$W/bad.json")
        assert code == 1
        assert "violation" in capsys.readouterr().out

    def test_json_output(self, workspace, capsys):
        (workspace / "constraints.wol").write_text(
            "C4: Y in CityE, Y.country = X, Y.is_capital = true"
            " <= X in CountryE;")
        code = run(workspace, "check",
                   "--source", "$W/euro.schema", "$W/constraints.wol",
                   "--data", "$W/euro.json", "--json")
        out = capsys.readouterr().out
        assert code == 0
        document = json.loads(out)
        assert document["ok"] is True
        assert document["checked"] == 1
        assert document["violations"] == {}
        assert document["stats"]["planned_bodies"] == 1

    def test_json_output_with_violations(self, workspace, capsys):
        builder = cities.sample_euro_instance().builder()
        builder.new("CountryE", Record.of(
            name="Utopia", language="?", currency="?"))
        dump_instance(builder.freeze(), str(workspace / "bad.json"))
        (workspace / "constraints.wol").write_text(
            "C4: Y in CityE, Y.country = X, Y.is_capital = true"
            " <= X in CountryE;")
        code = run(workspace, "check",
                   "--source", "$W/euro.schema", "$W/constraints.wol",
                   "--data", "$W/bad.json", "--json")
        out = capsys.readouterr().out
        assert code == 1
        document = json.loads(out)
        assert document["ok"] is False
        assert any("C4" in name for name in document["violations"])


class TestApplyDelta:
    def delta_file(self, workspace, document, name="delta.json"):
        (workspace / name).write_text(json.dumps(document))
        return name

    def test_apply_delta_writes_updated_target(self, workspace, capsys):
        # Insert a country plus its capital: the target gains both and
        # no source-constraint violation survives.
        self.delta_file(workspace, {
            "inserts": {
                "CountryE": [{
                    "id": {"$oid": "CountryE", "label": "CountryE#new"},
                    "value": {"$rec": {"name": "Utopia",
                                       "language": "utopian",
                                       "currency": "UTO"}}}],
                "CityE": [{
                    "id": {"$oid": "CityE", "label": "CityE#new"},
                    "value": {"$rec": {
                        "name": "Nowhere", "is_capital": True,
                        "country": {"$oid": "CountryE",
                                    "label": "CountryE#new"}}}}],
            }})
        code = run(workspace, "apply-delta",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/program.wol",
                   "--data", "$W/us.json", "--data", "$W/euro.json",
                   "--delta", "$W/delta.json", "--out", "$W/updated.json",
                   "--stats")
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote" in out and "stats:" in out
        updated = load_instance(str(workspace / "updated.json"))
        assert updated.class_sizes() == {
            "CityT": 13, "CountryT": 4, "StateT": 2}

    def test_apply_delta_reports_violation_diff(self, workspace, capsys):
        # A country without a capital violates C4; the diff says so.
        self.delta_file(workspace, {
            "inserts": {"CountryE": [{
                "id": {"$oid": "CountryE", "label": "CountryE#new"},
                "value": {"$rec": {"name": "Utopia",
                                   "language": "utopian",
                                   "currency": "UTO"}}}]}})
        code = run(workspace, "apply-delta",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/program.wol",
                   "--data", "$W/us.json", "--data", "$W/euro.json",
                   "--delta", "$W/delta.json", "--out", "$W/updated.json")
        out = capsys.readouterr().out
        assert code == 1
        assert "+1 new" in out

    def test_apply_delta_json_output(self, workspace, capsys):
        self.delta_file(workspace, {
            "inserts": {"CountryE": [{
                "id": {"$oid": "CountryE", "label": "CountryE#new"},
                "value": {"$rec": {"name": "Utopia",
                                   "language": "utopian",
                                   "currency": "UTO"}}}]}})
        code = run(workspace, "apply-delta",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/program.wol",
                   "--data", "$W/us.json", "--data", "$W/euro.json",
                   "--delta", "$W/delta.json", "--out", "$W/updated.json",
                   "--json")
        out = capsys.readouterr().out
        assert code == 1
        document = json.loads(out)
        assert document["delta"]["inserts"] == 1
        assert document["violations"]["remaining"] == 1
        assert len(document["violations"]["added"]) == 1
        assert document["target"]["classes"]["CountryT"] == 3
        assert "elapsed_ms" in document["stats"]

    def test_incremental_equals_recompute_through_cli(self, workspace,
                                                      capsys):
        # Differential at the CLI level: apply-delta's output equals a
        # fresh transform over the manually-updated source.
        self.delta_file(workspace, {
            "inserts": {
                "CountryE": [{
                    "id": {"$oid": "CountryE", "label": "CountryE#new"},
                    "value": {"$rec": {"name": "Utopia",
                                       "language": "utopian",
                                       "currency": "UTO"}}}],
                "CityE": [{
                    "id": {"$oid": "CityE", "label": "CityE#new"},
                    "value": {"$rec": {
                        "name": "Nowhere", "is_capital": True,
                        "country": {"$oid": "CountryE",
                                    "label": "CountryE#new"}}}}],
            }})
        code = run(workspace, "apply-delta",
                   "--source", "$W/us.schema", "--source", "$W/euro.schema",
                   "--target", "$W/target.schema", "$W/program.wol",
                   "--data", "$W/us.json", "--data", "$W/euro.json",
                   "--delta", "$W/delta.json", "--out", "$W/updated.json")
        assert code == 0
        capsys.readouterr()

        from repro.evolution.delta import load_delta
        from repro.morphase import Morphase
        from repro.semantics.satisfaction import merge_instances
        instances = [cities.sample_us_instance(),
                     cities.sample_euro_instance()]
        merged = merge_instances("__delta__", instances)
        delta = load_delta(str(workspace / "delta.json"), merged)
        morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                            cities.target_schema(), cities.PROGRAM_TEXT)
        oracle = morphase.transform(delta.apply_to(merged)).target
        updated = load_instance(str(workspace / "updated.json"))
        assert updated.class_sizes() == oracle.class_sizes()
