"""The analyzer preflight gate on Morphase entry points.

Execution-facing methods refuse to run a program the analyzer proves
broken, with every escape hatch pinned: ``preflight=False`` opts out,
an inline ``-- lint: disable=...`` directive suppresses a finding, and
the report itself stays available through :meth:`preflight_report`.
"""

import pytest

from repro.model import InstanceBuilder, Record
from repro.model.schema import parse_schema
from repro.morphase import Morphase
from repro.morphase.system import MorphaseError

SRC_TEXT = "schema S { class Item = (name: str, a: str) key name; }"
TGT_TEXT = "schema T { class Out = (name: str, v: str) key name; }"

#: Creates Out without binding its key — WOL401, an error.
BAD = "transformation K: X in Out, X.v = V <= I in Item, V = I.a;"

CLEAN = """
constraint KOut: X = Mk_Out(N) <= X in Out, N = X.name;
transformation P0: X in Out, X.name = N, X.v = N
  <= I in Item, N = I.name;
"""


@pytest.fixture()
def schemas():
    return parse_schema(SRC_TEXT), parse_schema(TGT_TEXT)


@pytest.fixture()
def instance(schemas):
    source, _ = schemas
    builder = InstanceBuilder(source.schema)
    builder.new("Item", Record.of(name="n", a="x"))
    return builder.freeze()


class TestPreflightGate:
    def test_transform_refuses_erroneous_program(self, schemas, instance):
        source, target = schemas
        morphase = Morphase([source], target, BAD)
        with pytest.raises(MorphaseError) as info:
            morphase.transform([instance])
        message = str(info.value)
        assert "preflight analysis found" in message
        assert "WOL401" in message
        assert "preflight=False" in message  # the escape hatch is named

    def test_check_source_also_gated(self, schemas, instance):
        source, target = schemas
        morphase = Morphase([source], target, BAD)
        with pytest.raises(MorphaseError, match="preflight"):
            morphase.check_source([instance])

    def test_opt_out_reaches_the_downstream_error(self, schemas,
                                                  instance):
        """``preflight=False`` restores the pre-analyzer behaviour:
        the defect is caught later (or not at all), never masked."""
        source, target = schemas
        morphase = Morphase([source], target, BAD, preflight=False)
        with pytest.raises(Exception) as info:
            morphase.transform([instance])
        assert not isinstance(info.value, MorphaseError) or \
            "preflight" not in str(info.value)

    def test_inline_suppression_respected(self, schemas, instance):
        source, target = schemas
        morphase = Morphase([source], target,
                            "-- lint: disable=WOL401\n" + BAD)
        with pytest.raises(Exception) as info:
            morphase.transform([instance])
        assert "preflight" not in str(info.value)

    def test_clean_program_passes_and_report_is_cached(self, schemas,
                                                       instance):
        source, target = schemas
        morphase = Morphase([source], target, CLEAN)
        report = morphase.preflight_report()
        assert report.ok and report.diagnostics == []
        assert morphase.preflight_report() is report  # cached
        result = morphase.transform([instance])
        assert result.target.size() == 1

    def test_warnings_do_not_block(self, schemas, instance):
        """The gate is error-only; warnings ride along in the report."""
        source, target = schemas
        conflicted = CLEAN + """
transformation W1: X.v = V <= X in Out, I in Item,
  X.name = I.name, V = I.a;
"""
        morphase = Morphase([source], target, conflicted)
        report = morphase.preflight_report()
        assert report.ok
        assert any(d.code == "WOL301" for d in report.diagnostics)
