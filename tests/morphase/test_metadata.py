"""Unit tests for meta-data constraint generation (paper Section 5)."""

from repro.lang import EqAtom, MemberAtom, SkolemTerm
from repro.morphase import (generate_source_key_clauses,
                            generate_target_key_clauses, key_clause_for,
                            source_key_clause_for)
from repro.normalization import (recognise_key_clause,
                                 recognise_source_key_paths, snf_clause)
from repro.workloads.cities import euro_schema, target_schema


class TestTargetKeyClauses:
    def test_single_attribute_key(self):
        fn = target_schema().keys.key_for("CountryT")
        clause = key_clause_for(fn)
        recognised = recognise_key_clause(snf_clause(clause))
        assert recognised is not None
        assert recognised.class_name == "CountryT"

    def test_compound_deep_key(self):
        fn = euro_schema().keys.key_for("CityE")
        clause = key_clause_for(fn)
        recognised = recognise_key_clause(snf_clause(clause))
        assert recognised is not None
        assert recognised.skolem.is_named
        labels = [label for label, _ in recognised.skolem.args]
        assert labels == ["country_name", "name"]

    def test_generation_skips_listed_classes(self):
        generated = generate_target_key_clauses(
            target_schema(), skip=["CityT"])
        classes = {recognise_key_clause(snf_clause(c)).class_name
                   for c in generated}
        assert classes == {"CountryT", "StateT"}

    def test_generated_clauses_have_names(self):
        generated = generate_target_key_clauses(target_schema())
        assert all(c.name and c.name.startswith("key_")
                   for c in generated)


class TestSourceKeyClauses:
    def test_c8_shape(self):
        fn = euro_schema().keys.key_for("CountryE")
        clause = source_key_clause_for(fn)
        recognised = recognise_source_key_paths(snf_clause(clause))
        assert recognised == ("CountryE", (("name",),))

    def test_compound_key_roundtrip(self):
        fn = euro_schema().keys.key_for("CityE")
        clause = source_key_clause_for(fn)
        recognised = recognise_source_key_paths(snf_clause(clause))
        assert recognised == ("CityE", (("country", "name"), ("name",)))

    def test_generate_all(self):
        generated = generate_source_key_clauses(euro_schema())
        assert len(generated) == 2
        heads = [c.head[0] for c in generated]
        assert all(isinstance(h, EqAtom) for h in heads)
