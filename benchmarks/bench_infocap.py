"""F4-F5: information preservation under constraints (Section 4.3).

The (T6)-(T8) schema evolution is not injective on arbitrary sources but
is injective on sources satisfying (C9)-(C11).  This benchmark runs the
empirical checker over an instance family and measures its cost.
"""

import pytest
from conftest import print_table

from repro.infocap import check_preservation
from repro.morphase import Morphase
from repro.workloads import persons


@pytest.fixture(scope="module")
def morphase():
    m = Morphase([persons.person_schema()], persons.evolved_schema(),
                 persons.PROGRAM_TEXT)
    m.compile()
    return m


def _family():
    return [
        persons.generate_instance(0),
        persons.generate_instance(1),
        persons.generate_instance(2),
        persons.generate_instance(3),
        persons.couples_instance([("P", "Q")]),
        persons.couples_instance([("A", "B"), ("C", "D")]),
        persons.asymmetric_instance(),
        persons.symmetric_variant_of_asymmetric(),
    ]


def test_preservation_under_constraints(morphase, bench_report,
                                        benchmark):
    constraints = morphase.compile().source_constraints

    def transform(instance):
        return morphase.transform(instance).target

    report = benchmark(
        lambda: check_preservation(transform, _family(), constraints))
    print_table(
        "F4-F5: injectivity of (T6)-(T8) (Section 4.3)",
        ("family", "instances", "injective", "witnesses"),
        [("all sources", report.total_count,
          report.unconstrained.injective,
          len(report.unconstrained.failures)),
         ("satisfying (C9)-(C11)", report.constrained_count,
          report.constrained.injective,
          len(report.constrained.failures))])
    assert not report.unconstrained.injective
    assert report.constrained.injective
    assert report.constrained_count < report.total_count
    bench_report.record(
        "injectivity",
        instances=report.total_count,
        constrained_instances=report.constrained_count,
        constrained_injective=report.constrained.injective)
