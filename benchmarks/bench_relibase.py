"""E8: the ReLiBase drug-design warehouse at scale (Section 6).

WOL's second reported deployment (VODAK/Darmstadt): SWISSPROT + PDB
sources integrated into a ReLiBase-like object warehouse.  Measures the
multi-source build end to end, including set-valued accumulation.
"""

import pytest
from conftest import best_of, print_table

from repro.morphase import Morphase
from repro.workloads import relibase


@pytest.fixture(scope="module")
def morphase():
    m = Morphase([relibase.swissprot_schema(), relibase.pdb_schema()],
                 relibase.relibase_schema(), relibase.PROGRAM_TEXT)
    m.compile()
    return m


def test_warehouse_build_scaling(morphase, bench_report, benchmark):
    rows = []
    times = {}
    for proteins in (25, 50, 100):
        sp, pdb = relibase.generate_sources(
            proteins, 3, proteins // 2, proteins * 2, seed=3)
        result, elapsed = best_of(
            lambda: morphase.transform([sp, pdb]), repetitions=2)
        times[proteins] = elapsed
        sizes = result.target.class_sizes()
        rows.append((proteins, sizes["Structure"], sizes["Complex"],
                     round(elapsed * 1000, 1)))
    print_table("E8: ReLiBase warehouse build vs source size",
                ("proteins", "structures", "complexes", "ms"), rows)
    # Linear-ish growth: 4x the proteins well under 16x the time.
    assert times[100] / times[25] < 12
    for proteins, structures, complexes, ms in rows:
        bench_report.record(
            f"proteins_{proteins}",
            sizes={"proteins": proteins, "structures": structures,
                   "complexes": complexes},
            build_ms=ms)

    sp, pdb = relibase.generate_sources(50, 3, 25, 100, seed=3)
    benchmark(lambda: morphase.transform([sp, pdb]))


def test_set_accumulation_complete(morphase, benchmark):
    sp, pdb = relibase.generate_sources(30, 4, 10, 50, seed=9)
    result = benchmark(lambda: morphase.transform([sp, pdb]))
    target = result.target
    collected = sum(len(target.attribute(p, "structures"))
                    for p in target.objects_of("Protein"))
    assert collected == target.class_sizes()["Structure"] == 120
