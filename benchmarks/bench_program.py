"""S2: warm query programs vs cold per-statement batch queries.

The ``/program`` endpoint's reason to exist: one POST carries a whole
multi-statement program, and the warm session runs it on the cached
target with the shared, prebuilt index pool and columnar plans —
versus a cold client that issues each WOL query separately against a
fresh dynamic matcher and folds the set algebra itself.

* ``warm_program_vs_cold_statements``: p50 wall time of POST /program
  (6-statement program, genome default size, through the real HTTP
  front end) vs the cold per-statement oracle (fresh ``Query.run`` per
  query statement + Python set algebra).  The two must agree
  byte-for-byte — this benchmark is also a differential test — and the
  warm path must clear the floor.
"""

import json
import statistics
import tempfile
import threading
import time
from http.client import HTTPConnection

from conftest import print_table

from repro.adapters.acedb import AceDatabase, schema_of_acedb
from repro.io.json_io import dump_oid_encoder, value_to_json
from repro.morphase import Morphase
from repro.query.query import Query
from repro.service import make_server
from repro.workloads import genome

#: Genome workload default size (matches bench_service/bench_planner).
GENOME_SIZE = {"genes": 150, "sequences": 300, "clones": 300,
               "sparsity": 0.9, "seed": 7}
#: Acceptance floor: warm POST /program vs cold per-statement oracle
#: (observed ~1.9x locally; conservative for CI boxes).
SPEEDUP_FLOOR = 1.3

WARM_REQUESTS = 30
COLD_REQUESTS = 5

#: The benchmark program: three WOL joins folded by three set ops.
PROGRAM_TEXT = """program bench;

cloned = query { N | C in CloneT, S = C.seq, N = S.name };
genic = query { N | P in SeqGene, S = P.seq, N = S.name };
named = query { N | S in SequenceT, N = S.name };
core = intersect cloned, genic;
rest = difference named, core;
all = union core, rest;
"""

QUERY_BODIES = {
    "cloned": "N | C in CloneT, S = C.seq, N = S.name",
    "genic": "N | P in SeqGene, S = P.seq, N = S.name",
    "named": "N | S in SequenceT, N = S.name",
}


def make_service():
    source_schema = schema_of_acedb(
        AceDatabase("ACe22", genome.ACE_CLASSES))
    morphase = Morphase([source_schema], genome.warehouse_schema(),
                        genome.PROGRAM_TEXT)
    morphase.compile()
    merged = morphase._merge_sources(genome.source_instance(
        genome.generate_acedb(**GENOME_SIZE)))
    store = morphase.open_store(tempfile.mkdtemp(), merged)
    session = morphase.serve(store)
    server = make_server(session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return session, server


def post_program(conn):
    body = json.dumps({"text": PROGRAM_TEXT})
    conn.request("POST", "/program", body=body,
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    payload = response.read()
    assert response.status == 200, payload
    return json.loads(payload)["result"]


def cold_oracle(target):
    """What a stateless client does: one fresh dynamic-matcher query
    per statement, then set algebra over the canonical row keys."""
    encoder = dump_oid_encoder(target)
    classes = target.schema.class_names()
    sets = {}
    for name, body in QUERY_BODIES.items():
        keyed = {}
        for row in Query.parse(body, classes=classes).run(target):
            encoded = {col: value_to_json(value, encoder)
                       for col, value in row.items()}
            keyed.setdefault(json.dumps(encoded, sort_keys=True),
                             encoded)
        sets[name] = keyed
    core = {k: sets["cloned"][k]
            for k in sets["cloned"] if k in sets["genic"]}
    rest = {k: sets["named"][k] for k in sets["named"] if k not in core}
    merged = dict(core)
    merged.update(rest)
    return [merged[key] for key in sorted(merged)]


def percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1,
                       max(0, int(len(ordered) * fraction) - 1))]


def test_warm_program_vs_cold_statements(bench_report):
    session, server = make_service()
    try:
        conn = HTTPConnection(*server.server_address[:2])
        warm = []
        document = None
        for _ in range(WARM_REQUESTS):
            start = time.perf_counter()
            document = post_program(conn)
            warm.append((time.perf_counter() - start) * 1000)
        conn.close()

        cold = []
        oracle = None
        for _ in range(COLD_REQUESTS):
            start = time.perf_counter()
            oracle = cold_oracle(session.target)
            cold.append((time.perf_counter() - start) * 1000)
    finally:
        server.shutdown()
        server.server_close()
        session.close()

    # Differential: the served program IS the cold per-statement fold.
    assert json.dumps(document["rows"], sort_keys=True) \
        == json.dumps(oracle, sort_keys=True)

    warm_p50 = statistics.median(warm)
    cold_p50 = statistics.median(cold)
    speedup = cold_p50 / warm_p50
    print_table(
        "S2: 6-statement program, warm POST /program vs cold statements",
        ("mode", "p50 ms", "p99 ms"),
        [("warm POST /program", f"{warm_p50:.2f}",
          f"{percentile(warm, 0.99):.2f}"),
         ("cold per-statement oracle", f"{cold_p50:.2f}",
          f"{percentile(cold, 0.99):.2f}"),
         ("speedup", f"{speedup:.1f}x", "")])
    bench_report.record(
        "warm_program_vs_cold_statements_genome_default",
        speedup=round(speedup, 2), floor=SPEEDUP_FLOOR,
        warm_p50_ms=round(warm_p50, 3),
        warm_p99_ms=round(percentile(warm, 0.99), 3),
        cold_p50_ms=round(cold_p50, 3),
        statements=6, query_statements=len(QUERY_BODIES),
        result_rows=len(document["rows"]),
        requests=WARM_REQUESTS)
    assert speedup >= SPEEDUP_FLOOR
