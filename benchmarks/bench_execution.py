"""E5: one-pass execution scales linearly in source size (Sections 3, 5).

The paper's design goal: "an implementation of a transformation should be
performed in one pass over the source databases".  Normal-form execution
touches each qualifying source combination once, so time grows linearly
with the source instance.

Since the planner landed, ``Morphase.transform`` runs the planned path by
default (fixed atom orders, shared prebuilt index pool); the series here
therefore measure planned execution, and ``test_planner_on_vs_off``
records the head-to-head against the naive path at one size (the full
planner story is in ``bench_planner.py``).
"""

import pytest
from conftest import best_of, print_table

from repro.adapters.acedb import schema_of_acedb
from repro.morphase import Morphase
from repro.workloads import cities, genome, relibase

SIZES = (20, 40, 80, 160)


@pytest.fixture(scope="module")
def morphase():
    m = Morphase([cities.us_schema(), cities.euro_schema()],
                 cities.target_schema(), cities.PROGRAM_TEXT)
    m.compile()
    return m


def _sources(countries):
    return [cities.generate_us_instance(max(countries // 4, 1), 3, seed=1),
            cities.generate_euro_instance(countries, 4, seed=1)]


def test_execution_scales_linearly(morphase, benchmark):
    rows = []
    times = {}
    for countries in SIZES:
        sources = _sources(countries)
        result, elapsed = best_of(
            lambda: morphase.transform(sources), repetitions=2)
        times[countries] = elapsed
        rows.append((countries, result.target.size(),
                     round(elapsed * 1000, 1)))
    print_table("E5: execution time vs source size",
                ("countries", "target objects", "ms"), rows)
    # Shape: 8x the source costs ~8x the time, not ~64x. Allow generous
    # noise slack but rule out super-linear blow-up.
    growth = times[SIZES[-1]] / times[SIZES[0]]
    size_growth = SIZES[-1] / SIZES[0]
    assert growth < size_growth * 4, (growth, size_growth)

    benchmark(lambda: morphase.transform(_sources(40)))


def test_compile_once_run_many(morphase, benchmark):
    """Compile-time expense amortises over repeated runs (Section 5)."""
    sources = _sources(30)

    def run():
        return morphase.transform(sources)

    first = morphase.compile()
    assert first is morphase.compile()  # cached: no recompilation
    benchmark(run)


def test_execution_statistics(morphase, benchmark):
    sources = _sources(25)
    result = benchmark(lambda: morphase.transform(sources))
    stats = result.stats
    sizes = result.target.class_sizes()
    print_table("E5: executor statistics (25 countries)",
                ("clauses", "planned", "bindings", "objects",
                 "attr writes", "scans avoided"),
                [(stats.clauses_run, stats.clauses_planned,
                  stats.bindings_found, stats.objects_created,
                  stats.attributes_set, stats.scans_avoided)])
    # Every created object is reachable from some binding (one-pass).
    assert stats.objects_created == sum(sizes.values())
    assert stats.bindings_found >= stats.objects_created
    # The planned path covered every clause.
    assert stats.clauses_planned == stats.clauses_run


def test_planner_on_vs_off(morphase, bench_report, benchmark):
    """Head-to-head at one size; identical targets either way."""
    sources = _sources(60)
    naive, naive_time = best_of(
        lambda: morphase.transform(sources, use_planner=False),
        repetitions=2)
    planned, planned_time = best_of(
        lambda: morphase.transform(sources, use_planner=True),
        repetitions=2)
    assert planned.target.valuations == naive.target.valuations
    print_table("E5: planner on vs off (60 countries)",
                ("path", "ms"),
                [("naive", round(naive_time * 1000, 1)),
                 ("planned", round(planned_time * 1000, 1))])
    benchmark.extra_info["speedup"] = round(naive_time / planned_time, 2)
    bench_report.record(
        "cities_60",
        naive_ms=round(naive_time * 1000, 3),
        planned_ms=round(planned_time * 1000, 3),
        speedup=round(naive_time / planned_time, 2))
    benchmark(lambda: morphase.transform(sources, use_planner=True))


def test_deployment_workload_trajectory(bench_report, benchmark):
    """Record the naive/planned head-to-head on the two deployment
    workloads too — a ``cities_60`` row alone tracks a toy program, so
    regressions in the genome/ReLiBase execution profile (deeper joins,
    set accumulation) would previously go unrecorded."""
    cases = []

    gm = Morphase([schema_of_acedb(genome.sample_acedb())],
                  genome.warehouse_schema(), genome.PROGRAM_TEXT)
    gm.compile()
    database = genome.generate_acedb(20, 50, 100, sparsity=0.9, seed=8)
    cases.append(("genome_100", gm, [genome.source_instance(database)]))

    rm = Morphase([relibase.swissprot_schema(), relibase.pdb_schema()],
                  relibase.relibase_schema(), relibase.PROGRAM_TEXT)
    rm.compile()
    sp, pdb = relibase.generate_sources(50, 3, 25, 100, seed=3)
    cases.append(("relibase_50", rm, [sp, pdb]))

    rows = []
    for label, case_morphase, case_sources in cases:
        m, srcs = case_morphase, case_sources
        naive, naive_time = best_of(
            lambda: m.transform(srcs, use_planner=False),
            repetitions=2)
        planned, planned_time = best_of(
            lambda: m.transform(srcs), repetitions=2)
        assert planned.target.valuations == naive.target.valuations
        speedup = round(naive_time / planned_time, 2)
        rows.append((label, round(naive_time * 1000, 1),
                     round(planned_time * 1000, 1), speedup))
        bench_report.record(
            label,
            naive_ms=round(naive_time * 1000, 3),
            planned_ms=round(planned_time * 1000, 3),
            speedup=speedup)
    print_table("E5: planner on vs off (deployment workloads)",
                ("case", "naive ms", "planned ms", "speedup"), rows)

    gm_sources = [genome.source_instance(database)]
    benchmark(lambda: gm.transform(gm_sources))
