"""E2: source key constraints collapse self-joins (Example 4.1).

Paper: combining (T4)/(T5) yields a clause joining CountryE with itself on
name; the key constraint (C8) lets Morphase replace the two-way join with a
single scan — "simpler and more efficient to evaluate".

Reproduced shape: the optimised clause has one CountryE member atom and a
smaller body, and executes with linearly rather than quadratically many
probes.
"""

from conftest import best_of, print_table

from repro.lang import MemberAtom, parse_clause
from repro.normalization import simplify_clause, snf_clause
from repro.semantics import Matcher
from repro.workloads import cities

CLASSES = ["CityE", "CountryE", "CityT", "CountryT"]
KEYS = {"CountryE": ((("name",),),)}

COMBINED = (
    "X = Mk_CountryT(N), X.language = L, X.currency = C"
    " <= Y in CountryE, Y.name = N, Y.language = L,"
    "    Z in CountryE, Z.name = N, Z.currency = C;")


def _clauses():
    raw = snf_clause(parse_clause(COMBINED, classes=CLASSES))
    optimised = simplify_clause(raw, KEYS)
    unoptimised = simplify_clause(raw, None)
    return optimised, unoptimised


def _members(clause):
    return sum(1 for a in clause.body if isinstance(a, MemberAtom))


def test_key_constraint_collapses_join(benchmark):
    optimised, unoptimised = _clauses()
    rows = [
        ("with key (C8)", _members(optimised), optimised.size()),
        ("without", _members(unoptimised), unoptimised.size()),
    ]
    print_table("E2: derived clause after optimisation (Example 4.1)",
                ("variant", "CountryE joins", "atoms"), rows)
    assert _members(optimised) == 1
    assert _members(unoptimised) == 2
    assert optimised.size() < unoptimised.size()

    raw = snf_clause(parse_clause(COMBINED, classes=CLASSES))
    benchmark(lambda: simplify_clause(raw, KEYS))


def test_optimised_clause_evaluates_faster(bench_report, benchmark):
    optimised, unoptimised = _clauses()
    source = cities.generate_euro_instance(120, 1, seed=0)
    matcher = Matcher(source)

    def count(clause):
        return sum(1 for _ in matcher.solutions(clause.body))

    assert count(optimised) == count(unoptimised) == 120

    _, fast = best_of(lambda: count(optimised))
    _, slow = best_of(lambda: count(unoptimised))
    rows = [("with key (C8)", round(fast * 1000, 1)),
            ("without", round(slow * 1000, 1))]
    print_table("E2: body evaluation over 120 countries",
                ("variant", "ms"), rows)
    # The self-join pays a quadratic probe cost; the optimised body is
    # strictly cheaper.
    assert fast < slow
    bench_report.record(
        "key_collapsed_join",
        optimised_ms=round(fast * 1000, 3),
        unoptimised_ms=round(slow * 1000, 3),
        speedup=round(slow / fast, 2))

    benchmark(lambda: count(optimised))
