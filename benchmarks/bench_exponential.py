"""E4: exponential blow-up without constraints (Section 6).

Paper claim: "If constraints were omitted the time taken to normalize a
program, and the size of the resulting normal-form program, could be
exponential in the size of the original program."

Reproduced shape: on variant-split programs the constraint-less normal
form has ``choices ** width`` clauses and compile time grows likewise,
while with constraints both stay flat/linear.
"""

from conftest import best_of, print_table

from repro.normalization import NormalizationOptions, normalize
from repro.workloads import synthetic

WIDTHS = (2, 4, 6, 8)
CHOICES = 2


def _compile(width, use_constraints):
    program = synthetic.variant_split_program(width, CHOICES)
    source, target = synthetic.variant_schemas(width, CHOICES)
    options = NormalizationOptions(use_constraints=use_constraints)
    return normalize(program, source.schema, target.schema,
                     source_keys=source.keys, options=options)


def _series():
    rows = []
    for width in WIDTHS:
        with_c, with_time = best_of(lambda width=width: _compile(width, True),
                                    repetitions=2)
        without_c, without_time = best_of(lambda width=width: _compile(width, False),
                                          repetitions=1)
        rows.append((
            width,
            with_c.report.normal_clauses, without_c.report.normal_clauses,
            with_c.report.normal_size, without_c.report.normal_size,
            round(with_time * 1000, 1), round(without_time * 1000, 1)))
    return rows


def test_exponential_without_constraints(bench_report, benchmark):
    rows = _series()
    print_table(
        "E4: normal-form size/time, with vs without constraints",
        ("width", "clauses(with)", "clauses(without)",
         "atoms(with)", "atoms(without)", "ms(with)", "ms(without)"),
        rows)
    # Shape assertions:
    # 1. with constraints the clause count is flat (= CHOICES);
    assert all(row[1] == CHOICES for row in rows)
    # 2. without constraints it is exactly choices ** width per producer
    #    family times the producer count;
    for width, _, without_clauses, *_ in rows:
        assert without_clauses == CHOICES * (CHOICES ** width)
    # 3. the constraint-less size explodes relative to the constrained one
    #    and the gap widens with width (exponential separation).
    gaps = [row[4] / row[3] for row in rows]
    assert all(later > earlier
               for earlier, later in zip(gaps, gaps[1:], strict=False))
    assert gaps[-1] > 100

    benchmark.extra_info["clauses_without"] = [r[2] for r in rows]
    for row in rows:
        bench_report.record(
            f"width_{row[0]}", sizes={"width": row[0]},
            clauses_with=row[1], clauses_without=row[2],
            with_ms=row[5], without_ms=row[6])
    benchmark(lambda: _compile(4, True))


def test_constrained_compile_stays_tractable(benchmark):
    """With constraints, compile time grows mildly in width."""
    _, small = best_of(lambda: _compile(2, True), repetitions=2)
    _, large = best_of(lambda: _compile(8, True), repetitions=2)
    # 4x the width should cost far less than the 64x of the exponential.
    assert large / small < 30
    benchmark(lambda: _compile(8, True))
