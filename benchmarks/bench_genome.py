"""E7: the genome-warehouse trial at scale (Section 6).

ACeDB-style tree data is imported, transformed and exported to relational
tables.  The paper reports the pipeline ran periodically against evolving
genome databases; here we measure the full pass and the effect of source
sparseness (ACeDB data is "sparsely populated") on warehouse size.
"""

import pytest
from conftest import best_of, print_table

from repro.adapters.acedb import schema_of_acedb
from repro.adapters.relational import export_instance
from repro.morphase import Morphase
from repro.workloads import genome


@pytest.fixture(scope="module")
def morphase():
    source_schema = schema_of_acedb(genome.sample_acedb())
    m = Morphase([source_schema], genome.warehouse_schema(),
                 genome.PROGRAM_TEXT)
    m.compile()
    return m


def _full_pass(morphase, database):
    source = genome.source_instance(database)
    result = morphase.transform(source)
    tables = export_instance(result.target, genome.WAREHOUSE_TABLES)
    return result, tables


def test_full_pipeline(morphase, benchmark):
    database = genome.generate_acedb(20, 60, 120, sparsity=0.85, seed=5)
    result, tables = benchmark(lambda: _full_pass(morphase, database))
    assert tables.check_foreign_keys() == []
    assert result.target.size() == sum(
        len(t) for t in tables.tables.values())


def test_sparsity_sweep(morphase, benchmark):
    rows = []
    for sparsity in (0.4, 0.6, 0.8, 1.0):
        database = genome.generate_acedb(15, 40, 80, sparsity=sparsity,
                                         seed=6)
        result, _ = _full_pass(morphase, database)
        sizes = result.target.class_sizes()
        rows.append((sparsity, len(database.objects),
                     result.target.size(), sizes["CloneT"],
                     sizes["SeqGene"]))
    print_table("E7: warehouse size vs source sparseness",
                ("sparsity", "source objs", "warehouse objs",
                 "clones kept", "gene links"), rows)
    # Denser sources keep strictly more of the warehouse.
    warehouse_sizes = [row[2] for row in rows]
    assert warehouse_sizes == sorted(warehouse_sizes)
    # Full population drops nothing.
    assert rows[-1][3] == 80

    database = genome.generate_acedb(15, 40, 80, sparsity=0.8, seed=6)
    benchmark(lambda: _full_pass(morphase, database))


def test_pipeline_scaling(morphase, bench_report, benchmark):
    times = {}
    rows = []
    for clones in (50, 100, 200):
        database = genome.generate_acedb(
            clones // 5, clones // 2, clones, sparsity=0.9, seed=8)
        (result, _), elapsed = best_of(
            lambda: _full_pass(morphase, database), repetitions=2)
        times[clones] = elapsed
        rows.append((clones, result.target.size(),
                     round(elapsed * 1000, 1)))
    print_table("E7: pipeline time vs source size",
                ("clones", "warehouse objs", "ms"), rows)
    assert times[200] / times[50] < 16  # linear-ish, not quadratic
    for clones, warehouse_objs, ms in rows:
        bench_report.record(
            f"clones_{clones}",
            sizes={"clones": clones, "warehouse": warehouse_objs},
            pipeline_ms=ms)

    database = genome.generate_acedb(20, 50, 100, sparsity=0.9, seed=8)
    benchmark(lambda: _full_pass(morphase, database))
