"""P1: planned multi-clause execution vs the naive per-clause path.

The execution planner (:mod:`repro.engine.planner`) computes a join plan
per clause once — fixed atom order, index selectors resolved statically,
including containment-hop indexes through set-valued attributes — and
shares one prebuilt index pool across all clauses.  The naive path (the
pre-planner behaviour, kept as the differential oracle) re-derives atom
readiness per binding and rediscovers equality selectors per candidate
enumeration.

The headline series compares both paths on the genome workload at the
default size; the acceptance bar is a >= 1.5x speedup with identical
target instances.  A synthetic wide-record series and a plan-reuse
series characterise where the win comes from.
"""

import pytest
from conftest import best_of, print_table

from repro.adapters.acedb import AceDatabase, schema_of_acedb
from repro.engine import Executor, plan_program
from repro.morphase import Morphase
from repro.workloads import genome, synthetic

#: Default genome workload size for the headline comparison.
GENOME_SIZE = {"genes": 150, "sequences": 300, "clones": 300,
               "sparsity": 0.9, "seed": 7}
SPEEDUP_FLOOR = 1.5


@pytest.fixture(scope="module")
def genome_morphase():
    source_schema = schema_of_acedb(
        AceDatabase("ACe22", genome.ACE_CLASSES))
    m = Morphase([source_schema], genome.warehouse_schema(),
                 genome.PROGRAM_TEXT)
    m.compile()
    return m


@pytest.fixture(scope="module")
def genome_source():
    return genome.source_instance(genome.generate_acedb(**GENOME_SIZE))


def test_planner_speedup_genome(genome_morphase, genome_source,
                                bench_report, benchmark):
    """Planned execution beats naive by >= 1.5x; targets are identical."""
    naive_result, naive_time = best_of(
        lambda: genome_morphase.transform(genome_source,
                                          use_planner=False),
        repetitions=2)
    planned_result, planned_time = best_of(
        lambda: genome_morphase.transform(genome_source, use_planner=True),
        repetitions=2)

    # Differential: the two paths build the same warehouse, object for
    # object and attribute for attribute.
    assert planned_result.target.valuations == naive_result.target.valuations
    assert (planned_result.stats.bindings_found
            == naive_result.stats.bindings_found)

    speedup = naive_time / planned_time
    stats = planned_result.stats
    indexes = (planned_result.plan.prebuilt_indexes
               + stats.indexes_built)
    print_table(
        "P1: planned vs naive execution (genome, default size)",
        ("path", "ms", "scans avoided", "indexes built",
         "atoms reordered"),
        [("naive", round(naive_time * 1000, 1), "-", "-", "-"),
         ("planned", round(planned_time * 1000, 1), stats.scans_avoided,
          indexes, stats.atoms_reordered),
         ("speedup", f"{speedup:.2f}x", "", "", "")])
    benchmark.extra_info["speedup"] = round(speedup, 2)
    bench_report.record(
        "genome_default",
        sizes={"objects": genome_source.size()},
        naive_ms=round(naive_time * 1000, 3),
        planned_ms=round(planned_time * 1000, 3),
        speedup=round(speedup, 2), metric="speedup",
        floor=SPEEDUP_FLOOR)
    assert speedup >= SPEEDUP_FLOOR, (
        f"planned path only {speedup:.2f}x faster (< {SPEEDUP_FLOOR}x)")

    benchmark(lambda: genome_morphase.transform(genome_source,
                                                use_planner=True))


def test_planner_speedup_scaling(genome_morphase, benchmark):
    """The planner's advantage grows with source size (index joins)."""
    rows = []
    for scale in (1, 2, 4):
        database = genome.generate_acedb(
            genes=50 * scale, sequences=100 * scale, clones=100 * scale,
            sparsity=0.9, seed=11)
        source = genome.source_instance(database)
        _, naive_time = best_of(
            lambda: genome_morphase.transform(source, use_planner=False),
            repetitions=2)
        _, planned_time = best_of(
            lambda: genome_morphase.transform(source, use_planner=True),
            repetitions=2)
        rows.append((source.size(), round(naive_time * 1000, 1),
                     round(planned_time * 1000, 1),
                     f"{naive_time / planned_time:.2f}x"))
    print_table("P1: planner speedup vs source size",
                ("source objs", "naive ms", "planned ms", "speedup"),
                rows)
    benchmark(lambda: None)


def test_planner_synthetic_wide(benchmark):
    """Wide-record programs: planning cost amortises over execution."""
    width, items = 12, 300
    source_schema, target_schema = synthetic.wide_schemas(width)
    m = Morphase([source_schema], target_schema,
                 synthetic.wide_program(width))
    m.compile()
    source = synthetic.wide_instance(width, items)
    naive_result, naive_time = best_of(
        lambda: m.transform(source, use_planner=False), repetitions=2)
    planned_result, planned_time = best_of(
        lambda: m.transform(source, use_planner=True), repetitions=2)
    assert planned_result.target.valuations == naive_result.target.valuations
    print_table(
        "P1: planned vs naive (synthetic wide records)",
        ("width", "items", "naive ms", "planned ms", "speedup"),
        [(width, items, round(naive_time * 1000, 1),
          round(planned_time * 1000, 1),
          f"{naive_time / planned_time:.2f}x")])
    benchmark(lambda: m.transform(source, use_planner=True))


def test_plan_reuse_across_runs(genome_morphase, genome_source, benchmark):
    """A precomputed plan (and its index pool) amortises over reruns."""
    normalized = genome_morphase.compile()
    program = normalized.program()
    target_schema = genome_morphase.target_plain
    merged = genome_morphase._merge_sources(genome_source)
    plan = plan_program(program, merged)

    def run_with_shared_plan():
        executor = Executor(merged, target_schema)
        executor.run_program(program, plan=plan)
        return executor.freeze()

    def run_planning_each_time():
        executor = Executor(merged, target_schema, use_planner=True)
        executor.run_program(program)
        return executor.freeze()

    shared, shared_time = best_of(run_with_shared_plan, repetitions=3)
    fresh, fresh_time = best_of(run_planning_each_time, repetitions=3)
    assert shared.valuations == fresh.valuations
    print_table("P1: plan reuse across runs",
                ("mode", "ms"),
                [("plan once, run many", round(shared_time * 1000, 1)),
                 ("plan every run", round(fresh_time * 1000, 1))])
    # Reusing the plan can never be slower than replanning + rebuilding
    # indexes (generous slack for timer noise on a fast operation).
    assert shared_time <= fresh_time * 1.5

    benchmark(run_with_shared_plan)
