"""S1: warm incremental serving vs cold per-request batch runs.

The service layer's reason to exist: a long-lived session keeps the
compiled plan, the shared index pool and the incremental
transform/audit state warm across requests, so serving a delta is a
seeded join patch instead of a full recompute.  This benchmark pins
that claim end to end — *through the HTTP front end*, on a real
``ThreadingHTTPServer`` over localhost:

* ``warm_vs_cold``: p50 latency of a POST /ingest request (small
  source delta, genome default size) vs a cold per-request batch run
  (full ``Morphase.transform`` of the same updated source, compiled
  program already cached).  Floor: warm must be >= 10x faster.
* ``ingest_throughput``: sustained deltas/second through four
  concurrent client connections (exercises WAL append serialisation
  and group-commit batching).  Floored conservatively for CI boxes.
* ``recovery_vs_wal``: store-open wall time as the WAL tail grows,
  and again after a snapshot subsumes it — the compaction story in
  one series.
"""

import json
import statistics
import tempfile
import threading
import time
from http.client import HTTPConnection

from conftest import print_table

from repro.adapters.acedb import AceDatabase, schema_of_acedb
from repro.evolution.delta import Delta, delta_to_json
from repro.model.values import Oid, Record, WolSet
from repro.morphase import Morphase
from repro.service import make_server
from repro.store import WarehouseStore
from repro.workloads import genome

#: Genome workload default size (matches bench_planner/bench_incremental).
GENOME_SIZE = {"genes": 150, "sequences": 300, "clones": 300,
               "sparsity": 0.9, "seed": 7}
#: Acceptance floor: warm HTTP ingest vs cold per-request batch run.
SPEEDUP_FLOOR = 10.0
#: Sustained HTTP ingestion floor (deltas/second, conservative for CI).
THROUGHPUT_FLOOR = 25.0

WARM_REQUESTS = 40
COLD_REQUESTS = 5


def make_morphase():
    source_schema = schema_of_acedb(
        AceDatabase("ACe22", genome.ACE_CLASSES))
    m = Morphase([source_schema], genome.warehouse_schema(),
                 genome.PROGRAM_TEXT)
    m.compile()
    return m


def small_delta(tag):
    """A 2-object warehouse refresh: one gene plus one sequence."""
    gene = Oid.keyed("Gene", f"G-{tag}")
    seq = Oid.keyed("Sequence", f"S-{tag}")
    return Delta(inserts={
        "Gene": {gene: Record.of(
            name=f"G-{tag}", symbol=WolSet.of(f"sym{tag}"),
            description=WolSet.of(f"bench {tag}"))},
        "Sequence": {seq: Record.of(
            name=f"S-{tag}", dna_length=WolSet.of(50_000 + len(str(tag))),
            method=WolSet.of("shotgun"), gene=WolSet.of(gene))},
    })


class ServiceFixture:
    """One live server over a fresh genome store."""

    def __init__(self, morphase):
        self.morphase = morphase
        merged = morphase._merge_sources(genome.source_instance(
            genome.generate_acedb(**GENOME_SIZE)))
        self.store = morphase.open_store(tempfile.mkdtemp(), merged)
        self.session = morphase.serve(self.store)
        self.server = make_server(self.session)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True)
        self.thread.start()
        self.address = self.server.server_address[:2]

    def connection(self):
        return HTTPConnection(*self.address)

    def post_ingest(self, conn, delta):
        body = json.dumps(delta_to_json(delta))
        conn.request("POST", "/ingest", body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = response.read()
        assert response.status == 200, payload
        return json.loads(payload)

    def shutdown(self):
        self.server.shutdown()
        self.server.server_close()
        self.session.close()


def percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1,
                       max(0, int(len(ordered) * fraction) - 1))]


def test_warm_vs_cold_per_request(bench_report):
    morphase = make_morphase()
    service = ServiceFixture(morphase)
    try:
        conn = service.connection()
        source = service.store.instance
        warm = []
        for tag in range(WARM_REQUESTS):
            delta = small_delta(tag)
            start = time.perf_counter()
            service.post_ingest(conn, delta)
            warm.append((time.perf_counter() - start) * 1000)

        query = []
        for _ in range(20):
            start = time.perf_counter()
            conn.request("GET", "/query?class=SeqGene")
            response = conn.getresponse()
            response.read()
            query.append((time.perf_counter() - start) * 1000)
        conn.close()

        # cold oracle: a stateless server would re-run the batch
        # transform for every ingested delta (program already compiled)
        cold = []
        for tag in range(COLD_REQUESTS):
            source = small_delta(1000 + tag).apply_to(source)
            start = time.perf_counter()
            morphase.transform(source)
            cold.append((time.perf_counter() - start) * 1000)
    finally:
        service.shutdown()

    warm_p50 = statistics.median(warm)
    warm_p99 = percentile(warm, 0.99)
    cold_p50 = statistics.median(cold)
    speedup = cold_p50 / warm_p50
    print_table(
        "S1: per-request latency, warm HTTP service vs cold batch",
        ("mode", "p50 ms", "p99 ms"),
        [("warm POST /ingest", f"{warm_p50:.2f}", f"{warm_p99:.2f}"),
         ("warm GET /query", f"{statistics.median(query):.2f}",
          f"{percentile(query, 0.99):.2f}"),
         ("cold batch transform", f"{cold_p50:.2f}",
          f"{percentile(cold, 0.99):.2f}"),
         ("speedup (ingest)", f"{speedup:.1f}x", "")])
    bench_report.record(
        "warm_vs_cold_genome_default",
        speedup=round(speedup, 2), floor=SPEEDUP_FLOOR,
        warm_p50_ms=round(warm_p50, 3), warm_p99_ms=round(warm_p99, 3),
        cold_p50_ms=round(cold_p50, 3),
        query_p50_ms=round(statistics.median(query), 3),
        query_p99_ms=round(percentile(query, 0.99), 3),
        requests=WARM_REQUESTS)
    assert speedup >= SPEEDUP_FLOOR


def test_sustained_ingest_throughput(bench_report):
    service = ServiceFixture(make_morphase())
    threads = 4
    per_thread = 40
    errors = []
    try:
        def worker(worker_id):
            conn = service.connection()
            try:
                for i in range(per_thread):
                    service.post_ingest(
                        conn, small_delta(f"{worker_id}.{i}"))
            except Exception as exc:  # pragma: no cover - fails below
                errors.append(exc)
            finally:
                conn.close()

        start = time.perf_counter()
        pool = [threading.Thread(target=worker, args=(t,))
                for t in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - start
        stats = service.session.stats_json()
    finally:
        service.shutdown()
    assert not errors, errors[0]
    total = threads * per_thread
    per_sec = total / elapsed
    print_table(
        "S1: sustained ingestion (4 concurrent connections)",
        ("metric", "value"),
        [("deltas ingested", total),
         ("wall seconds", f"{elapsed:.2f}"),
         ("deltas/sec", f"{per_sec:.0f}"),
         ("group-commit batches", stats["batches"]),
         ("largest batch", stats["max_batch"])])
    bench_report.record(
        "ingest_throughput_http",
        metric="per_sec", per_sec=round(per_sec, 1),
        floor=THROUGHPUT_FLOOR, deltas=total,
        batches=stats["batches"], max_batch=stats["max_batch"])
    assert per_sec >= THROUGHPUT_FLOOR
    assert stats["applied_seq"] == stats["seq"] == total


def test_recovery_time_vs_wal_length(bench_report):
    morphase = make_morphase()
    merged = morphase._merge_sources(genome.source_instance(
        genome.generate_acedb(**GENOME_SIZE)))
    rows = []
    for wal_length in (0, 32, 128):
        path = tempfile.mkdtemp()
        store = morphase.open_store(path, merged)
        for tag in range(wal_length):
            store.append(small_delta(f"r{wal_length}.{tag}"))
        store.close()
        start = time.perf_counter()
        reopened = WarehouseStore.open(path)
        open_ms = (time.perf_counter() - start) * 1000
        assert reopened.seq == wal_length
        reopened.snapshot()
        reopened.close()
        start = time.perf_counter()
        compacted = WarehouseStore.open(path)
        compact_ms = (time.perf_counter() - start) * 1000
        assert compacted.seq == wal_length and not compacted.tail
        compacted.close()
        rows.append((wal_length, open_ms, compact_ms))
        bench_report.record(
            f"recovery_wal_{wal_length}",
            wal_records=wal_length, open_ms=round(open_ms, 3),
            open_after_snapshot_ms=round(compact_ms, 3))
    print_table(
        "S1: recovery time vs WAL length (genome default size)",
        ("WAL records", "open ms", "after compaction ms"),
        [(length, f"{open_ms:.1f}", f"{compact_ms:.1f}")
         for length, open_ms, compact_ms in rows])
