"""A1/A2: ablations of the design choices called out in DESIGN.md.

A1 — constraint-based simplification on/off: effect on normal-form body
size and on execution time (Section 4.2's "extremely important in gaining
acceptable performance").

A2 — join-ordering heuristic in the conjunctive matcher (tests before
generators) on/off: identical results, different search cost.
"""

from conftest import best_of, print_table

from repro.morphase import Morphase
from repro.normalization import NormalizationOptions
from repro.semantics import Matcher
from repro.workloads import cities


def _morphase(**options):
    return Morphase([cities.us_schema(), cities.euro_schema()],
                    cities.target_schema(), cities.PROGRAM_TEXT,
                    options=NormalizationOptions(**options)
                    if options else None)


def _sources():
    return [cities.generate_us_instance(8, 3, seed=9),
            cities.generate_euro_instance(30, 4, seed=9)]


def test_a1_optimisation_shrinks_programs_and_speeds_execution(
        bench_report, benchmark):
    optimised = _morphase()
    raw = _morphase(use_constraints=False, simplify=False)
    opt_norm = optimised.compile()
    raw_norm = raw.compile()

    sources = _sources()
    opt_result, opt_time = best_of(
        lambda: optimised.transform(sources), repetitions=2)
    raw_result, raw_time = best_of(
        lambda: raw.transform(sources), repetitions=2)

    print_table(
        "A1: optimisation on vs off (cities program)",
        ("variant", "clauses", "atoms", "exec ms"),
        [("optimised", opt_norm.report.normal_clauses,
          opt_norm.report.normal_size, round(opt_time * 1000, 1)),
         ("raw", raw_norm.report.normal_clauses,
          raw_norm.report.normal_size, round(raw_time * 1000, 1))])

    bench_report.record(
        "optimisation_on_vs_off",
        optimised_ms=round(opt_time * 1000, 3),
        raw_ms=round(raw_time * 1000, 3),
        speedup=round(raw_time / opt_time, 2))
    # Same answer either way...
    assert opt_result.target.valuations == raw_result.target.valuations
    # ...but the optimised program is smaller and faster.
    assert opt_norm.report.normal_size < raw_norm.report.normal_size
    assert opt_norm.report.normal_clauses <= raw_norm.report.normal_clauses
    assert opt_time < raw_time

    benchmark(lambda: optimised.transform(sources))


def test_a2_join_ordering_heuristic(benchmark):
    from repro.lang import parse_clause
    source = cities.generate_euro_instance(60, 4, seed=10)
    # A body whose textual order opens the city generator before the
    # country filter binds anything: the heuristic reorders it.
    clause = parse_clause(
        "T = T <= X in CityE, Y in CountryE, X.country = Y,"
        ' Y.name = "Country7", X.is_capital = false;',
        classes=["CityE", "CountryE"])

    def count(prefer_tests):
        matcher = Matcher(source, prefer_tests=prefer_tests)
        return sum(1 for _ in matcher.solutions(clause.body))

    assert count(True) == count(False)

    _, smart = best_of(lambda: count(True))
    _, naive = best_of(lambda: count(False))
    print_table("A2: matcher join ordering",
                ("variant", "ms"),
                [("tests-first (default)", round(smart * 1000, 2)),
                 ("textual order", round(naive * 1000, 2))])
    # Identical answers; the heuristic never loses by more than noise.
    assert smart <= naive * 1.5

    benchmark(lambda: count(True))
