"""Shared helpers for the benchmark harness.

Every benchmark prints the paper-shaped series it reproduces (run pytest
with ``-s`` to see them) and records the headline numbers in
``benchmark.extra_info`` so they land in pytest-benchmark's JSON output.

Each benchmark module also gets a :class:`BenchReport` (the
``bench_report`` fixture): rows recorded through it are written to
``BENCH_<name>.json`` at the repository root when the module finishes —
the machine-readable perf trajectory.  CI uploads these as artifacts
and ``benchmarks/check_floors.py`` fails the build when a row's
metric drops below the floor recorded next to it.
"""

import json
import os
import time

import pytest

#: Repository root (benchmarks/..) — where BENCH_*.json files land.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def best_of(callable_, repetitions=3):
    """Minimum wall-clock over a few repetitions (noise control)."""
    best = float("inf")
    result = None
    for _ in range(repetitions):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return result, best


def print_table(title, header, rows):
    """Render a small fixed-width table to stdout."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(header[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(header))]
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i])
                        for i, cell in enumerate(row)))


class BenchReport:
    """Collects one benchmark module's machine-readable results.

    ``record(label, **fields)`` appends a row; pass ``floor=<number>``
    together with the guarded metric (by convention ``speedup``) to
    declare a regression floor — ``check_floors.py`` compares the two.
    The file is written on module teardown as ``BENCH_<name>.json``.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.series = []

    def record(self, label: str, **fields) -> None:
        row = {"label": label}
        row.update(fields)
        self.series.append(row)

    def path(self) -> str:
        return os.path.join(REPO_ROOT, f"BENCH_{self.name}.json")

    def write(self) -> None:
        if not self.series:
            return
        document = {
            "benchmark": self.name,
            "series": self.series,
        }
        with open(self.path(), "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        print(f"\n[bench] wrote {self.path()}")


@pytest.fixture(scope="module")
def bench_report(request):
    name = request.module.__name__
    if name.startswith("bench_"):
        name = name[len("bench_"):]
    report = BenchReport(name)
    yield report
    report.write()
