"""Shared helpers for the benchmark harness.

Every benchmark prints the paper-shaped series it reproduces (run pytest
with ``-s`` to see them) and records the headline numbers in
``benchmark.extra_info`` so they land in pytest-benchmark's JSON output.
"""

import time

import pytest


def best_of(callable_, repetitions=3):
    """Minimum wall-clock over a few repetitions (noise control)."""
    best = float("inf")
    result = None
    for _ in range(repetitions):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return result, best


def print_table(title, header, rows):
    """Render a small fixed-width table to stdout."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(header[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(header))]
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i])
                        for i, cell in enumerate(row)))
