"""PX: parallel sharded execution vs the sequential planned path.

The parallel engine (:mod:`repro.engine.parallel`) hash-partitions
every clause's driving generator across worker processes and merges
the shards' pending stores back into one target.  Two metrics are
recorded per workload and worker count:

* ``speedup`` — end-to-end wall clock (planning, fan-out, shard joins,
  result shipping, merge, freeze) against the single-shard run.  In
  pure Python the serial tail (inter-process result transfer plus
  target materialisation) bounds this hard, so it is recorded as the
  honest trajectory number but not floor-gated.
* ``execution_speedup`` — the execution phase only: the single-shard
  in-worker run time over the *slowest* shard's in-worker run time,
  both measured inside the workers by
  :class:`~repro.engine.executor.ExecutionStats`.  This is the work
  the engine actually distributes (solution enumeration plus head
  effects), and the floor — >= 2x with 4 workers at the genome default
  size — is registered on it whenever the machine has at least 4 cores
  (a 1-core sandbox times-shares the workers and records the series
  without gating).

Every parallel run is differential: the merged target must serialise
byte-identically to the sequential planned target, and the sharded
audit must report exactly the sequential violation set.
"""

import json
import os

import pytest
from conftest import best_of, print_table

from repro.adapters.acedb import AceDatabase, schema_of_acedb
from repro.engine import audit_parallel, execute_parallel
from repro.io.json_io import instance_to_json
from repro.morphase import Morphase
from repro.semantics.satisfaction import program_violations
from repro.workloads import genome, relibase

#: Execution-phase speedup the 4-worker genome transform must reach —
#: gated in CI, where runners have >= 4 cores.
SPEEDUP_FLOOR = 2.0
WORKER_COUNTS = (2, 4)
CORES = os.cpu_count() or 1


def serialized(instance) -> str:
    return json.dumps(instance_to_json(instance), sort_keys=True)


def floor_for(workers: int):
    """The registered floor, or None when the hardware cannot reach it."""
    if workers == 4 and CORES >= 4:
        return SPEEDUP_FLOOR
    return None


def run_transform_series(morphase, program, source, label_prefix,
                         bench_report, with_floor):
    """Measure one workload's transform against worker count."""
    def sequential_run():
        return execute_parallel(program, source, morphase.target_plain,
                                1)

    (sequential, _), seq_time = best_of(sequential_run, repetitions=3)
    baseline = serialized(sequential)
    # The sequential execution phase: one shard's in-worker run time
    # (solution enumeration + head effects, no merge or freeze).  Every
    # shard-wall measurement — this baseline included — uses the same
    # mechanism (real processes on >= 4 cores, in-process otherwise),
    # so cold-fork effects never compare against warm in-process runs.
    seq_exec = min(
        max(_shard_execution_walls(program, source, morphase, 1))
        for _ in range(2))
    rows = [("sequential", round(seq_time * 1000, 1), "1.00x", "1.00x")]
    for workers in WORKER_COUNTS:
        def parallel_run(workers=workers):
            return execute_parallel(
                program, source, morphase.target_plain, workers)

        (target, stats), par_time = best_of(parallel_run, repetitions=3)
        assert serialized(target) == baseline  # differential oracle
        assert stats.shards_run == workers
        speedup = seq_time / par_time
        # A parallel run's merged elapsed_seconds is the whole fan-out
        # wall; the floor reasons about the per-shard in-worker times,
        # so collect them in a dedicated fan-out (best of two).
        critical_path = min(
            max(_shard_execution_walls(program, source, morphase,
                                       workers))
            for _ in range(2))
        execution_speedup = seq_exec / critical_path
        rows.append((f"{workers} workers", round(par_time * 1000, 1),
                     f"{speedup:.2f}x", f"{execution_speedup:.2f}x"))
        bench_report.record(
            f"{label_prefix}_w{workers}",
            sizes={"objects": source.size()},
            cores=CORES, workers=workers,
            sequential_ms=round(seq_time * 1000, 3),
            parallel_ms=round(par_time * 1000, 3),
            speedup=round(speedup, 2),
            execution_speedup=round(execution_speedup, 2),
            metric="execution_speedup",
            floor=floor_for(workers) if with_floor else None)
        if with_floor and floor_for(workers) is not None:
            assert execution_speedup >= SPEEDUP_FLOOR, (
                f"{workers}-worker execution phase only "
                f"{execution_speedup:.2f}x faster "
                f"(< {SPEEDUP_FLOOR}x on {CORES} cores)")
    print_table(
        f"PX: parallel {label_prefix} transform ({source.size()} "
        f"source objects, {CORES} cores)",
        ("path", "wall ms", "wall speedup", "execution speedup"), rows)


#: Shard walls are comparable only when the 1-shard baseline and the
#: n-shard fan-out run under the same mechanism.  With enough cores
#: everything uses real worker processes (what the CI floor measures);
#: on smaller machines everything runs in-process back to back, so the
#: series still describes the per-shard work without timesharing noise.
MEASURE_WITH_PROCESSES = CORES >= max(WORKER_COUNTS)


def _shard_execution_walls(program, source, morphase, workers):
    """In-worker run times of one parallel fan-out (max = critical path)."""
    from repro.engine.parallel import (TransformEnvelope,
                                       _transform_shard)
    from repro.engine.planner import plan_program
    import concurrent.futures as futures
    plan = plan_program(tuple(program), source)
    envelopes = [TransformEnvelope(tuple(program), source,
                                   morphase.target_plain, index,
                                   workers, plan=plan)
                 for index in range(workers)]
    if MEASURE_WITH_PROCESSES:
        with futures.ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_transform_shard, envelopes))
    else:
        results = [_transform_shard(envelope) for envelope in envelopes]
    return [stats.elapsed_seconds for _, stats in results]


@pytest.fixture(scope="module")
def genome_setup():
    source_schema = schema_of_acedb(
        AceDatabase("ACe22", genome.ACE_CLASSES))
    morphase = Morphase([source_schema], genome.warehouse_schema(),
                        genome.PROGRAM_TEXT)
    source = morphase._merge_sources(
        genome.source_instance(genome.benchmark_database()))
    program = tuple(morphase.compile().program())
    return morphase, program, source


def test_parallel_transform_speedup_genome(genome_setup, bench_report,
                                           benchmark):
    """Genome transform vs worker count (the floor-gated headline)."""
    morphase, program, source = genome_setup
    run_transform_series(morphase, program, source, "genome_default",
                         bench_report, with_floor=True)
    benchmark(lambda: None)


def test_parallel_transform_relibase(bench_report, benchmark):
    """Multi-source integration with set-valued accumulation scales too."""
    morphase = Morphase(
        [relibase.swissprot_schema(), relibase.pdb_schema()],
        relibase.relibase_schema(), relibase.PROGRAM_TEXT)
    source = morphase._merge_sources(list(relibase.benchmark_sources()))
    program = tuple(morphase.compile().program())
    run_transform_series(morphase, program, source, "relibase_default",
                         bench_report, with_floor=False)
    benchmark(lambda: None)


def test_parallel_audit_speedup(genome_setup, bench_report, benchmark):
    """Sharded constraint audits: same violation set, less wall-clock."""
    morphase, program, source = genome_setup
    target, _ = execute_parallel(program, source, morphase.target_plain,
                                 1)
    constraints = genome.warehouse_constraints()
    sequential_violations, seq_time = best_of(
        lambda: program_violations(target, constraints,
                                   limit_per_clause=None),
        repetitions=3)
    expected = sorted(str(v) for v in sequential_violations)
    rows = [("sequential", round(seq_time * 1000, 1), "1.00x")]
    for workers in WORKER_COUNTS:
        result, par_time = best_of(
            lambda workers=workers: audit_parallel(constraints, target,
                                                   workers),
            repetitions=3)
        assert sorted(str(v)
                      for v in result.violations(constraints)) == expected
        speedup = seq_time / par_time
        rows.append((f"{workers} workers", round(par_time * 1000, 1),
                     f"{speedup:.2f}x"))
        bench_report.record(
            f"audit_genome_w{workers}",
            sizes={"objects": target.size(), "constraints": len(constraints)},
            cores=CORES, workers=workers,
            sequential_ms=round(seq_time * 1000, 3),
            parallel_ms=round(par_time * 1000, 3),
            speedup=round(speedup, 2), metric="speedup")
    print_table(
        f"PX: parallel warehouse audit ({target.size()} objects, "
        f"{len(constraints)} constraints, {CORES} cores)",
        ("path", "ms", "speedup"), rows)
    benchmark(lambda: None)
