"""O1: the observability tax — instrumented vs ``--no-obs`` baseline.

The whole point of ``repro.obs`` is that it can stay on in
production: metric mutations are one small lock each, spans are a
single context-variable read when nothing traces, and events are one
level comparison when nobody listens.  This benchmark pins that claim
on the hottest instrumented path — a warm session absorbing deltas
and answering body queries (WAL append timings, group-commit
histograms, lock-wait histograms, engine counters all firing) — and
floors the ratio at ≤5% overhead.

``speedup`` is ``t_disabled / t_enabled``: 1.0 means free, 0.95 means
instrumentation costs 5%.
"""

import tempfile

import pytest
from conftest import best_of, print_table

from repro.adapters.acedb import AceDatabase, schema_of_acedb
from repro.evolution.delta import Delta
from repro.model.values import Oid, Record, WolSet
from repro.morphase import Morphase
from repro.obs.metrics import REGISTRY, set_enabled
from repro.workloads import genome

GENOME_SIZE = {"genes": 150, "sequences": 300, "clones": 300,
               "sparsity": 0.9, "seed": 7}

#: Acceptance: metrics-on must keep >= 95% of metrics-off throughput.
OVERHEAD_FLOOR = 0.95

#: Deltas ingested + body queries answered per measured run.
ROUNDS = 60
REPETITIONS = 5

QUERY_BODY = "X in SequenceT, N = X.name"


def make_morphase():
    source_schema = schema_of_acedb(
        AceDatabase("ACe22", genome.ACE_CLASSES))
    m = Morphase([source_schema], genome.warehouse_schema(),
                 genome.PROGRAM_TEXT)
    m.compile()
    return m


def small_delta(tag):
    gene = Oid.keyed("Gene", f"G-obs-{tag}")
    seq = Oid.keyed("Sequence", f"S-obs-{tag}")
    return Delta(inserts={
        "Gene": {gene: Record.of(
            name=f"G-obs-{tag}", symbol=WolSet.of(f"sym{tag}"),
            description=WolSet.of(f"bench {tag}"))},
        "Sequence": {seq: Record.of(
            name=f"S-obs-{tag}",
            dna_length=WolSet.of(50_000 + tag),
            method=WolSet.of("shotgun"), gene=WolSet.of(gene))},
    })


class SessionFixture:
    """One warm in-process session over a fresh genome store."""

    def __init__(self):
        self.morphase = make_morphase()
        self.tmp = tempfile.TemporaryDirectory()
        source = self.morphase._merge_sources(
            genome.source_instance(genome.generate_acedb(**GENOME_SIZE)))
        store = self.morphase.open_store(
            self.tmp.name + "/store", [source])
        self.session = self.morphase.serve(store)
        self.tag = 0

    def run_rounds(self):
        from repro.evolution.delta import delta_to_json
        for _ in range(ROUNDS):
            self.tag += 1
            document = delta_to_json(small_delta(self.tag))
            self.session.ingest_json(document)
            self.session.query_body_json(QUERY_BODY, project="N")

    def close(self):
        self.session.close()
        self.tmp.cleanup()


def measured_seconds(enabled):
    fixture = SessionFixture()
    try:
        set_enabled(enabled)
        fixture.run_rounds()  # warm-up: plan, indexes, page cache
        _, seconds = best_of(fixture.run_rounds,
                             repetitions=REPETITIONS)
    finally:
        set_enabled(True)
        fixture.close()
    return seconds


@pytest.mark.benchmark(group="observability")
def test_observability_overhead(benchmark, bench_report):
    REGISTRY.reset()
    off = measured_seconds(False)
    on = measured_seconds(True)
    speedup = off / on

    def noop():
        pass

    benchmark(noop)
    benchmark.extra_info.update({
        "seconds_disabled": off, "seconds_enabled": on,
        "speedup": speedup,
    })
    per_round_on = on / ROUNDS * 1000.0
    per_round_off = off / ROUNDS * 1000.0
    print_table(
        "observability overhead (warm ingest + query round)",
        ("mode", "ms/round", "ratio"),
        [("obs disabled", f"{per_round_off:.3f}", "1.000"),
         ("obs enabled", f"{per_round_on:.3f}", f"{off / on:.3f}")])
    bench_report.record(
        "warm_ingest_query_overhead",
        rounds=ROUNDS,
        seconds_disabled=round(off, 6),
        seconds_enabled=round(on, 6),
        speedup=round(speedup, 4),
        floor=OVERHEAD_FLOOR,
        metric="speedup")
    # Sanity, not the gate (check_floors.py is the gate): the
    # instrumented run must not be catastrophically slower even on a
    # noisy box.
    assert speedup > 0.5
