"""E6: the CPL execution path (Section 5, Figure 6).

Morphase executed normal-form WOL by compiling it into CPL and running it
on Kleisli.  This benchmark checks the reproduced path — WOL -> CPL text ->
CPL interpreter — computes exactly the same instance as the direct
executor, and measures the translation cost (cheap) and interpretation
overhead (small constant factor).
"""

import pytest
from conftest import best_of, print_table

from repro.cpl import run_cpl, translate_program
from repro.morphase import Morphase
from repro.semantics import merge_instances
from repro.workloads import cities


@pytest.fixture(scope="module")
def setup():
    morphase = Morphase([cities.us_schema(), cities.euro_schema()],
                        cities.target_schema(), cities.PROGRAM_TEXT)
    normalized = morphase.compile()
    sources = merge_instances("__source__", [
        cities.generate_us_instance(10, 3, seed=4),
        cities.generate_euro_instance(40, 4, seed=4)])
    return morphase, normalized, sources


def test_translation_is_cheap(setup, benchmark):
    _, normalized, _ = setup
    cpl = benchmark(lambda: translate_program(
        normalized.program(), cities.target_schema().schema))
    assert len(cpl) == 4
    assert "insert CountryT" in cpl.source()


def test_cpl_equals_direct(setup, benchmark):
    morphase, normalized, sources = setup
    direct = morphase.transform(sources, backend="direct").target
    cpl_program = translate_program(normalized.program(),
                                    cities.target_schema().schema)

    target = benchmark(lambda: run_cpl(
        cpl_program, sources, cities.target_schema().schema))
    assert target.valuations == direct.valuations


def test_backend_overhead_is_constant_factor(setup, bench_report,
                                              benchmark):
    morphase, _, sources = setup
    _, direct_time = best_of(
        lambda: morphase.transform(sources, backend="direct"),
        repetitions=2)
    _, cpl_time = best_of(
        lambda: morphase.transform(sources, backend="cpl"),
        repetitions=2)
    print_table("E6: direct executor vs CPL interpreter",
                ("backend", "ms"),
                [("direct", round(direct_time * 1000, 1)),
                 ("cpl", round(cpl_time * 1000, 1))])
    bench_report.record("direct_vs_cpl",
                        direct_ms=round(direct_time * 1000, 3),
                        cpl_ms=round(cpl_time * 1000, 3))
    # Same asymptotics: the interpreter costs a constant factor, not a
    # different complexity class.
    assert cpl_time < direct_time * 25

    benchmark(lambda: morphase.transform(sources, backend="cpl"))
