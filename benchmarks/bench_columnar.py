"""E9: columnar execution vs the object-at-a-time planned path.

The planner (E6) fixed *what* order the joins run in; the columnar
engine fixes *how much Python* each binding costs.  Both engines run
the identical program plan, so the head-to-head isolates the constant
factor: whole-column index probes, selector gathers and fused head
application versus per-binding dict manipulation.

Methodology: the two engines share one merged source and one program
plan, repetitions interleave scalar/columnar, and the garbage
collector is disabled inside the timed region for *both* engines —
gen-2 collections over the multi-hundred-MB heap otherwise charge
100ms+ to whichever engine the collector happens to interrupt, which
is pure noise at columnar timescales.  Targets are asserted byte-equal
and effect counters identical before any timing is reported.
"""

import gc
import json
import time

from conftest import print_table

from repro.adapters.acedb import AceDatabase, schema_of_acedb
from repro.engine.executor import Executor
from repro.engine.planner import plan_program
from repro.io.json_io import instance_to_json
from repro.morphase import Morphase
from repro.workloads import genome, relibase


def _genome_case(scale):
    source_schema = schema_of_acedb(
        AceDatabase("ACe22", genome.ACE_CLASSES))
    morphase = Morphase([source_schema], genome.warehouse_schema(),
                        genome.PROGRAM_TEXT)
    source = morphase._merge_sources(
        genome.source_instance(genome.benchmark_database(scale)))
    program = tuple(morphase.compile().program())
    return source, morphase.target_plain, program


def _relibase_case(proteins):
    morphase = Morphase(
        [relibase.swissprot_schema(), relibase.pdb_schema()],
        relibase.relibase_schema(), relibase.PROGRAM_TEXT)
    sp, pdb = relibase.generate_sources(
        proteins, 3, proteins // 2, proteins * 2, seed=3)
    source = morphase._merge_sources([sp, pdb])
    program = tuple(morphase.compile().program())
    return source, morphase.target_plain, program


def _measure(source, target_schema, program, repetitions=3):
    """Interleaved min-of-N of the execution phase for both engines.

    Only ``run_program`` is timed (planning and freezing are shared
    costs); GC is off inside the timed region, identically for both.
    """
    plan = plan_program(program, source)
    times = {False: [], True: []}
    executors = {}
    for _ in range(repetitions):
        for columnar in (False, True):
            executor = Executor(source, target_schema,
                                columnar=columnar)
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                executor.run_program(program, plan=plan)
                times[columnar].append(time.perf_counter() - start)
            finally:
                gc.enable()
            executors[columnar] = executor

    scalar, columnar = executors[False], executors[True]
    assert (json.dumps(instance_to_json(scalar.freeze()), sort_keys=True)
            == json.dumps(instance_to_json(columnar.freeze()),
                          sort_keys=True))
    assert (scalar.stats.objects_created
            == columnar.stats.objects_created)
    assert scalar.stats.attributes_set == columnar.stats.attributes_set
    assert (scalar.stats.bindings_found
            == columnar.stats.bindings_found)
    assert columnar.stats.vectorized_steps > 0
    return min(times[False]), min(times[True]), columnar.stats


def test_columnar_vs_scalar_planned(bench_report, benchmark):
    cases = (
        ("genome_quarter", _genome_case(0.25), None),
        ("genome_default", _genome_case(1.0), 5.0),
        ("relibase_200", _relibase_case(200), None),
    )
    rows = []
    for label, (source, target_schema, program), floor in cases:
        scalar_s, columnar_s, stats = _measure(
            source, target_schema, program)
        speedup = round(scalar_s / columnar_s, 2)
        rows.append((label, round(scalar_s * 1000, 1),
                     round(columnar_s * 1000, 1), speedup,
                     stats.vectorized_steps, stats.fallback_steps,
                     stats.max_batch_rows))
        fields = dict(
            scalar_ms=round(scalar_s * 1000, 3),
            columnar_ms=round(columnar_s * 1000, 3),
            speedup=speedup,
            vectorized_steps=stats.vectorized_steps,
            fallback_steps=stats.fallback_steps)
        if floor is not None:
            fields["floor"] = floor
        bench_report.record(label, **fields)
    print_table("E9: columnar vs object-at-a-time planned execution",
                ("case", "scalar ms", "columnar ms", "speedup",
                 "vec steps", "fallback", "max batch"), rows)
    # The acceptance bar: >= 5x on genome at default size (the floor
    # key above re-checks this from the JSON in CI).
    genome_default = rows[1]
    assert genome_default[3] >= 5.0, genome_default

    source, target_schema, program = _genome_case(0.25)
    plan = plan_program(program, source)

    def run():
        executor = Executor(source, target_schema, columnar=True)
        executor.run_program(program, plan=plan)
        return executor

    benchmark(run)
