"""E3: compile-time ratio, non-normalised vs normalised input (Section 6).

Paper claim: "a non-normalized transformation program with constraints
taking approximately six times longer to compile than a normalized
program" — already-normal programs are the minimum-time baseline.

Reproduced shape: the ratio is a small constant factor (single digits)
growing mildly with program width, not orders of magnitude.
"""

from conftest import best_of, print_table

from repro.lang.ast import Program
from repro.normalization import normalize
from repro.workloads import synthetic

WIDTHS = (4, 8, 12, 16, 20)


def _compile(program, source, target, keys):
    return normalize(program, source.schema, target.schema,
                     source_keys=keys)


def _baseline_program(width):
    """The already-normalised program plus its key clause."""
    source, target = synthetic.wide_schemas(width)
    program = synthetic.wide_program(width)
    normalized = _compile(program, source, target, source.keys)
    key_clause = program.clause("KOut")
    return Program(normalized.clauses + (key_clause,))


def _series():
    rows = []
    for width in WIDTHS:
        source, target = synthetic.wide_schemas(width)
        raw_program = synthetic.wide_program(width)
        _, raw_time = best_of(
            lambda: _compile(raw_program, source, target, source.keys))
        baseline = _baseline_program(width)
        _, base_time = best_of(
            lambda: _compile(baseline, source, target, source.keys))
        rows.append((width, round(raw_time * 1000, 2),
                     round(base_time * 1000, 2),
                     round(raw_time / base_time, 1)))
    return rows


def test_compile_ratio_shape(bench_report, benchmark):
    """The non-normalised/normalised compile ratio is a small factor > 1."""
    rows = _series()
    print_table(
        "E3: compile time, non-normalised vs normalised input",
        ("width", "non-normalised (ms)", "normalised (ms)", "ratio"),
        rows)
    ratios = [row[3] for row in rows]
    # Shape: always slower than the baseline, by single digits (paper: ~6x),
    # never orders of magnitude.
    assert all(1.5 <= ratio <= 20 for ratio in ratios), ratios
    benchmark.extra_info["ratios"] = ratios
    for width, raw_ms, base_ms, ratio in rows:
        bench_report.record(f"width_{width}", sizes={"width": width},
                            non_normalised_ms=raw_ms,
                            normalised_ms=base_ms, ratio=ratio)

    source, target = synthetic.wide_schemas(12)
    program = synthetic.wide_program(12)
    benchmark(lambda: _compile(program, source, target, source.keys))


def test_normalised_baseline_compile(benchmark):
    """Compile time of an already-normal program (the paper's minimum)."""
    source, target = synthetic.wide_schemas(12)
    baseline = _baseline_program(12)
    benchmark(lambda: _compile(baseline, source, target, source.keys))
