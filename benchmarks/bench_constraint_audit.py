"""C1: planned constraint auditing vs the naive per-clause path.

The audit planner (:func:`repro.engine.planner.plan_audit`) compiles
every constraint clause — body enumeration *and* the per-solution
head-satisfiability probe — into fixed join orders, and runs the whole
audit over one shared, prebuilt index pool.  The decisive move is the
equality-join selector: a key/FD body ``X in C, Y in C, X.p = Y.p``
turns from a quadratic self-join (naive: scan Y's extent for every X)
into one index probe per X.  The naive path — a fresh matcher with
private lazy indexes per clause — is kept as the differential oracle:
both paths must report *identical* violation sets.

Series: the genome warehouse headline (clean and corrupted instances),
ReLiBase, scaling with source size, and audit-plan reuse.
"""

import pytest
from conftest import best_of, print_table

from repro.adapters.acedb import AceDatabase, schema_of_acedb
from repro.constraints import audit_constraints
from repro.engine import plan_audit
from repro.model.values import Record
from repro.morphase import Morphase
from repro.workloads import genome, relibase

#: Default genome workload size for the headline comparison.
GENOME_SIZE = {"genes": 150, "sequences": 300, "clones": 300,
               "sparsity": 0.9, "seed": 7}
SPEEDUP_FLOOR = 1.5


def _violation_sets(report):
    """Violations as comparable (clause name -> sorted strings)."""
    return {name: sorted(str(v) for v in found)
            for name, found in report.violations.items()}


@pytest.fixture(scope="module")
def genome_target():
    source_schema = schema_of_acedb(
        AceDatabase("ACe22", genome.ACE_CLASSES))
    m = Morphase([source_schema], genome.warehouse_schema(),
                 genome.PROGRAM_TEXT)
    source = genome.source_instance(genome.generate_acedb(**GENOME_SIZE))
    return m.transform(source).target


@pytest.fixture(scope="module")
def relibase_target():
    m = Morphase([relibase.swissprot_schema(), relibase.pdb_schema()],
                 relibase.relibase_schema(), relibase.PROGRAM_TEXT)
    sp, pdb = relibase.generate_sources(
        proteins=150, structures_per_protein=2, ligands=60, bindings=200,
        seed=3)
    return m.transform([sp, pdb]).target


def test_audit_speedup_genome(genome_target, bench_report, benchmark):
    """Planned audit beats naive by >= 1.5x; violation sets identical."""
    constraints = genome.warehouse_constraints()
    naive, naive_time = best_of(
        lambda: audit_constraints(genome_target, constraints,
                                  limit_per_clause=None,
                                  use_planner=False),
        repetitions=2)
    planned, planned_time = best_of(
        lambda: audit_constraints(genome_target, constraints,
                                  limit_per_clause=None),
        repetitions=2)

    # Differential: planned and naive audits agree violation for
    # violation (here: a clean warehouse, no violations at all).
    assert _violation_sets(planned) == _violation_sets(naive)
    assert planned.ok and naive.ok

    speedup = naive_time / planned_time
    print_table(
        "C1: planned vs naive constraint audit (genome warehouse)",
        ("path", "ms", "scans avoided", "indexes built",
         "planned bodies/heads"),
        [("naive", round(naive_time * 1000, 1), "-", "-", "-"),
         ("planned", round(planned_time * 1000, 1),
          planned.index_lookups,
          planned.prebuilt_indexes + planned.indexes_built,
          f"{planned.planned_bodies}/{planned.planned_heads}"),
         ("speedup", f"{speedup:.2f}x", "", "", "")])
    benchmark.extra_info["speedup"] = round(speedup, 2)
    bench_report.record(
        "genome_warehouse",
        sizes={"objects": genome_target.size()},
        naive_ms=round(naive_time * 1000, 3),
        planned_ms=round(planned_time * 1000, 3),
        speedup=round(speedup, 2), metric="speedup",
        floor=SPEEDUP_FLOOR)
    assert speedup >= SPEEDUP_FLOOR, (
        f"planned audit only {speedup:.2f}x faster (< {SPEEDUP_FLOOR}x)")

    benchmark(lambda: audit_constraints(genome_target, constraints,
                                        limit_per_clause=None))


def test_audit_differential_on_violations(genome_target, benchmark):
    """On a corrupted warehouse both paths report the same violations."""
    constraints = genome.warehouse_constraints()
    builder = genome_target.builder()
    # Duplicate an existing gene symbol: key_GeneT violated (both join
    # directions), everything else still clean.
    some_gene = next(iter(genome_target.valuations["GeneT"].values()))
    builder.new("GeneT", Record.of(
        symbol=some_gene.get("symbol"), description="duplicated"))
    corrupted = builder.freeze()

    naive = audit_constraints(corrupted, constraints,
                              limit_per_clause=None, use_planner=False)
    planned = audit_constraints(corrupted, constraints,
                                limit_per_clause=None)
    assert not planned.ok
    assert _violation_sets(planned) == _violation_sets(naive)
    print_table(
        "C1: differential on a corrupted warehouse",
        ("path", "violated clauses", "violations"),
        [(path, len(report.violations),
          sum(len(v) for v in report.violations.values()))
         for path, report in (("naive", naive), ("planned", planned))])
    benchmark(lambda: audit_constraints(corrupted, constraints,
                                        limit_per_clause=None))


def test_audit_speedup_relibase(relibase_target, bench_report, benchmark):
    """The ReLiBase library (keys + inclusions + inverse) speeds up too."""
    constraints = relibase.relibase_constraints()
    naive, naive_time = best_of(
        lambda: audit_constraints(relibase_target, constraints,
                                  limit_per_clause=None,
                                  use_planner=False),
        repetitions=2)
    planned, planned_time = best_of(
        lambda: audit_constraints(relibase_target, constraints,
                                  limit_per_clause=None),
        repetitions=2)
    assert _violation_sets(planned) == _violation_sets(naive)
    speedup = naive_time / planned_time
    print_table(
        "C1: planned vs naive constraint audit (ReLiBase)",
        ("path", "ms"),
        [("naive", round(naive_time * 1000, 1)),
         ("planned", round(planned_time * 1000, 1)),
         ("speedup", f"{speedup:.2f}x")])
    benchmark.extra_info["speedup"] = round(speedup, 2)
    bench_report.record(
        "relibase",
        sizes={"objects": relibase_target.size()},
        naive_ms=round(naive_time * 1000, 3),
        planned_ms=round(planned_time * 1000, 3),
        speedup=round(speedup, 2), metric="speedup",
        floor=SPEEDUP_FLOOR)
    assert speedup >= SPEEDUP_FLOOR

    benchmark(lambda: audit_constraints(relibase_target, constraints,
                                        limit_per_clause=None))


def test_audit_speedup_scaling(benchmark):
    """The quadratic/linear gap grows with warehouse size."""
    source_schema = schema_of_acedb(
        AceDatabase("ACe22", genome.ACE_CLASSES))
    m = Morphase([source_schema], genome.warehouse_schema(),
                 genome.PROGRAM_TEXT)
    constraints = genome.warehouse_constraints()
    rows = []
    for scale in (1, 2, 4):
        database = genome.generate_acedb(
            genes=50 * scale, sequences=100 * scale, clones=100 * scale,
            sparsity=0.9, seed=11)
        target = m.transform(genome.source_instance(database)).target
        naive, naive_time = best_of(
            lambda: audit_constraints(target, constraints,
                                      limit_per_clause=None,
                                      use_planner=False),
            repetitions=2)
        planned, planned_time = best_of(
            lambda: audit_constraints(target, constraints,
                                      limit_per_clause=None),
            repetitions=2)
        assert _violation_sets(planned) == _violation_sets(naive)
        rows.append((target.size(), round(naive_time * 1000, 1),
                     round(planned_time * 1000, 1),
                     f"{naive_time / planned_time:.2f}x"))
    print_table("C1: audit speedup vs warehouse size",
                ("target objs", "naive ms", "planned ms", "speedup"),
                rows)
    benchmark(lambda: None)


def test_audit_plan_reuse(genome_target, benchmark):
    """A precomputed AuditPlan amortises planning + index prebuilds."""
    constraints = genome.warehouse_constraints()
    plan = plan_audit(constraints, genome_target)

    def audit_with_shared_plan():
        return audit_constraints(genome_target, constraints,
                                 limit_per_clause=None, plan=plan)

    def audit_planning_each_time():
        return audit_constraints(genome_target, constraints,
                                 limit_per_clause=None)

    shared, shared_time = best_of(audit_with_shared_plan, repetitions=3)
    fresh, fresh_time = best_of(audit_planning_each_time, repetitions=3)
    assert _violation_sets(shared) == _violation_sets(fresh)
    # The shared-plan run builds no indexes at all: they were prebuilt.
    assert shared.indexes_built == 0
    print_table("C1: audit plan reuse",
                ("mode", "ms"),
                [("plan once, audit many", round(shared_time * 1000, 1)),
                 ("plan every audit", round(fresh_time * 1000, 1))])
    assert shared_time <= fresh_time * 1.5

    benchmark(audit_with_shared_plan)
