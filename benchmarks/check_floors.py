"""Fail when a recorded benchmark metric drops below its floor.

Reads every ``BENCH_*.json`` at the repository root (written by the
``bench_report`` fixture in :mod:`benchmarks.conftest`).  A series row
that carries a ``floor`` declares a regression bar for its guarded
metric (named by ``metric``, default ``speedup``); any row under its
floor fails the build with a summary of what regressed.

Usage::

    python benchmarks/check_floors.py [root]
"""

import glob
import json
import os
import sys


def check(root: str) -> int:
    paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not paths:
        print(f"no BENCH_*.json files under {root}; run the benchmarks "
              f"first (pytest benchmarks/ -s --benchmark-disable)")
        return 1
    failures = []
    checked = 0
    for path in paths:
        with open(path) as handle:
            document = json.load(handle)
        name = document.get("benchmark", os.path.basename(path))
        for row in document.get("series", []):
            floor = row.get("floor")
            if floor is None:
                continue
            metric = row.get("metric", "speedup")
            value = row.get(metric)
            checked += 1
            if value is None:
                failures.append(
                    f"{name}/{row.get('label')}: declares floor {floor} "
                    f"but has no {metric!r} value")
            elif value < floor:
                failures.append(
                    f"{name}/{row.get('label')}: {metric} {value} "
                    f"dropped below floor {floor}")
            else:
                print(f"ok  {name}/{row.get('label')}: "
                      f"{metric} {value} >= {floor}")
    if failures:
        print(f"\n{len(failures)} benchmark floor(s) violated:")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(f"\nall {checked} benchmark floor(s) hold")
    return 0


if __name__ == "__main__":
    sys.exit(check(sys.argv[1] if len(sys.argv) > 1 else
                   os.path.dirname(os.path.dirname(
                       os.path.abspath(__file__)))))
