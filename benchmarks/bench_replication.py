"""R1: read scale-out via WAL replication, and replica lag under load.

The replication layer's reason to exist: one leader takes the writes,
N followers replay its WAL and absorb the reads.  Because CPython
holds the GIL per process, real read scaling only shows up when every
node is its own *process* — so this benchmark forks each follower as a
separate process (own store, own HTTP server, own GIL) and measures:

* ``read_scaleout``: aggregate query RPS (a planned join over the
  warm genome target, through HTTP) as client threads fan out over
  1 node (leader only), 2 nodes (+1 follower) and 3 nodes
  (+2 followers).  Floor: with 2 followers the aggregate must beat
  the single-node baseline by >= 1.5x — recorded only on machines
  with >= 4 cores (below that the nodes share cores and the series
  is informational).
* ``replica_lag``: follower lag (leader seq - applied seq, sampled
  over its /stats endpoint) while the leader sustains a write stream,
  and the time to drain back to lag 0 after the stream stops.
"""

import json
import multiprocessing
import os
import statistics
import tempfile
import threading
import time
from http.client import HTTPConnection
from urllib.parse import quote

import pytest

from conftest import print_table

from repro.adapters.acedb import AceDatabase, schema_of_acedb
from repro.evolution.delta import Delta
from repro.model.values import Oid, Record, WolSet
from repro.morphase import Morphase
from repro.service import WalReplica, make_server
from repro.workloads import genome

#: Genome workload default size (matches bench_service/bench_planner).
GENOME_SIZE = {"genes": 150, "sequences": 300, "clones": 300,
               "sparsity": 0.9, "seed": 7}

#: The read under test: a planned two-hop join over the warm target.
QUERY_PATH = ("/query?body=" + quote("P in SeqGene, S = P.seq, "
                                     "N = S.name") + "&project=N")

#: Aggregate-RPS floor for leader + 2 followers vs leader alone —
#: enforced only on >= 4 cores (one per node plus the clients).
SCALEOUT_FLOOR = 1.5
MIN_CORES_FOR_FLOOR = 4

CLIENT_THREADS = 6
MEASURE_SECONDS = 2.0
LAG_INGESTS = 60


def make_morphase():
    source_schema = schema_of_acedb(
        AceDatabase("ACe22", genome.ACE_CLASSES))
    m = Morphase([source_schema], genome.warehouse_schema(),
                 genome.PROGRAM_TEXT)
    m.compile()
    return m


def small_delta(tag):
    gene = Oid.keyed("Gene", f"G-{tag}")
    seq = Oid.keyed("Sequence", f"S-{tag}")
    return Delta(inserts={
        "Gene": {gene: Record.of(
            name=f"G-{tag}", symbol=WolSet.of(f"sym{tag}"),
            description=WolSet.of(f"bench {tag}"))},
        "Sequence": {seq: Record.of(
            name=f"S-{tag}", dna_length=WolSet.of(51_000),
            method=WolSet.of("shotgun"), gene=WolSet.of(gene))},
    })


def follower_process(leader_url, store_dir, url_queue):
    """One follower node: seed, catch up, serve, tail — own process."""
    replica = WalReplica(make_morphase(), leader_url, store_dir,
                         poll_wait=1.0)
    session = replica.start()
    replica.catch_up(deadline_seconds=120.0)
    server = make_server(session)
    url_queue.put(server.url)
    server.serve_forever()  # until the parent terminates us


def http_get(address, path):
    conn = HTTPConnection(*address)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        payload = response.read()
        assert response.status == 200, payload
        document = json.loads(payload)
        return document.get("result", document)  # unwrap the envelope
    finally:
        conn.close()


def measure_rps(addresses, seconds=MEASURE_SECONDS,
                threads=CLIENT_THREADS):
    """Aggregate completed queries/sec, clients round-robin per node."""
    stop = time.monotonic() + seconds
    counts = [0] * threads
    errors = []

    def client(worker):
        address = addresses[worker % len(addresses)]
        conn = HTTPConnection(*address)
        try:
            while time.monotonic() < stop:
                conn.request("GET", QUERY_PATH)
                response = conn.getresponse()
                payload = response.read()
                if response.status != 200:
                    errors.append(payload)
                    return
                counts[worker] += 1
        except Exception as exc:  # pragma: no cover - asserted below
            errors.append(exc)
        finally:
            conn.close()

    pool = [threading.Thread(target=client, args=(w,))
            for w in range(threads)]
    start = time.monotonic()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.monotonic() - start
    assert not errors, errors[0]
    return sum(counts) / elapsed


@pytest.fixture(scope="module")
def leader():
    morphase = make_morphase()
    merged = morphase._merge_sources(genome.source_instance(
        genome.generate_acedb(**GENOME_SIZE)))
    store = morphase.open_store(tempfile.mkdtemp(), merged)
    session = morphase.serve(store)
    server = make_server(session)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    yield session, server
    server.shutdown()
    server.server_close()
    session.close()


def spawn_followers(leader_url, count, context):
    followers = []
    for n in range(count):
        queue = context.Queue()
        process = context.Process(
            target=follower_process,
            args=(leader_url, tempfile.mkdtemp(suffix=f"-r{n}"), queue),
            daemon=True)
        process.start()
        url = queue.get(timeout=180.0)
        host, port = url.replace("http://", "").rsplit(":", 1)
        followers.append((process, (host, int(port))))
    return followers


def test_read_scaleout_with_process_replicas(bench_report, leader):
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("needs fork start method for follower processes")
    session, server = leader
    context = multiprocessing.get_context("fork")
    leader_address = server.server_address[:2]
    followers = spawn_followers(server.url, 2, context)
    try:
        addresses = [leader_address] + [a for _, a in followers]
        # Warm every node's query caches before timing.
        for address in addresses:
            http_get(address, QUERY_PATH)
        rps = [measure_rps(addresses[:n]) for n in (1, 2, 3)]
    finally:
        for process, _ in followers:
            process.terminate()
            process.join(timeout=10.0)
    speedup_2 = rps[1] / rps[0]
    speedup_3 = rps[2] / rps[0]
    cores = os.cpu_count() or 1
    print_table(
        "R1: aggregate query RPS vs node count "
        f"({CLIENT_THREADS} client threads, {cores} cores)",
        ("nodes", "aggregate RPS", "vs single"),
        [("leader only", f"{rps[0]:.0f}", "1.00x"),
         ("+1 follower", f"{rps[1]:.0f}", f"{speedup_2:.2f}x"),
         ("+2 followers", f"{rps[2]:.0f}", f"{speedup_3:.2f}x")])
    row = dict(
        rps_1_node=round(rps[0], 1), rps_2_nodes=round(rps[1], 1),
        rps_3_nodes=round(rps[2], 1),
        speedup=round(speedup_3, 2), cores=cores,
        client_threads=CLIENT_THREADS)
    if cores >= MIN_CORES_FOR_FLOOR:
        row["floor"] = SCALEOUT_FLOOR
        bench_report.record("read_scaleout_2_replicas", **row)
        assert speedup_3 >= SCALEOUT_FLOOR
    else:
        # Nodes share cores: the series is recorded but not gated.
        bench_report.record("read_scaleout_2_replicas_ungated", **row)


def test_replica_lag_under_sustained_ingest(bench_report, leader):
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("needs fork start method for follower processes")
    session, server = leader
    context = multiprocessing.get_context("fork")
    [(process, address)] = spawn_followers(server.url, 1, context)
    lags = []
    try:
        def writer():
            for n in range(LAG_INGESTS):
                session.ingest(small_delta(f"lag{n}"))

        thread = threading.Thread(target=writer)
        thread.start()
        while thread.is_alive():
            stats = http_get(address, "/stats")
            lags.append(stats["replication"]["lag"])
            time.sleep(0.02)
        thread.join()
        drain_start = time.monotonic()
        while True:
            stats = http_get(address, "/stats")
            lag = stats["replication"]["lag"]
            lags.append(lag)
            if lag == 0 and stats["applied_seq"] == session.store.seq:
                break
            assert time.monotonic() - drain_start < 60.0, \
                "follower never drained its lag"
            time.sleep(0.02)
        drain_seconds = time.monotonic() - drain_start
    finally:
        process.terminate()
        process.join(timeout=10.0)
    print_table(
        f"R1: follower lag under {LAG_INGESTS} sustained ingests",
        ("metric", "value"),
        [("samples", len(lags)),
         ("max lag (records)", max(lags)),
         ("mean lag", f"{statistics.mean(lags):.2f}"),
         ("final lag", lags[-1]),
         ("drain seconds", f"{drain_seconds:.2f}")])
    bench_report.record(
        "replica_lag_sustained_ingest",
        ingests=LAG_INGESTS, samples=len(lags), max_lag=max(lags),
        mean_lag=round(statistics.mean(lags), 2), final_lag=lags[-1],
        drain_seconds=round(drain_seconds, 3))
    assert lags[-1] == 0
