"""I1: incremental delta propagation vs full recompute.

The incremental engine (:mod:`repro.engine.incremental`) maintains the
transformed warehouse under source deltas: per clause, one seeded join
plan per member atom re-derives exactly the bindings that read a
changed object (changed oids plus their transitive referrers), the
shared index pool is patched in place, and only touched target objects
are re-assembled.  The full recompute
(:meth:`repro.morphase.system.Morphase.transform`) stays on as the
differential oracle — every series below asserts bit-identical targets.

Headline: the paper's warehouse-refresh scenario (Section 6 — periodic
transformations in front of evolving databases).  A 1% append batch at
the genome default size must propagate >= 20x faster than recomputing.
A mixed update/insert/delete series and a fixed-delta scaling series
(speedup grows with instance size) characterise the rest.
"""

import random

import pytest
from conftest import best_of, print_table

from repro.adapters.acedb import AceDatabase, schema_of_acedb
from repro.constraints.audit import audit_constraints
from repro.engine import IncrementalAudit
from repro.evolution.delta import Delta
from repro.model.values import Oid, Record, WolSet
from repro.morphase import Morphase
from repro.workloads import genome

#: Genome workload default size (matches bench_planner).
GENOME_SIZE = {"genes": 150, "sequences": 300, "clones": 300,
               "sparsity": 0.9, "seed": 7}
#: Acceptance floor: incremental 1% append vs full recompute.
SPEEDUP_FLOOR = 20.0


def make_morphase():
    source_schema = schema_of_acedb(
        AceDatabase("ACe22", genome.ACE_CLASSES))
    m = Morphase([source_schema], genome.warehouse_schema(),
                 genome.PROGRAM_TEXT)
    m.compile()
    return m


@pytest.fixture(scope="module")
def genome_morphase():
    return make_morphase()


def merged_source(morphase, **size):
    params = dict(GENOME_SIZE)
    params.update(size)
    database = genome.generate_acedb(**params)
    return morphase._merge_sources(genome.source_instance(database))


def append_batch(src, rng, tag, size=8):
    """A warehouse refresh: ~``size`` new objects across all classes."""
    genes = sorted(src.objects_of("Gene"), key=str)
    seqs = sorted(src.objects_of("Sequence"), key=str)
    new_genes = {}
    for i in range(max(1, size // 4)):
        oid = Oid.keyed("Gene", f"G{tag}-{i}")
        new_genes[oid] = Record.of(
            name=f"G{tag}-{i}", symbol=WolSet.of(f"sym{tag}{i}"),
            description=WolSet.of(f"new {tag} {i}"))
    new_seqs = {}
    for i in range(max(1, (size - len(new_genes)) // 2)):
        oid = Oid.keyed("Sequence", f"S{tag}-{i}")
        ref = next(iter(new_genes)) if i == 0 else rng.choice(genes)
        new_seqs[oid] = Record.of(
            name=f"S{tag}-{i}", dna_length=WolSet.of(50_000 + i),
            method=WolSet.of("shotgun"), gene=WolSet.of(ref))
    new_clones = {}
    for i in range(size - len(new_genes) - len(new_seqs)):
        oid = Oid.keyed("Clone", f"C{tag}-{i}")
        ref = next(iter(new_seqs)) if i == 0 else rng.choice(seqs)
        new_clones[oid] = Record.of(
            name=f"C{tag}-{i}", map_position=WolSet.of("22q12"),
            length=WolSet.of(90_000 + i), seq=WolSet.of(ref))
    return Delta(inserts={"Gene": new_genes, "Sequence": new_seqs,
                          "Clone": new_clones})


def mixed_batch(src, rng, tag, size=8):
    """Updates to read attributes plus an insert and a delete."""
    updates = {}
    fields = {
        "Gene": ("description", lambda i: WolSet.of(f"rev-{tag}-{i}")),
        "Sequence": ("method", lambda i: WolSet.of(f"m-{tag}-{i}")),
        "Clone": ("length", lambda i: WolSet.of(100_000 + i)),
    }
    for cname, (attr, make) in fields.items():
        extent = sorted(src.objects_of(cname), key=str)
        for i, oid in enumerate(rng.sample(extent,
                                           k=max(1, (size - 2) // 3))):
            updates.setdefault(cname, {})[oid] = \
                src.value_of(oid).with_field(attr, make(i))
    retire = next(oid for oid in sorted(src.objects_of("Clone"), key=str)
                  if oid not in updates.get("Clone", {}))
    gene = Oid.keyed("Gene", f"G{tag}")
    return Delta(
        inserts={"Gene": {gene: Record.of(
            name=f"G{tag}", symbol=WolSet.of(f"s{tag}"),
            description=WolSet.of("d"))}},
        updates=updates, deletes={"Clone": (retire,)})


def run_series(morphase, source, make_delta, rounds=8, oracle_rounds=3):
    """Propagate a stream of deltas; return (full_ms, incr_ms, ok)."""
    import time
    state = morphase.begin_incremental(source)
    rng = random.Random(7)
    incr_times = []
    full_best = float("inf")
    identical = True
    for index in range(rounds):
        delta = make_delta(state.source, rng, f"t{index}")
        updated = delta.apply_to(state.source, validate_changed=False)
        oracle = None
        if index < oracle_rounds:
            oracle, elapsed = best_of(
                lambda: morphase.transform(updated), repetitions=2)
            full_best = min(full_best, elapsed)
        start = time.perf_counter()
        result = state.apply_delta(delta)
        incr_times.append(time.perf_counter() - start)
        if oracle is not None:
            identical = identical and (result.target.valuations
                                       == oracle.target.valuations)
    incr_times.sort()
    median = incr_times[len(incr_times) // 2]
    return full_best * 1000, median * 1000, identical


def test_incremental_append_speedup(genome_morphase, bench_report,
                                    benchmark):
    """1% append batch at genome default: >= 20x vs recompute."""
    source = merged_source(genome_morphase)
    delta_size = max(2, source.size() // 100)
    full_ms, incr_ms, identical = run_series(
        genome_morphase, source,
        lambda src, rng, tag: append_batch(src, rng, tag, delta_size))
    assert identical, "incremental target diverged from recompute"
    speedup = full_ms / incr_ms
    print_table(
        "I1: incremental 1% append vs full recompute (genome default)",
        ("path", "ms / delta"),
        [("full recompute", round(full_ms, 2)),
         ("incremental", round(incr_ms, 3)),
         ("speedup", f"{speedup:.1f}x")])
    bench_report.record(
        "genome_default_append",
        sizes={"objects": source.size(), "delta": delta_size},
        full_ms=round(full_ms, 3), incremental_ms=round(incr_ms, 3),
        speedup=round(speedup, 2), metric="speedup",
        floor=SPEEDUP_FLOOR)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= SPEEDUP_FLOOR, (
        f"incremental append only {speedup:.1f}x faster "
        f"(< {SPEEDUP_FLOOR}x)")

    state = genome_morphase.begin_incremental(source)
    rng = random.Random(11)
    counter = [0]

    def apply_one():
        counter[0] += 1
        state.apply_delta(append_batch(state.source, rng,
                                       f"b{counter[0]}", delta_size))

    benchmark(apply_one)


def test_incremental_mixed_delta(genome_morphase, bench_report,
                                 benchmark):
    """Mixed update/insert/delete batches stay well ahead of recompute."""
    source = merged_source(genome_morphase)
    delta_size = max(2, source.size() // 100)
    full_ms, incr_ms, identical = run_series(
        genome_morphase, source,
        lambda src, rng, tag: mixed_batch(src, rng, tag, delta_size))
    assert identical, "incremental target diverged from recompute"
    speedup = full_ms / incr_ms
    print_table(
        "I1: incremental 1% mixed delta vs full recompute",
        ("path", "ms / delta"),
        [("full recompute", round(full_ms, 2)),
         ("incremental", round(incr_ms, 3)),
         ("speedup", f"{speedup:.1f}x")])
    bench_report.record(
        "genome_default_mixed",
        sizes={"objects": source.size(), "delta": delta_size},
        full_ms=round(full_ms, 3), incremental_ms=round(incr_ms, 3),
        speedup=round(speedup, 2), metric="speedup", floor=5.0)
    assert speedup >= 5.0
    benchmark(lambda: None)


def test_incremental_scaling(genome_morphase, bench_report, benchmark):
    """At fixed delta size the advantage grows with instance size."""
    rows = []
    speedups = []
    for scale in (1, 2, 4):
        source = merged_source(
            genome_morphase, genes=150 * scale, sequences=300 * scale,
            clones=300 * scale)
        full_ms, incr_ms, identical = run_series(
            genome_morphase, source,
            lambda src, rng, tag: mixed_batch(src, rng, tag, 8),
            rounds=6, oracle_rounds=2)
        assert identical
        speedup = full_ms / incr_ms
        speedups.append(speedup)
        rows.append((source.size(), round(full_ms, 1),
                     round(incr_ms, 2), f"{speedup:.1f}x"))
        bench_report.record(
            f"scaling_{scale}x",
            sizes={"objects": source.size(), "delta": 8},
            full_ms=round(full_ms, 3),
            incremental_ms=round(incr_ms, 3),
            speedup=round(speedup, 2))
    print_table("I1: speedup vs instance size (fixed 8-object delta)",
                ("source objs", "full ms", "incr ms", "speedup"),
                rows)
    assert speedups[-1] > speedups[0], (
        "incremental advantage should grow with instance size")
    benchmark(lambda: None)


def test_incremental_audit_maintenance(genome_morphase, bench_report,
                                       benchmark):
    """Maintaining the violation set beats re-auditing from scratch."""
    import time
    source = merged_source(genome_morphase)
    warehouse = genome_morphase.transform(source).target
    constraints = genome.warehouse_constraints()
    audit = IncrementalAudit(warehouse, constraints)
    rng = random.Random(13)
    sequences = sorted(warehouse.objects_of("SequenceT"), key=str)

    full_best = float("inf")
    incr_times = []
    identical = True
    current = warehouse
    for index in range(6):
        victim = sequences[rng.randrange(len(sequences))]
        if current.has_object(victim):
            delta = Delta(deletes={"SequenceT": (victim,)})
        else:
            delta = Delta(inserts={"SequenceT": {
                victim: warehouse.value_of(victim)}})
        updated = delta.apply_to(current, validate_changed=False)
        if index < 3:
            report, elapsed = best_of(
                lambda: audit_constraints(updated, constraints,
                                          limit_per_clause=None),
                repetitions=2)
            full_best = min(full_best, elapsed)
            oracle = sorted(str(v) for name in report.violations
                            for v in report.violations[name])
        start = time.perf_counter()
        result = audit.apply_delta(delta)
        incr_times.append(time.perf_counter() - start)
        if index < 3:
            identical = identical and (
                sorted(str(v) for v in result.violations) == oracle)
        current = updated
    assert identical, "incremental audit diverged from full audit"
    incr_times.sort()
    incr_ms = incr_times[len(incr_times) // 2] * 1000
    full_ms = full_best * 1000
    speedup = full_ms / incr_ms
    print_table(
        "I1: incremental audit vs full re-audit (genome warehouse)",
        ("path", "ms / delta"),
        [("full audit", round(full_ms, 2)),
         ("incremental", round(incr_ms, 3)),
         ("speedup", f"{speedup:.1f}x")])
    bench_report.record(
        "audit_maintenance",
        sizes={"objects": warehouse.size(), "delta": 1},
        full_ms=round(full_ms, 3), incremental_ms=round(incr_ms, 3),
        speedup=round(speedup, 2))
    assert speedup >= 2.0
    benchmark(lambda: None)
